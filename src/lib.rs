//! Shared helpers for the `accltl-suite` examples and integration tests.
//!
//! The library part of the suite only re-exports the workspace facade so the
//! examples can be read top-to-bottom without extra imports.

pub use accltl_core::prelude;
pub use accltl_core::{analyzer, automata, logic, paths, relational};
