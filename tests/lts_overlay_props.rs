//! Property tests for overlay-backed LTS exploration: for random initial
//! instances and exploration options, the overlay-backed explorer must
//! produce exactly the tree the materialising explorer produces — same
//! nodes, same labels, same child order, same `Display` rendering.

use proptest::prelude::*;

use accltl_core::prelude::*;

/// Strategy: random exploration options (kept small enough for exhaustive
/// comparison, large enough to hit the binding and node caps sometimes).
fn random_options() -> impl Strategy<Value = LtsOptions> {
    let policy = prop_oneof![
        Just(ResponsePolicy::ExactFromHidden),
        (1usize..3)
            .prop_map(|max_response_size| ResponsePolicy::SubsetsOfHidden { max_response_size }),
    ];
    ((1usize..3, any::<bool>(), policy), (2usize..13, 4usize..61)).prop_map(
        |((max_depth, grounded_only, response_policy), (max_bindings_per_method, max_nodes))| {
            LtsOptions {
                max_depth,
                grounded_only,
                response_policy,
                max_bindings_per_method,
                max_nodes,
                use_overlays: true,
            }
        },
    )
}

/// Strategy: a random initial instance over the phone-directory vocabulary,
/// mixing facts the hidden instance also holds with fresh ones.
fn random_initial() -> impl Strategy<Value = Instance> {
    proptest::collection::vec((0usize..4, any::<bool>()), 0..4).prop_map(|picks| {
        let mut initial = Instance::new();
        for (i, shared) in picks {
            if shared {
                initial.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Smith", 13]);
            } else {
                initial.add_fact("Address", tuple!["High St", "OX26NN", "Seed", i as i64]);
            }
        }
        initial
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The overlay-backed and materialising explorers build identical trees:
    /// equal node-by-node (configurations, depths, edges in order), equal
    /// truncation flags, and byte-identical renderings.
    #[test]
    fn overlay_and_materialized_trees_are_identical(
        options in random_options(),
        initial in random_initial(),
    ) {
        let schema = phone_directory_access_schema();
        let hidden = phone_directory_hidden_instance();
        let overlay_tree = LtsExplorer::new(&schema, &hidden, options.clone())
            .explore(&initial)
            .expect("exploration succeeds");
        let materialized_tree = LtsExplorer::new(
            &schema,
            &hidden,
            LtsOptions { use_overlays: false, ..options },
        )
        .explore(&initial)
        .expect("exploration succeeds");

        prop_assert_eq!(&overlay_tree, &materialized_tree);
        prop_assert_eq!(overlay_tree.truncated, materialized_tree.truncated);
        prop_assert_eq!(overlay_tree.render(1_000), materialized_tree.render(1_000));
        // Node instances materialize identically, in order.
        for (a, b) in overlay_tree.nodes.iter().zip(&materialized_tree.nodes) {
            prop_assert_eq!(a.instance(), b.instance());
        }
    }
}
