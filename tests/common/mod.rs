//! Shared test-util module for the integration-test binaries: the Fig-1
//! phone-directory builders, formula shapes and report digests that
//! `guard_cache_props`, `batch_props`, `pool_props` and `session_props`
//! previously copy-pasted.  Each binary includes this file via `mod common;`
//! and uses a subset, hence the `dead_code` allowance.
#![allow(dead_code)]

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use proptest::prelude::*;

use accltl_core::prelude::*;
use accltl_core::relational::{guard_cache_enabled, set_guard_cache_enabled};

/// Tests that flip a process-wide flag (the guard-cache mode, `ACCLTL_*`
/// environment variables) serialize behind this lock so an A/B comparison
/// never observes another test's flip mid-run.
pub fn flag_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Runs `f` with the guard cache disabled, restoring the previous mode.
pub fn with_cache_disabled<T>(f: impl FnOnce() -> T) -> T {
    let was_enabled = guard_cache_enabled();
    set_guard_cache_enabled(false);
    let result = f();
    set_guard_cache_enabled(was_enabled);
    result
}

/// The contractual part of a search report: verdict, explored states, cost
/// and the consult *total* (the hit/miss split is explicitly
/// non-contractual — sharing one cache across a batch, or across a session's
/// steps, moves consults from misses to hits without changing their number).
pub fn digest<V: Clone>(report: &SearchReport<V>) -> (V, usize, usize, u64) {
    (
        report.verdict.clone(),
        report.explored,
        report.cost,
        report.cache.total(),
    )
}

/// The digest that must additionally survive *changing* the thread count:
/// verdict, explored states and charged cost.  Consult totals are
/// chunk-structure-dependent (the frontier chunk length scales with the
/// thread count, and every expanded node consults guards even when an
/// earlier chunk neighbour's witness ends the merge early), so they are
/// compared within a thread count, never across.
pub fn core_digest<V: Clone>(report: &SearchReport<V>) -> (V, usize, usize) {
    (report.verdict.clone(), report.explored, report.cost)
}

/// Strategy: a random initial instance over the phone-directory schema.
pub fn random_initial() -> impl Strategy<Value = Instance> {
    proptest::collection::vec(any::<bool>(), 0..3).prop_map(|picks| {
        let mut initial = Instance::new();
        for (i, pick) in picks.into_iter().enumerate() {
            if pick {
                initial.add_fact("Address", tuple!["High St", "OX26NN", "Seed", i as i64]);
            } else {
                initial.add_fact("Mobile#", tuple!["Smith", "OX13QD", "Parks Rd", 5_551_212]);
            }
        }
        initial
    })
}

/// `∃ s p h. Address^post(s, p, "Jones", h)` — Jones's address revealed.
pub fn jones_post() -> AccLtl {
    AccLtl::atom(PosFormula::exists(
        vec!["s", "p", "h"],
        post_atom(
            "Address",
            vec![
                Term::var("s"),
                Term::var("p"),
                Term::constant("Jones"),
                Term::var("h"),
            ],
        ),
    ))
}

/// `∃ n p s ph. Mobile#^pre(n, p, s, ph)` — some mobile entry was known
/// before the transition.
pub fn mobile_pre() -> AccLtl {
    AccLtl::atom(PosFormula::exists(
        vec!["n", "p", "s", "ph"],
        pre_atom(
            "Mobile#",
            vec![
                Term::var("n"),
                Term::var("p"),
                Term::var("s"),
                Term::var("ph"),
            ],
        ),
    ))
}

/// The paper's dataflow property: eventually an AcM1 access is bound to a
/// name already revealed in `Address^pre` (binding-aware, so the `IsBind`
/// restriction of the cache keys is genuinely exercised).
pub fn dataflow_formula() -> AccLtl {
    AccLtl::finally(AccLtl::atom(PosFormula::exists(
        vec!["n"],
        PosFormula::and(vec![
            isbind_atom("AcM1", vec![Term::var("n")]),
            PosFormula::exists(
                vec!["s", "p", "h"],
                pre_atom(
                    "Address",
                    vec![
                        Term::var("s"),
                        Term::var("p"),
                        Term::var("n"),
                        Term::var("h"),
                    ],
                ),
            ),
        ]),
    )))
}

/// Strategy: small formulas mixing satisfiable, unsatisfiable and
/// binding-aware shapes over the phone-directory vocabulary.
pub fn random_formula() -> impl Strategy<Value = AccLtl> {
    prop_oneof![
        Just(AccLtl::finally(jones_post())),
        Just(AccLtl::next(mobile_pre())),
        Just(AccLtl::and(vec![
            AccLtl::finally(jones_post()),
            AccLtl::finally(mobile_pre()),
        ])),
        Just(AccLtl::and(vec![
            AccLtl::globally(AccLtl::not(jones_post())),
            AccLtl::finally(jones_post()),
        ])),
        Just(AccLtl::until(
            AccLtl::not(mobile_pre()),
            AccLtl::atom(isbind_prop("AcM2")),
        )),
        Just(dataflow_formula()),
    ]
}

/// The Fig-1 workload scaled: `scale` streets, each with a looked-up mobile
/// entry and four address-page residents (the shape the `overlay`,
/// `guard_cache` and `monitor` benches use).
pub fn scaled_initial(scale: usize) -> Instance {
    let mut hidden = Instance::new();
    for s in 0..scale {
        let street = format!("Street{s}");
        let postcode = format!("OX{s}QD");
        hidden.add_fact(
            "Mobile#",
            tuple![
                format!("Resident{s}_0").as_str(),
                postcode.as_str(),
                street.as_str(),
                5_551_000 + s as i64
            ],
        );
        for h in 0..4usize {
            hidden.add_fact(
                "Address",
                tuple![
                    street.as_str(),
                    postcode.as_str(),
                    format!("Resident{s}_{h}").as_str(),
                    h as i64
                ],
            );
        }
    }
    hidden
}
