//! Coverage for the two analyzer entry points the paper's Section 2
//! examples are built on and that were previously exercised only through
//! examples: `AccessAnalyzer::maximal_answers` (the classical
//! accessible-part saturation of \[15\]) and
//! `AccessAnalyzer::contained_under_access_patterns` (Example 2.2 /
//! Proposition 4.4).  Unit tests pin the paper's phone-directory outcomes;
//! a property test checks the semantic backbone — maximal answers are
//! *monotone* under instance growth, because revealing more facts (or
//! knowing more initially) can only enlarge the accessible part.

mod common;

use proptest::prelude::*;

use accltl_core::prelude::*;

use common::random_initial;

/// Strategy: one of the phone-directory queries the paper's examples ask.
fn example_query() -> impl Strategy<Value = ConjunctiveQuery> {
    prop_oneof![
        // Jones's address (the introduction's unanswerable query).
        Just(cq!([x, y, z] <- atom!("Address"; x, y, @"Jones", z))),
        // Every name with a mobile entry.
        Just(cq!([n] <- atom!("Mobile#"; n, p, s, ph))),
        // The Smith chain: mobile lookup bootstraps the address page.
        Just(cq!([s, p, h] <-
            atom!("Mobile#"; @"Smith", p0, s0, ph),
            atom!("Address"; s, p, @"Smith", h))),
        // Full address projection.
        Just(cq!([s, p, n, h] <- atom!("Address"; s, p, n, h))),
    ]
}

/// Strategy: extra phone-directory facts to grow an instance by.
fn extra_facts() -> impl Strategy<Value = Vec<(&'static str, Tuple)>> {
    let fact = prop_oneof![
        Just(("Mobile#", tuple!["Jones", "OX13QD", "Parks Rd", 5_551_999])),
        Just(("Mobile#", tuple!["Taylor", "OX26NN", "High St", 5_552_000])),
        Just(("Address", tuple!["High St", "OX26NN", "Taylor", 7])),
        Just(("Address", tuple!["Parks Rd", "OX13QD", "Dole", 2])),
    ];
    proptest::collection::vec(fact, 0..4)
}

fn grown(base: &Instance, extra: &[(&'static str, Tuple)]) -> Instance {
    let mut out = base.clone();
    for (relation, tuple) in extra {
        out.add_fact(*relation, tuple.clone());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Monotonicity under instance growth: adding facts to the hidden
    /// instance and/or the initial knowledge never shrinks the maximal
    /// answers (nor the unrestricted answers) — the accessible-part
    /// saturation only ever gains known values and revealed facts.
    #[test]
    fn maximal_answers_are_monotone_under_instance_growth(
        query in example_query(),
        initial in random_initial(),
        hidden_extra in extra_facts(),
        initial_extra in extra_facts(),
    ) {
        let schema = phone_directory_access_schema();
        let hidden = phone_directory_hidden_instance();
        let small = AccessAnalyzer::new(schema.clone())
            .with_initial(initial.clone())
            .maximal_answers(&query, &hidden)
            .unwrap();
        let large = AccessAnalyzer::new(schema)
            .with_initial(grown(&initial, &initial_extra))
            .maximal_answers(&query, &grown(&hidden, &hidden_extra))
            .unwrap();
        prop_assert!(
            small.answers.is_subset(&large.answers),
            "maximal answers shrank under growth: {:?} ⊄ {:?}",
            small.answers,
            large.answers
        );
        prop_assert!(small.full_answers.is_subset(&large.full_answers));
        // Within one report, the access restrictions only ever lose answers.
        prop_assert!(small.answers.is_subset(&small.full_answers));
        prop_assert!(large.answers.is_subset(&large.full_answers));
    }
}

/// The introduction's outcome, pinned end-to-end through the analyzer:
/// Jones's address is *not* answerable from nothing (Jones has no mobile
/// entry to bootstrap from), while the Smith chain is fully answerable and
/// even reveals Jones's address tuple along the way.
#[test]
fn jones_is_unanswerable_but_the_smith_chain_is_complete() {
    let analyzer = AccessAnalyzer::new(phone_directory_access_schema());
    let hidden = phone_directory_hidden_instance();

    let jones = cq!([x, y, z] <- atom!("Address"; x, y, @"Jones", z));
    let report = analyzer.maximal_answers(&jones, &hidden).unwrap();
    assert!(report.answers.is_empty());
    assert!(!report.full_answers.is_empty());
    assert!(!report.is_complete());

    let smith_chain = cq!([s, p, h] <-
        atom!("Mobile#"; @"Smith", p0, s0, ph),
        atom!("Address"; s, p, @"Smith", h));
    let report = analyzer.maximal_answers(&smith_chain, &hidden).unwrap();
    assert!(report.is_complete());
    assert_eq!(report.answers.len(), 1);
    assert!(report
        .accessible
        .contains("Address", &tuple!["Parks Rd", "OX13QD", "Jones", 16]));
}

/// The analyzer's initial instance flows into the saturation: knowing
/// Smith's address page up front makes the mobile lookup groundable, so the
/// name projection gains an answer it did not have from nothing.
#[test]
fn initial_knowledge_flows_into_maximal_answers() {
    let schema = phone_directory_access_schema();
    let hidden = phone_directory_hidden_instance();
    let query = cq!([n] <- atom!("Mobile#"; n, p, s, ph));

    let from_nothing = AccessAnalyzer::new(schema.clone())
        .maximal_answers(&query, &hidden)
        .unwrap();
    assert!(from_nothing.answers.is_empty());

    let mut initial = Instance::new();
    initial.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Smith", 13]);
    let seeded = AccessAnalyzer::new(schema)
        .with_initial(initial)
        .maximal_answers(&query, &hidden)
        .unwrap();
    assert!(seeded.answers.contains(&tuple!["Smith"]));
}

/// The report's bookkeeping is coherent: the witness path validates against
/// the access schema and records exactly the accesses the saturation
/// performed, unproductive ones included.
#[test]
fn witness_paths_validate_and_account_for_every_access() {
    let schema = phone_directory_access_schema();
    let analyzer = AccessAnalyzer::new(schema.clone());
    let query = cq!([s, p, h] <-
        atom!("Mobile#"; @"Smith", p0, s0, ph),
        atom!("Address"; s, p, @"Smith", h));
    let report = analyzer
        .maximal_answers(&query, &phone_directory_hidden_instance())
        .unwrap();
    assert!(report.witness_path.validate(&schema).is_ok());
    assert_eq!(report.witness_path.len(), report.accesses_performed);
    assert!(report.accesses_performed >= 1);
}

/// Example 2.2, pinned: the Jones-address query is contained in the generic
/// address query (plain CQ containment already implies it), while the
/// reverse containment fails with a genuine counterexample access path.
#[test]
fn containment_pins_the_paper_example() {
    let schema = phone_directory_access_schema();
    let analyzer = AccessAnalyzer::new(schema.clone());
    let jones = cq!(<- atom!("Address"; s, p, @"Jones", h));
    let any_address = cq!(<- atom!("Address"; s, p, n, h));

    assert_eq!(
        analyzer.contained_under_access_patterns(&jones, &any_address),
        ContainmentOutcome::Contained
    );

    let ContainmentOutcome::NotContained { counterexample } =
        analyzer.contained_under_access_patterns(&any_address, &jones)
    else {
        panic!("expected the reverse containment to fail");
    };
    assert!(counterexample.validate(&schema).is_ok());
    assert!(!counterexample.is_empty());
}

/// Containment under access patterns is reflexive and transitive on the
/// paper's query chain — the outcomes compose the way Figure 2's inclusion
/// arrows do.
#[test]
fn containment_is_reflexive_and_composes_along_the_chain() {
    let analyzer = AccessAnalyzer::new(phone_directory_access_schema());
    let jones = cq!(<- atom!("Address"; s, p, @"Jones", h));
    let parks = cq!(<- atom!("Address"; @"Parks Rd", p, n, h));
    let any_address = cq!(<- atom!("Address"; s, p, n, h));

    for q in [&jones, &parks, &any_address] {
        assert_eq!(
            analyzer.contained_under_access_patterns(q, q),
            ContainmentOutcome::Contained
        );
    }
    // jones ⊑ any_address and parks ⊑ any_address, but the two specialised
    // queries are incomparable with each other.
    assert_eq!(
        analyzer.contained_under_access_patterns(&parks, &any_address),
        ContainmentOutcome::Contained
    );
    assert!(matches!(
        analyzer.contained_under_access_patterns(&jones, &parks),
        ContainmentOutcome::NotContained { .. }
    ));
    assert!(matches!(
        analyzer.contained_under_access_patterns(&parks, &jones),
        ContainmentOutcome::NotContained { .. }
    ));
}
