//! Figure 2: the inclusion diagram between the language classes, verified by
//! (a) the fragment lattice, (b) the executable conversions (0-ary → AccLTL+
//! lifting, AccLTL+ → A-automata translation), and (c) a strictness witness
//! for the A-automata vs AccLTL+ edge (parity of path length).

use accltl_core::automata::{accltl_plus_to_automaton, AAutomaton, Guard};
use accltl_core::logic::fragment::{belongs_to, lift_zero_ary_to_binding_positive};
use accltl_core::prelude::*;

fn sample_paths() -> Vec<AccessPath> {
    let acm1 = Access::new("AcM1", tuple!["Smith"]);
    let acm2 = Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]);
    let hit1 = (
        acm1.clone(),
        [tuple!["Smith", "OX13QD", "Parks Rd", 5551212]]
            .into_iter()
            .collect(),
    );
    let hit2 = (
        acm2.clone(),
        [tuple!["Parks Rd", "OX13QD", "Jones", 16]]
            .into_iter()
            .collect(),
    );
    let miss1 = (acm1, [].into_iter().collect());
    let miss2 = (acm2, [].into_iter().collect());
    vec![
        AccessPath::from_steps(vec![hit1.clone()]),
        AccessPath::from_steps(vec![hit2.clone()]),
        AccessPath::from_steps(vec![hit1.clone(), hit2.clone()]),
        AccessPath::from_steps(vec![hit2.clone(), hit1.clone()]),
        AccessPath::from_steps(vec![miss1.clone(), hit2.clone()]),
        AccessPath::from_steps(vec![miss2, miss1, hit2, hit1]),
    ]
}

/// Every inclusion edge of Figure 2 holds in the fragment lattice, and the
/// lattice has no spurious edges (e.g. the inequality fragments do not embed
/// into the inequality-free ones).
#[test]
fn figure2_edges_in_the_fragment_lattice() {
    use Fragment::*;
    let edges = [
        (XZeroAry, ZeroAry),
        (XZeroAry, ZeroAryWithInequalities),
        (ZeroAry, ZeroAryWithInequalities),
        (ZeroAry, BindingPositive),
        (BindingPositive, Full),
        (Full, FullWithInequalities),
        (ZeroAryWithInequalities, FullWithInequalities),
    ];
    for (smaller, larger) in edges {
        assert!(
            smaller == larger || smaller.included_in().contains(&larger),
            "{smaller} should be included in {larger}"
        );
    }
    // Non-edges.
    assert!(!ZeroAryWithInequalities.included_in().contains(&ZeroAry));
    assert!(!Full.included_in().contains(&BindingPositive));
    assert!(!BindingPositive.included_in().contains(&ZeroAry));
}

/// The 0-ary fragment embeds into AccLTL+ via the executable lifting, which
/// preserves satisfaction on (non-empty) sample paths.
#[test]
fn zero_ary_lifts_into_accltl_plus() {
    let schema = phone_directory_access_schema();
    let formulas = vec![
        AccLtl::until(
            AccLtl::not(AccLtl::atom(isbind_prop("AcM1"))),
            AccLtl::atom(isbind_prop("AcM2")),
        ),
        AccLtl::finally(AccLtl::atom(isbind_prop("AcM1"))),
        properties::access_order_formula("AcM2", "AcM1"),
        AccLtl::next(AccLtl::atom(isbind_prop("AcM2"))),
    ];
    for formula in formulas {
        assert!(belongs_to(&formula, Fragment::ZeroAryWithInequalities));
        let lifted = lift_zero_ary_to_binding_positive(&formula, &schema);
        assert!(
            lifted.is_binding_positive(),
            "lift of {formula} must be binding-positive"
        );
        for path in sample_paths() {
            let original = formula
                .holds_on_path(&path, &schema, &Instance::new(), true)
                .unwrap();
            let lifted_result = lifted
                .holds_on_path(&path, &schema, &Instance::new(), false)
                .unwrap();
            assert_eq!(original, lifted_result, "formula {formula}, path {path}");
        }
    }
}

/// AccLTL+ embeds into A-automata via the Lemma 4.5 translation, which agrees
/// with the formula on the sample paths.
#[test]
fn accltl_plus_embeds_into_a_automata() {
    let schema = phone_directory_access_schema();
    let formulas = vec![
        properties::eventually_answered_formula(&cq!(<- atom!("Address"; s, p, @"Jones", h))),
        AccLtl::globally(AccLtl::not(AccLtl::atom(PosFormula::exists(
            vec!["n", "p", "s", "ph"],
            pre_atom(
                "Mobile#",
                vec![
                    Term::var("n"),
                    Term::var("p"),
                    Term::var("s"),
                    Term::var("ph"),
                ],
            ),
        )))),
        properties::dataflow_formula(&schema, "AcM1", 0, "Address", 2),
    ];
    for formula in formulas {
        let automaton = accltl_plus_to_automaton(&formula);
        assert!(automaton.is_well_formed());
        for path in sample_paths() {
            let transitions = path.transitions(&schema, &Instance::new()).unwrap();
            assert_eq!(
                formula.satisfied_by_transitions(&transitions, false),
                automaton.accepts_transitions(&transitions),
                "formula {formula}, path {path}"
            );
        }
    }
}

/// Strictness of the A-automata edge: the even-length-path automaton
/// distinguishes paths that every AccLTL formula of the corpus treats alike —
/// the executable counterpart of the paper's parity remark in Section 6.
#[test]
fn parity_automaton_witnesses_strictness() {
    let schema = phone_directory_access_schema();
    let mut parity = AAutomaton::new(2, 0);
    parity.add_transition(0, Guard::always(), 1);
    parity.add_transition(1, Guard::always(), 0);
    parity.mark_accepting(0);

    // Two paths performing the same access with the same (empty) response,
    // once and twice: indistinguishable by any transition sentence, but the
    // parity automaton separates them.
    let step = (
        Access::new("AcM1", tuple!["Smith"]),
        [].into_iter().collect::<std::collections::BTreeSet<_>>(),
    );
    let once = AccessPath::from_steps(vec![step.clone()]);
    let twice = AccessPath::from_steps(vec![step.clone(), step]);
    let t_once = once.transitions(&schema, &Instance::new()).unwrap();
    let t_twice = twice.transitions(&schema, &Instance::new()).unwrap();
    assert!(!parity.accepts_transitions(&t_once));
    assert!(parity.accepts_transitions(&t_twice));
    // Both transitions of the length-two path are structurally identical to
    // the single transition of the length-one path, so any single transition
    // sentence evaluates identically on them.
    let s1 = accltl_core::logic::vocabulary::transition_structure(&t_once[0], false);
    let s2 = accltl_core::logic::vocabulary::transition_structure(&t_twice[0], false);
    let s3 = accltl_core::logic::vocabulary::transition_structure(&t_twice[1], false);
    assert_eq!(s1, s2);
    assert_eq!(s2, s3);
}
