//! Differential property tests for the guard-verdict cache
//! (`relational::guard_cache`): cached and uncached evaluation must be
//! *byte-identical* — the same verdicts, the same witnesses, the same
//! guard-consult totals — for the bounded satisfiability search and the
//! A-automaton emptiness search, on 1 and on 4 worker threads; and on the
//! Fig-1 workload at ×4 scale the cache must demonstrably *work* (nonzero
//! hits, consult totals matching the uncached run), so a silently dead cache
//! fails here instead of just benching flat.

mod common;

use proptest::prelude::*;

use accltl_core::automata::{
    accltl_plus_to_automaton, bounded_emptiness, bounded_emptiness_with_stats, EmptinessConfig,
};
use accltl_core::logic::bounded::BoundedSearcher;
use accltl_core::prelude::*;

use common::{
    dataflow_formula, flag_lock, jones_post, random_formula, random_initial, scaled_initial,
    with_cache_disabled,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Bounded search: cached vs uncached runs agree exactly — verdict,
    /// witness and guard-consult total (an uncached run records every
    /// consult as a miss).
    #[test]
    fn bounded_search_is_cache_independent(
        formula in random_formula(),
        initial in random_initial(),
        zero_ary in any::<bool>(),
    ) {
        let _guard = flag_lock();
        let schema = phone_directory_access_schema();
        let searcher = BoundedSearcher::new(
            &schema,
            &initial,
            zero_ary,
            BoundedSearchConfig { threads: 1, ..BoundedSearchConfig::default() },
        );
        let (cached, cached_stats) = searcher.search_with_stats(&formula);
        let (uncached, uncached_stats) =
            with_cache_disabled(|| searcher.search_with_stats(&formula));
        prop_assert_eq!(&cached, &uncached);
        prop_assert_eq!(uncached_stats.hits, 0);
        prop_assert_eq!(cached_stats.total(), uncached_stats.total());
        if let SatOutcome::Satisfiable { witness } = &cached {
            prop_assert!(witness.validate(&schema).is_ok());
        }
    }

    /// Emptiness: cached vs uncached runs agree exactly, and witnesses are
    /// genuinely accepted.
    #[test]
    fn emptiness_is_cache_independent(
        satisfiable in any::<bool>(),
        initial in random_initial(),
    ) {
        let _guard = flag_lock();
        let schema = phone_directory_access_schema();
        let formula = if satisfiable {
            AccLtl::finally(jones_post())
        } else {
            AccLtl::and(vec![
                AccLtl::globally(AccLtl::not(jones_post())),
                AccLtl::finally(jones_post()),
            ])
        };
        let automaton = accltl_plus_to_automaton(&formula);
        let config = EmptinessConfig { threads: 1, ..EmptinessConfig::default() };
        let (cached, cached_stats) =
            bounded_emptiness_with_stats(&automaton, &schema, &initial, &config);
        let (uncached, uncached_stats) = with_cache_disabled(|| {
            bounded_emptiness_with_stats(&automaton, &schema, &initial, &config)
        });
        prop_assert_eq!(&cached, &uncached);
        prop_assert_eq!(uncached_stats.hits, 0);
        prop_assert_eq!(cached_stats.total(), uncached_stats.total());
        if let accltl_core::automata::EmptinessOutcome::NonEmpty { witness } = &cached {
            let transitions = witness.transitions(&schema, &initial).unwrap();
            prop_assert!(automaton.accepts_transitions(&transitions));
        }
    }

    /// With the cache on, the shared-cache parallel search returns exactly
    /// the single-thread result (the cache is shared by the workers; the
    /// engine's determinism contract must survive it).
    #[test]
    fn shared_cache_search_is_thread_deterministic(
        formula in random_formula(),
        initial in random_initial(),
    ) {
        let _guard = flag_lock();
        let schema = phone_directory_access_schema();
        let outcomes: Vec<SatOutcome> = [1usize, 4]
            .iter()
            .map(|&threads| {
                BoundedSearcher::new(
                    &schema,
                    &initial,
                    false,
                    BoundedSearchConfig { threads, ..BoundedSearchConfig::default() },
                )
                .search(&formula)
            })
            .collect();
        prop_assert_eq!(&outcomes[0], &outcomes[1]);
    }

    /// Same shared-cache determinism for the emptiness product search.
    #[test]
    fn shared_cache_emptiness_is_thread_deterministic(
        initial in random_initial(),
    ) {
        let _guard = flag_lock();
        let schema = phone_directory_access_schema();
        let automaton = accltl_plus_to_automaton(&dataflow_formula());
        let outcomes: Vec<_> = [1usize, 4]
            .iter()
            .map(|&threads| {
                let config = EmptinessConfig { threads, ..EmptinessConfig::default() };
                bounded_emptiness(&automaton, &schema, &initial, &config)
            })
            .collect();
        prop_assert_eq!(&outcomes[0], &outcomes[1]);
    }
}

/// Cache-effectiveness regression: on the Fig-1 workload at ×4 scale the
/// cache must record real hits, and `hits + misses` must equal the uncached
/// guard-check count — a dead cache (never consulted, or keyed so nothing
/// ever repeats) fails this instead of just benching flat.
#[test]
fn fig1_x4_cache_is_alive_and_accounted() {
    let _guard = flag_lock();
    let schema = phone_directory_access_schema();
    let initial = scaled_initial(4);
    let formula = dataflow_formula();

    let searcher = BoundedSearcher::new(
        &schema,
        &initial,
        false,
        BoundedSearchConfig {
            threads: 1,
            ..BoundedSearchConfig::default()
        },
    );
    let (cached, cached_stats) = searcher.search_with_stats(&formula);
    let (uncached, uncached_stats) = with_cache_disabled(|| searcher.search_with_stats(&formula));
    assert_eq!(cached, uncached);
    assert!(
        cached_stats.hits > 0,
        "guard cache recorded no hits on the ×4 layered workload: {cached_stats:?}"
    );
    assert_eq!(uncached_stats.hits, 0);
    assert_eq!(
        cached_stats.total(),
        uncached_stats.misses,
        "hit+miss must equal the uncached guard-check count"
    );

    let automaton = accltl_plus_to_automaton(&formula);
    let config = EmptinessConfig {
        threads: 1,
        ..EmptinessConfig::default()
    };
    let (cached, cached_stats) =
        bounded_emptiness_with_stats(&automaton, &schema, &initial, &config);
    let (uncached, uncached_stats) = with_cache_disabled(|| {
        bounded_emptiness_with_stats(&automaton, &schema, &initial, &config)
    });
    assert_eq!(cached, uncached);
    assert!(
        cached_stats.hits > 0,
        "emptiness guard cache recorded no hits on the ×4 layered workload: {cached_stats:?}"
    );
    assert_eq!(uncached_stats.hits, 0);
    assert_eq!(cached_stats.total(), uncached_stats.misses);
}

/// Cross-chain regression for the content-addressed `StructureKey`: one
/// guard cache must share verdicts between two overlay chains whose bases
/// are *different `Arc` allocations* and whose facts split differently
/// between base and delta, as long as their content is the same Fig-1 ×4
/// workload.  The address-keyed cache of earlier revisions keyed on the
/// base allocation's address, so this exact scenario scored 0 hits (every
/// chain was an island); content keys make the second consult a hit.
#[test]
fn equal_content_chains_hit_across_allocations() {
    use accltl_core::relational::{CompiledSentence, GuardCache, GuardCacheStats};
    use std::sync::Arc;

    let _guard = flag_lock();
    let sentence = CompiledSentence::compile(&PosFormula::exists(
        vec!["s", "p", "n", "h"],
        PosFormula::atom(atom!("Address"; s, p, n, h)),
    ));

    // Chain A: every ×4 fact lives in the base, the delta is empty.
    let chain_a = InstanceOverlay::new(Arc::new(scaled_initial(4)));
    // Chain B: a fresh ×3 base allocation, with street 3's facts pushed
    // through the overlay delta — same materialized content as chain A,
    // reached over a different base and a different base/delta split.
    let mut chain_b = InstanceOverlay::new(Arc::new(scaled_initial(3)));
    for (rel, tuple) in scaled_initial(4).facts() {
        chain_b.push_fact(rel, tuple.clone());
    }
    assert_eq!(chain_a.materialize(), chain_b.materialize());

    let cache = GuardCache::new();
    let first = sentence.holds_cached(&chain_a, &cache, true);
    assert_eq!(
        cache.stats(),
        GuardCacheStats { hits: 0, misses: 1 },
        "the first consult must be the only homomorphism search"
    );
    let second = sentence.holds_cached(&chain_b, &cache, true);
    assert_eq!(first, second);
    let stats = cache.stats();
    assert!(
        stats.hits > 0,
        "equal-content chains over distinct allocations must share a cache \
         entry (address-keyed caches scored 0 hits here): {stats:?}"
    );
    assert_eq!(stats.misses, 1);

    // The replayed verdict matches an uncached evaluation on either chain.
    assert_eq!(second, sentence.holds(&chain_b));
}

/// The structural sentence-id registry and the per-search caches must not
/// leak verdicts across searches: running a satisfiable and a contradictory
/// formula back to back in one process (same sentences, same ids) keeps
/// their verdicts apart.
#[test]
fn verdicts_do_not_leak_across_searches() {
    let _guard = flag_lock();
    let schema = phone_directory_access_schema();
    let satisfiable = AccLtl::finally(jones_post());
    let contradiction = AccLtl::and(vec![
        AccLtl::globally(AccLtl::not(jones_post())),
        AccLtl::finally(jones_post()),
    ]);
    let searcher = BoundedSearcher::new(
        &schema,
        &Instance::new(),
        true,
        BoundedSearchConfig::default(),
    );
    assert!(searcher.search(&satisfiable).is_satisfiable());
    assert_eq!(searcher.search(&contradiction), SatOutcome::Unsatisfiable);
    assert!(searcher.search(&satisfiable).is_satisfiable());
}
