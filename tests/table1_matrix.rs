//! Table 1: the expressiveness matrix (DjC / FD / DF / AccOr per language)
//! and the decidability column, verified with concrete formulas.

use accltl_core::prelude::*;

/// Every "Yes" cell of Table 1's application columns is witnessed by a
/// concrete formula built by `properties` that (a) expresses the intended
/// restriction and (b) is accepted by the fragment checker for that row.
#[test]
fn yes_cells_have_witnessing_formulas() {
    let schema = phone_directory_access_schema();
    let disjointness = properties::disjointness_formula_for(
        &schema,
        &DisjointnessConstraint::new("Mobile#", 0, "Address", 0),
    );
    let fd = properties::functional_dependency_formula(
        &schema,
        &FunctionalDependency::new("Mobile#", vec![0], 3),
    );
    let dataflow = properties::dataflow_formula(&schema, "AcM1", 0, "Address", 2);
    let access_order = properties::access_order_formula("AcM2", "AcM1");

    // Row AccLTL+: DjC yes, DF yes, AccOr yes, FD no.
    assert!(belongs(&disjointness, Fragment::BindingPositive));
    assert!(belongs(&dataflow, Fragment::BindingPositive));
    assert!(belongs(&access_order, Fragment::BindingPositive));
    assert!(!belongs(&fd, Fragment::BindingPositive));
    let row = Fragment::BindingPositive.expressiveness();
    assert!(row.disjointness && row.dataflow && row.access_order && !row.functional_dependencies);

    // Row AccLTL(FO∃+0−Acc): DjC yes, AccOr yes, DF no (the dataflow formula
    // needs n-ary IsBind), FD no (needs inequalities).
    assert!(belongs(&disjointness, Fragment::ZeroAry));
    assert!(belongs(&access_order, Fragment::ZeroAry));
    assert!(!belongs(&dataflow, Fragment::ZeroAry));
    assert!(!belongs(&fd, Fragment::ZeroAry));
    let row = Fragment::ZeroAry.expressiveness();
    assert!(row.disjointness && row.access_order && !row.dataflow && !row.functional_dependencies);

    // Row AccLTL(FO∃+,≠0−Acc): additionally FD yes.
    assert!(belongs(&fd, Fragment::ZeroAryWithInequalities));
    assert!(
        Fragment::ZeroAryWithInequalities
            .expressiveness()
            .functional_dependencies
    );

    // Row AccLTL(X): no access-order restrictions (they need U), but DjC/FD
    // still expressible as one-step properties.
    assert!(!access_order.is_x_only());
    assert!(!Fragment::XZeroAry.expressiveness().access_order);

    // Row AccLTL(FO∃+,≠Acc): everything.
    let row = Fragment::FullWithInequalities.expressiveness();
    assert!(row.disjointness && row.functional_dependencies && row.dataflow && row.access_order);
}

fn belongs(formula: &AccLtl, fragment: Fragment) -> bool {
    accltl_core::logic::fragment::belongs_to(formula, fragment)
}

/// The decidability column: the paper's complexity labels per row, and the
/// behaviour of the solvers on each row (decidable rows return definite
/// verdicts on small inputs; undecidable rows only ever return witnesses or
/// Unknown).
#[test]
fn decidability_column_matches_solver_behaviour() {
    let schema = phone_directory_access_schema();
    let analyzer = AccessAnalyzer::new(schema.clone());

    assert!(!Fragment::Full.is_decidable());
    assert!(!Fragment::FullWithInequalities.is_decidable());
    assert!(Fragment::ZeroAry.is_decidable());
    assert!(Fragment::XZeroAry.is_decidable());
    assert!(Fragment::BindingPositive.is_decidable());
    assert_eq!(Fragment::ZeroAry.complexity(), "PSPACE-complete");
    assert_eq!(Fragment::XZeroAry.complexity(), "ΣP2-complete");
    assert!(Fragment::BindingPositive.complexity().contains("3EXPTIME"));
    assert_eq!(Fragment::Full.complexity(), "undecidable");

    // Decidable rows: a contradiction is reported as unsatisfiable.
    let jones = AccLtl::atom(PosFormula::exists(
        vec!["s", "p", "h"],
        post_atom(
            "Address",
            vec![
                Term::var("s"),
                Term::var("p"),
                Term::constant("Jones"),
                Term::var("h"),
            ],
        ),
    ));
    let contradiction = AccLtl::and(vec![
        AccLtl::globally(AccLtl::not(jones.clone())),
        AccLtl::finally(jones.clone()),
    ]);
    assert_eq!(classify(&contradiction), Fragment::ZeroAry);
    assert_eq!(
        analyzer.check_satisfiable(&contradiction).outcome,
        SatOutcome::Unsatisfiable
    );

    // Undecidable row: the analyzer never claims Unsatisfiable, only
    // Satisfiable (with a witness) or Unknown.
    let binding = AccLtl::atom(PosFormula::exists(
        vec!["n"],
        isbind_atom("AcM1", vec![Term::var("n")]),
    ));
    let full_language_contradiction = AccLtl::and(vec![
        AccLtl::globally(AccLtl::not(binding.clone())),
        AccLtl::finally(binding),
    ]);
    assert_eq!(classify(&full_language_contradiction), Fragment::Full);
    let outcome = analyzer
        .check_satisfiable(&full_language_contradiction)
        .outcome;
    assert!(matches!(outcome, SatOutcome::Unknown { .. }));
}

/// The complexity ordering of Table 1 is reflected operationally: on the same
/// underlying question (is the Jones tuple reachable?), the X-fragment
/// procedure explores no more of the witness space than the PSPACE procedure,
/// which in turn handles formulas the automaton pipeline is also correct on.
/// (Absolute timings are the benchmarks' job; this test pins the agreement of
/// the three engines.)
#[test]
fn engines_agree_across_rows() {
    let schema = phone_directory_access_schema();
    let analyzer = AccessAnalyzer::new(schema.clone());
    let jones_post = PosFormula::exists(
        vec!["s", "p", "h"],
        post_atom(
            "Address",
            vec![
                Term::var("s"),
                Term::var("p"),
                Term::constant("Jones"),
                Term::var("h"),
            ],
        ),
    );

    // X fragment: "the first access already reveals Jones".
    let x_version = AccLtl::atom(jones_post.clone());
    // PSPACE fragment: "eventually Jones is revealed".
    let zero_version = AccLtl::finally(AccLtl::atom(jones_post.clone()));
    // AccLTL+ via automata: same property with an explicit binding atom.
    let plus_version = AccLtl::finally(AccLtl::and(vec![
        AccLtl::atom(PosFormula::exists(
            vec!["s", "p"],
            isbind_atom("AcM2", vec![Term::var("s"), Term::var("p")]),
        )),
        AccLtl::atom(jones_post),
    ]));

    let x_report = analyzer.check_satisfiable(&x_version);
    let zero_report = analyzer.check_satisfiable(&zero_version);
    let plus_report = analyzer.check_satisfiable(&plus_version);
    assert!(x_report.is_satisfiable());
    assert!(zero_report.is_satisfiable());
    assert!(plus_report.is_satisfiable());
    assert_eq!(x_report.fragment, Fragment::XZeroAry);
    assert_eq!(zero_report.fragment, Fragment::ZeroAry);
    assert_eq!(plus_report.fragment, Fragment::BindingPositive);
    // The X-fragment witness is a single access; the others may be longer but
    // must be valid paths satisfying their formulas.
    assert_eq!(x_report.witness().unwrap().len(), 1);
    for (report, formula) in [(&zero_report, &zero_version), (&plus_report, &plus_version)] {
        let witness = report.witness().unwrap();
        let zero_ary = report.fragment != Fragment::BindingPositive;
        assert!(formula
            .holds_on_path(witness, &schema, &Instance::new(), zero_ary)
            .unwrap());
    }
}
