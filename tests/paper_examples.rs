//! Integration tests replaying the paper's worked examples across crates.

use accltl_core::analyzer::ContainmentOutcome;
use accltl_core::prelude::*;

fn figure1_path() -> AccessPath {
    AccessPath::new()
        .with_step(
            Access::new("AcM1", tuple!["Smith"]),
            [tuple!["Smith", "OX13QD", "Parks Rd", 5551212]]
                .into_iter()
                .collect(),
        )
        .with_step(
            Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]),
            [
                tuple!["Parks Rd", "OX13QD", "Smith", 13],
                tuple!["Parks Rd", "OX13QD", "Jones", 16],
            ]
            .into_iter()
            .collect(),
        )
}

/// Figure 1 / Section 2: the running example's path is well-formed, its
/// configurations accumulate the revealed facts, and the introduction's
/// motivating query is unanswerable from an empty start but answerable once
/// a mobile-customer name bootstraps the chain.
#[test]
fn figure1_and_answerability() {
    let schema = phone_directory_access_schema();
    let path = figure1_path();
    assert!(path.validate(&schema).is_ok());
    let config = path.configuration(&schema, &Instance::new()).unwrap();
    assert_eq!(config.fact_count(), 3);

    let analyzer = AccessAnalyzer::new(schema.clone());
    let hidden = phone_directory_hidden_instance();
    let jones_address = cq!([x, y, z] <- atom!("Address"; x, y, @"Jones", z));
    let report = analyzer.maximal_answers(&jones_address, &hidden).unwrap();
    assert!(report.answers.is_empty());
    assert!(!report.is_complete());

    // Knowing Smith's name (as a query constant) bootstraps the chain and
    // reveals Jones's tuple as a side effect.
    let with_smith = cq!([x, y, z] <-
        atom!("Mobile#"; @"Smith", p, s, ph),
        atom!("Address"; x, y, @"Jones", z));
    let report = analyzer.maximal_answers(&with_smith, &hidden).unwrap();
    assert!(report.is_complete());
    assert_eq!(report.answers.len(), 1);
}

/// Example 2.2: containment under access patterns, checked through the
/// analyzer (which uses the Proposition 4.4 automaton + emptiness), agrees
/// with plain CQ containment on both a positive and a negative case.
#[test]
fn example_2_2_containment() {
    let analyzer = AccessAnalyzer::new(phone_directory_access_schema());
    let specific = cq!(<- atom!("Address"; s, p, @"Jones", h));
    let general = cq!(<- atom!("Address"; s, p, n, h));

    assert_eq!(
        analyzer.contained_under_access_patterns(&specific, &general),
        ContainmentOutcome::Contained
    );
    let ContainmentOutcome::NotContained { counterexample } =
        analyzer.contained_under_access_patterns(&general, &specific)
    else {
        panic!("the general query is not contained in the specific one");
    };
    // The counterexample path reaches a configuration satisfying the general
    // query but not the specific one.
    let schema = phone_directory_access_schema();
    let configs = counterexample
        .configurations(&schema, &Instance::new())
        .unwrap();
    assert!(configs
        .iter()
        .any(|c| general.holds(c) && !specific.holds(c)));
}

/// Example 2.3: the AccLTL formulation of long-term relevance is satisfiable
/// exactly when the combinatorial LTR check says the access is relevant.
#[test]
fn example_2_3_long_term_relevance() {
    let mut schema = phone_directory_access_schema();
    schema
        .add_method(AccessMethod::boolean("BoolAddr", "Address", 4))
        .unwrap();
    let analyzer = AccessAnalyzer::new(schema.clone());
    let query = cq!(<- atom!("Address"; s, p, @"Jones", h));

    let relevant_access = Access::new("BoolAddr", tuple!["Parks Rd", "OX13QD", "Jones", 16]);
    let formula = properties::long_term_relevance_formula(&relevant_access, &query);
    assert_eq!(classify(&formula), Fragment::BindingPositive);
    let report = analyzer.check_satisfiable(&formula);
    assert!(report.is_satisfiable());
    assert!(analyzer
        .long_term_relevant(&relevant_access, &UnionOfCqs::single(query.clone()), false)
        .is_relevant());

    // An access about a different person is neither relevant nor does its
    // formula have a witness.
    let irrelevant_access = Access::new("BoolAddr", tuple!["Parks Rd", "OX13QD", "Smith", 13]);
    let formula = properties::long_term_relevance_formula(&irrelevant_access, &query);
    let report = analyzer.check_satisfiable(&formula);
    assert!(!report.is_satisfiable());
    assert!(!analyzer
        .long_term_relevant(&irrelevant_access, &UnionOfCqs::single(query), false)
        .is_relevant());
}

/// Example 2.3 (restrictions): the dataflow restriction of the paper rules
/// out the Figure 1 order but admits the Address-first order; the
/// access-order restriction behaves the same way; groundedness agrees with
/// the semantic check.
#[test]
fn example_2_3_restrictions() {
    let schema = phone_directory_access_schema();
    let dataflow = properties::dataflow_formula(&schema, "AcM1", 0, "Address", 2);
    let order = properties::access_order_formula("AcM2", "AcM1");
    let grounded = properties::groundedness_formula(&schema);

    let figure1 = figure1_path();
    let address_first = AccessPath::new()
        .with_step(
            Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]),
            [tuple!["Parks Rd", "OX13QD", "Smith", 13]]
                .into_iter()
                .collect(),
        )
        .with_step(
            Access::new("AcM1", tuple!["Smith"]),
            [tuple!["Smith", "OX13QD", "Parks Rd", 5551212]]
                .into_iter()
                .collect(),
        );

    for (formula, zero_ary) in [(&dataflow, false), (&order, true)] {
        assert!(!formula
            .holds_on_path(&figure1, &schema, &Instance::new(), zero_ary)
            .unwrap());
        assert!(formula
            .holds_on_path(&address_first, &schema, &Instance::new(), zero_ary)
            .unwrap());
    }

    let mut initial = Instance::new();
    initial.add_fact("Address", tuple!["High St", "OX26NN", "Smith", 2]);
    for path in [&figure1, &address_first] {
        assert_eq!(
            grounded
                .holds_on_path(path, &schema, &initial, false)
                .unwrap(),
            accltl_core::paths::is_grounded(path, &initial)
        );
    }
}

/// Example 2.4 / Section 5.1: the FD-restricted formula lives in the
/// inequality fragment, and the analyzer still decides it (PSPACE row of
/// Table 1).
#[test]
fn example_2_4_functional_dependencies() {
    let schema = phone_directory_access_schema();
    let fd = FunctionalDependency::new("Mobile#", vec![0], 3);
    let fd_formula = properties::functional_dependency_formula(&schema, &fd);
    assert_eq!(classify(&fd_formula), Fragment::ZeroAryWithInequalities);

    let analyzer = AccessAnalyzer::new(schema);
    // The restriction together with "eventually two Mobile# facts are known"
    // is satisfiable: reveal entries for two different customers.
    let two_entries = AccLtl::finally(AccLtl::atom(PosFormula::exists(
        vec!["n", "p", "s", "ph", "n2", "p2", "s2", "ph2"],
        PosFormula::and(vec![
            pre_atom(
                "Mobile#",
                vec![
                    Term::var("n"),
                    Term::var("p"),
                    Term::var("s"),
                    Term::var("ph"),
                ],
            ),
            pre_atom(
                "Mobile#",
                vec![
                    Term::var("n2"),
                    Term::var("p2"),
                    Term::var("s2"),
                    Term::var("ph2"),
                ],
            ),
            PosFormula::Neq(Term::var("n"), Term::var("n2")),
        ]),
    )));
    let combined = AccLtl::and(vec![fd_formula, two_entries]);
    let report = analyzer.check_satisfiable(&combined);
    assert!(report.is_satisfiable());
    let witness = report.witness().unwrap().clone();
    // The witness's final configuration satisfies the FD.
    let config = witness
        .configuration(analyzer.schema(), analyzer.initial())
        .unwrap();
    assert!(fd.satisfied(&config));
}
