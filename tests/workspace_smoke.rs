//! Canary test for the workspace facade: every name the examples and
//! downstream crates import through `accltl_core::prelude` must keep
//! resolving, and the `cq!`/`atom!`/`tuple!` macros must stay re-exported.
//!
//! A failure here means a manifest or re-export regression, not a logic bug.

use accltl_core::prelude::*;

#[test]
fn prelude_facade_resolves() {
    // Schema + analyzer entry point.
    let schema: AccessSchema = phone_directory_access_schema();
    let analyzer = AccessAnalyzer::new(schema.clone());

    // The re-exported macros build the running-example query.
    let jones: ConjunctiveQuery = cq!(<- atom!("Address"; s, p, @"Jones", h));
    assert_eq!(jones.atoms.len(), 1);

    // Property builders and the satisfiability entry point.
    let formula: AccLtl = properties::eventually_answered_formula(&jones);
    let outcome = analyzer.check_satisfiable(&formula);
    assert!(outcome.is_satisfiable());

    // The automaton layer is reachable through the prelude types.
    let automaton: AAutomaton = accltl_core::automata::accltl_plus_to_automaton(&formula);
    assert!(automaton.state_count > 0);

    // The fragment lattice and the vocabulary helpers resolve.
    let fragment: Fragment = classify(&formula);
    assert!(matches!(
        fragment,
        Fragment::XZeroAry
            | Fragment::ZeroAry
            | Fragment::ZeroAryWithInequalities
            | Fragment::BindingPositive
            | Fragment::Full
            | Fragment::FullWithInequalities
    ));
    let _bind = isbind_atom("AcM1", vec![Term::var("n")]);

    // Workload generation and the relational substrate.
    let workload: Workload = generate_workload(&WorkloadConfig::default());
    assert!(!workload.queries.is_empty());
    let t: Tuple = tuple!["Smith", 1];
    assert_eq!(t.arity(), 2);
    let hidden: Instance = phone_directory_hidden_instance();

    // The index subsystem surfaces through the prelude: the scan wrapper
    // must agree with the (possibly indexed) view, and the knob resolves.
    let wrapped = ScanView(&hidden);
    assert_eq!(
        hidden.count_of("Address".into()),
        wrapped.count_of("Address".into())
    );
    let _ = accltl_core::relational::indexing_enabled();
}

#[test]
fn suite_reexports_match_core() {
    // The root `accltl_suite` library forwards the facade wholesale; examples
    // rely on these module paths.
    let schema = accltl_suite::prelude::phone_directory_access_schema();
    let _ = accltl_suite::analyzer::AccessAnalyzer::new(schema);
}
