//! Property tests for the per-position value indexes (`relational::index`):
//! indexed and scanning evaluation must be *byte-identical* — the same
//! homomorphisms in the same enumeration order, the same Datalog fixpoints
//! (facts and `Display`) — on both `Instance` and `InstanceOverlay`,
//! including after incremental `add_fact` maintenance of a built index.

use std::sync::Arc;

use proptest::prelude::*;

use accltl_core::prelude::*;
use accltl_core::relational::cq::{for_each_homomorphism, Assignment};
use accltl_core::relational::{indexing_enabled, set_indexing_enabled};

/// Rows over three relations sharing a small value domain, so joins and
/// repeated-variable atoms actually match.  Enough rows that the larger
/// relations cross the `INDEX_CUTOFF` and genuinely exercise posting lists.
fn random_rows() -> impl Strategy<Value = Vec<(usize, i64, i64)>> {
    proptest::collection::vec((0usize..3, 0i64..6, 0i64..6), 0..48)
}

fn instance_from_rows(rows: &[(usize, i64, i64)]) -> Instance {
    let mut inst = Instance::new();
    for (rel, a, b) in rows {
        match rel {
            0 => inst.add_fact("IxR", tuple![*a, *b]),
            1 => inst.add_fact("IxS", tuple![*b, *a]),
            _ => inst.add_fact("IxT", tuple![*a]),
        };
    }
    inst
}

/// Query shapes covering the paths the index changes: unconstrained scans,
/// constant-bound positions, joins (several bound positions mid-search) and
/// repeated variables.
fn queries() -> Vec<ConjunctiveQuery> {
    vec![
        cq!([x, y] <- atom!("IxR"; x, y)),
        cq!([x] <- atom!("IxR"; x, x)),
        cq!([y] <- atom!("IxR"; @3, y)),
        cq!([x] <- atom!("IxR"; x, y), atom!("IxS"; y, z)),
        cq!([x, z] <- atom!("IxR"; x, y), atom!("IxS"; y, z), atom!("IxT"; x)),
        cq!([y] <- atom!("IxT"; x), atom!("IxR"; x, y), atom!("IxR"; y, @2)),
    ]
}

/// Collects the full homomorphism enumeration, in callback order.
fn enumerate<V: InstanceView + ?Sized>(query: &ConjunctiveQuery, view: &V) -> Vec<Assignment> {
    let mut out = Vec::new();
    for_each_homomorphism(&query.atoms, view, &Assignment::new(), &mut |assignment| {
        out.push(assignment.clone());
        false
    });
    out
}

/// Transitive closure over the `IxR` rows plus a goal probe — recursive, so
/// the semi-naive delta rounds (and their Δ-seeded index joins) are hit.
fn closure_program() -> DatalogProgram {
    DatalogProgram::new(
        vec![
            DatalogRule::new(atom!("IxC"; x, y), vec![atom!("IxR"; x, y)]),
            DatalogRule::new(
                atom!("IxC"; x, z),
                vec![atom!("IxR"; x, y), atom!("IxC"; y, z)],
            ),
            DatalogRule::new(atom!("IxGoal"), vec![atom!("IxC"; @0, @5)]),
        ],
        "IxGoal",
    )
    .expect("rules are safe")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Indexed vs scan: identical homomorphism sets *and* enumeration order
    /// on a plain instance, for every query shape.
    #[test]
    fn indexed_and_scan_enumeration_agree_on_instances(rows in random_rows()) {
        let inst = instance_from_rows(&rows);
        for query in queries() {
            let indexed = enumerate(&query, &inst);
            let scanned = enumerate(&query, &ScanView(&inst));
            prop_assert_eq!(&indexed, &scanned);
            prop_assert_eq!(query.evaluate(&inst), query.evaluate(&ScanView(&inst)));
        }
    }

    /// Indexed vs scan on an overlay (base index shared behind the `Arc`,
    /// delta indexed on its own side), and overlay vs its materialization.
    #[test]
    fn indexed_and_scan_enumeration_agree_on_overlays(rows in random_rows()) {
        let split = rows.len() / 2;
        let base = Arc::new(instance_from_rows(&rows[..split]));
        let mut overlay = InstanceOverlay::new(base);
        for (rel, a, b) in &rows[split..] {
            match rel {
                0 => overlay.push_fact("IxR", tuple![*a, *b]),
                1 => overlay.push_fact("IxS", tuple![*b, *a]),
                _ => overlay.push_fact("IxT", tuple![*a]),
            };
        }
        let materialized = overlay.materialize();
        for query in queries() {
            let on_overlay = enumerate(&query, &overlay);
            prop_assert_eq!(&on_overlay, &enumerate(&query, &ScanView(&overlay)));
            prop_assert_eq!(&on_overlay, &enumerate(&query, &materialized));
        }
    }

    /// A built index maintained incrementally across `add_fact` answers
    /// exactly like an index built from scratch over the final fact set.
    #[test]
    fn incremental_maintenance_matches_fresh_build(rows in random_rows()) {
        let split = rows.len() / 2;
        let mut grown = instance_from_rows(&rows[..split]);
        let probe = &queries()[3];
        // Force the index to exist (when the relations are big enough), then
        // grow the instance through `add_fact` so maintenance kicks in.
        let _ = probe.evaluate(&grown);
        for (rel, a, b) in &rows[split..] {
            match rel {
                0 => grown.add_fact("IxR", tuple![*a, *b]),
                1 => grown.add_fact("IxS", tuple![*b, *a]),
                _ => grown.add_fact("IxT", tuple![*a]),
            };
        }
        // `Clone` drops the derived index, so `fresh` rebuilds from scratch.
        let fresh = grown.clone();
        prop_assert_eq!(&grown, &fresh);
        for query in queries() {
            prop_assert_eq!(enumerate(&query, &grown), enumerate(&query, &fresh));
            prop_assert_eq!(enumerate(&query, &grown), enumerate(&query, &ScanView(&grown)));
        }
    }

    /// Indexed vs scan Datalog: identical fixpoints (facts and `Display`)
    /// and an `accepts` short-circuit that agrees with the full fixpoint.
    #[test]
    fn datalog_fixpoints_are_mode_independent(rows in random_rows()) {
        let inst = instance_from_rows(&rows);
        let program = closure_program();

        prop_assert!(indexing_enabled(), "tests run with indexes on by default");
        let indexed_fixpoint = program.fixpoint(&inst);
        let indexed_accepts = program.accepts(&inst);

        set_indexing_enabled(false);
        let scan_fixpoint = program.fixpoint(&inst);
        let scan_accepts = program.accepts(&inst);
        set_indexing_enabled(true);

        prop_assert_eq!(&indexed_fixpoint, &scan_fixpoint);
        prop_assert_eq!(indexed_fixpoint.to_string(), scan_fixpoint.to_string());
        prop_assert_eq!(indexed_accepts, scan_accepts);
        // The short-circuiting `accepts` agrees with inspecting the full
        // fixpoint's goal relation.
        prop_assert_eq!(
            indexed_accepts,
            indexed_fixpoint.relation_size(program.goal()) > 0
        );
    }
}
