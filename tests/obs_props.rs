//! Observability property tests: the metrics registry must *reconcile* with
//! the legacy per-report counter structs (same numbers, one registry), the
//! chase repair counters must be mode-invariant, and turning the JSONL trace
//! on must not change a single verdict, witness, explored count or consult
//! total — observation is free, in the byte-identical sense the engine's
//! determinism contract already promises for schedule changes.
//!
//! Every test serialises on one lock: the registry, the stats bits and the
//! trace sink are deliberately process-global (that is the point of a
//! process-wide registry), so concurrent tests would cross-contaminate the
//! deltas.

use std::sync::{Mutex, MutexGuard};

use proptest::prelude::*;

use accltl_core::automata::{accltl_plus_to_automaton, bounded_emptiness_batch_with_config};
use accltl_core::logic::bounded::BoundedSearcher;
use accltl_core::obs::metrics::{snapshot, MetricsSnapshot};
use accltl_core::obs::{json, trace};
use accltl_core::prelude::*;
use accltl_core::relational::chase::{chase_with_stats, ChaseConfig};
use accltl_core::relational::{Constraint, FunctionalDependency, InclusionDependency};

/// One lock for every test in this binary: registry deltas and the global
/// trace sink must not interleave.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn obs_lock() -> MutexGuard<'static, ()> {
    // A poisoned lock only means another test's assertion fired; the
    // globals themselves are still usable.
    OBS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The full per-report digest: verdict, explored, cost and both cache
/// counter structs.  Tracing must not perturb *any* component.
fn digest<V: Clone>(report: &SearchReport<V>) -> (V, usize, usize, u64, u64) {
    (
        report.verdict.clone(),
        report.explored,
        report.cost,
        report.cache.hits,
        report.cache.misses,
    )
}

fn jones_post() -> AccLtl {
    AccLtl::atom(PosFormula::exists(
        vec!["s", "p", "h"],
        accltl_core::logic::vocabulary::post_atom(
            "Address",
            vec![
                Term::var("s"),
                Term::var("p"),
                Term::constant("Jones"),
                Term::var("h"),
            ],
        ),
    ))
}

fn random_formula() -> impl Strategy<Value = AccLtl> {
    prop_oneof![
        Just(AccLtl::finally(jones_post())),
        Just(AccLtl::globally(AccLtl::not(jones_post()))),
        Just(AccLtl::and(vec![
            AccLtl::globally(AccLtl::not(jones_post())),
            AccLtl::finally(jones_post()),
        ])),
    ]
}

fn random_initial() -> impl Strategy<Value = Instance> {
    proptest::collection::vec(any::<bool>(), 0..3).prop_map(|picks| {
        let mut initial = Instance::new();
        for (i, pick) in picks.into_iter().enumerate() {
            if pick {
                initial.add_fact("Address", tuple!["High St", "OX26NN", "Seed", i as i64]);
            } else {
                initial.add_fact("Mobile#", tuple!["Smith", "OX13QD", "Parks Rd", 5_551_212]);
            }
        }
        initial
    })
}

/// A small instance with one FD violation (mergeable: one side is a
/// labelled null) and one IND violation, so the chase has real repair work
/// in both modes.
fn violating_instance() -> (Instance, Vec<Constraint>) {
    use accltl_core::relational::Tuple;

    let mut instance = Instance::new();
    instance.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Jones", "1"]);
    instance.add_fact(
        "Address",
        Tuple::new(vec![
            Value::str("Parks Rd"),
            Value::labelled_null(1),
            Value::str("Jones"),
            Value::str("1"),
        ]),
    );
    instance.add_fact("Mobile#", tuple!["Smith", "OX13QD", "Parks Rd", 5_551_212]);
    let constraints = vec![
        Constraint::Fd(FunctionalDependency::new("Address", vec![0], 1)),
        Constraint::Ind(InclusionDependency::new(
            "Mobile#",
            vec![0],
            "Address",
            vec![2],
        )),
    ];
    (instance, constraints)
}

/// Sums one counter delta between two snapshots.
fn delta(earlier: &MetricsSnapshot, later: &MetricsSnapshot, name: &str) -> u64 {
    later.delta(earlier).counter(name)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Registry deltas around a batch equal the sums of the legacy
    /// per-report counters, at every thread count: the registry is the
    /// same accounting, not a second one that can drift.
    #[test]
    fn registry_reconciles_with_report_counters(
        batch in proptest::collection::vec(random_formula(), 1..4),
        initial in random_initial(),
    ) {
        let _guard = obs_lock();
        let schema = phone_directory_access_schema();
        for threads in [1usize, 4, 8] {
            let searcher = BoundedSearcher::with_engine_config(
                &schema,
                &initial,
                false,
                EngineConfig::base().threads(threads),
            );
            let before = snapshot();
            let reports = searcher.run_batch(&batch);
            let after = snapshot();

            let explored: u64 = reports.iter().map(|r| r.explored as u64).sum();
            let cost: u64 = reports.iter().map(|r| r.cost as u64).sum();
            let consults: u64 = reports.iter().map(|r| r.cache.total()).sum();
            prop_assert_eq!(
                delta(&before, &after, "search.explored"), explored,
                "search.explored at threads={}", threads
            );
            prop_assert_eq!(
                delta(&before, &after, "search.cost"), cost,
                "search.cost at threads={}", threads
            );
            // The hit/miss split moves with the schedule; the total does not.
            prop_assert_eq!(
                delta(&before, &after, "guard_cache.hits")
                    + delta(&before, &after, "guard_cache.misses"),
                consults,
                "guard-cache consult total at threads={}", threads
            );
            // The engine-level mirrors agree with the front-end totals.
            prop_assert_eq!(delta(&before, &after, "engine.explored"), explored);
            prop_assert_eq!(delta(&before, &after, "engine.cost"), cost);
            prop_assert_eq!(
                delta(&before, &after, "engine.properties"),
                batch.len() as u64
            );
        }
    }

    /// With the JSONL trace enabled, every report is byte-identical to the
    /// untraced run — and the emitted trace parses line by line.
    #[test]
    fn tracing_never_changes_a_report(
        batch in proptest::collection::vec(random_formula(), 1..3),
        initial in random_initial(),
        threads in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let _guard = obs_lock();
        let schema = phone_directory_access_schema();
        let searcher = || BoundedSearcher::with_engine_config(
            &schema,
            &initial,
            false,
            EngineConfig::base().threads(threads),
        );
        let untraced: Vec<_> = searcher().run_batch(&batch).iter().map(digest).collect();

        let path = std::env::temp_dir().join(format!(
            "accltl-obs-props-{}-{threads}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        trace::set_trace_path(Some(&path));
        let traced: Vec<_> = searcher().run_batch(&batch).iter().map(digest).collect();
        trace::set_trace_path(None);

        prop_assert_eq!(&traced, &untraced, "tracing changed a report");

        let text = std::fs::read_to_string(&path).expect("trace file written");
        let _ = std::fs::remove_file(&path);
        prop_assert!(!text.trim().is_empty(), "trace file is empty");
        for line in text.lines() {
            let value = json::parse(line)
                .unwrap_or_else(|e| panic!("unparseable trace line {line:?}: {e}"));
            prop_assert!(
                value.get("ev").and_then(json::JsonValue::as_str).is_some(),
                "record without an \"ev\" field: {}", line
            );
        }
    }
}

/// The chase's repair counters (passes, violation checks, FD merges, IND
/// additions) are identical between the scan and incremental modes, and
/// both modes reconcile into the registry.
#[test]
fn chase_counters_are_mode_invariant_and_reconciled() {
    let _guard = obs_lock();
    let (instance, constraints) = violating_instance();

    let mut per_mode = Vec::new();
    for incremental in [false, true] {
        let config = ChaseConfig {
            incremental,
            ..ChaseConfig::base()
        };
        let before = snapshot();
        let (outcome, stats) = chase_with_stats(&instance, &constraints, &config);
        let after = snapshot();
        assert!(outcome.completed().is_some(), "chase completes");

        assert_eq!(delta(&before, &after, "chase.runs"), 1);
        assert_eq!(delta(&before, &after, "chase.passes"), stats.passes as u64);
        assert_eq!(
            delta(&before, &after, "chase.violation_checks"),
            stats.violation_checks as u64
        );
        assert_eq!(
            delta(&before, &after, "chase.fd_merges"),
            stats.fd_merges as u64
        );
        assert_eq!(
            delta(&before, &after, "chase.ind_additions"),
            stats.ind_additions as u64
        );
        per_mode.push((
            stats.passes,
            stats.violation_checks,
            stats.fd_merges,
            stats.ind_additions,
        ));
        assert!(stats.fd_merges > 0, "FD violation was repaired");
        assert!(stats.ind_additions > 0, "IND violation was repaired");
    }
    assert_eq!(
        per_mode[0], per_mode[1],
        "repair counters differ between scan and incremental modes"
    );
}

/// The emptiness front-end reconciles through the same registry names as
/// the bounded front-end, so mixed workloads accumulate one ledger.
#[test]
fn emptiness_reconciles_with_report_counters() {
    let _guard = obs_lock();
    let schema = phone_directory_access_schema();
    let automaton = accltl_plus_to_automaton(&AccLtl::finally(jones_post()));
    let refs = [&automaton];

    let before = snapshot();
    let reports = bounded_emptiness_batch_with_config(
        &refs,
        &schema,
        &Instance::new(),
        EngineConfig::base().threads(2),
    );
    let after = snapshot();

    let explored: u64 = reports.iter().map(|r| r.explored as u64).sum();
    let consults: u64 = reports.iter().map(|r| r.cache.total()).sum();
    assert_eq!(delta(&before, &after, "search.explored"), explored);
    assert_eq!(
        delta(&before, &after, "guard_cache.hits") + delta(&before, &after, "guard_cache.misses"),
        consults
    );
}
