//! Determinism property tests for the persistent work-stealing frontier
//! pool (`paths::pool`): per-property verdicts, witnesses, explored counts
//! and charged costs must be identical for every worker-thread count —
//! including thread counts beyond the frontier size and beyond the
//! machine's cores — and at a fixed thread count the *full* report
//! (guard-consult totals included) must be byte-identical for every
//! steal-batch size, because the pool merges expansion results in frontier
//! order no matter who ran or stole which task.  (Consult totals across
//! *different* thread counts follow the chunk structure, which scales with
//! the thread count — see `core_digest`.)

mod common;

use proptest::prelude::*;

use accltl_core::automata::{
    accltl_plus_to_automaton, bounded_emptiness_batch_with_config, EmptinessOutcome,
};
use accltl_core::logic::bounded::BoundedSearcher;
use accltl_core::prelude::*;

use common::{core_digest, dataflow_formula, digest, jones_post, random_formula, random_initial};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// One batch, every (threads, steal_batch) combination: verdicts,
    /// explored counts and costs match the single-threaded reference, and
    /// at each thread count the full report (consult totals included) is
    /// byte-identical for every steal-batch size.
    #[test]
    fn searches_are_thread_and_steal_batch_independent(
        batch in proptest::collection::vec(random_formula(), 2..4),
        initial in random_initial(),
    ) {
        let schema = phone_directory_access_schema();
        let reference: Vec<_> = BoundedSearcher::with_engine_config(
            &schema,
            &initial,
            false,
            EngineConfig::base().threads(1),
        )
        .run_batch(&batch)
        .iter()
        .map(core_digest)
        .collect();
        for threads in [2usize, 4, 8] {
            let mut per_steal_batch: Vec<Vec<_>> = Vec::new();
            for steal_batch in [1usize, 4] {
                let engine = EngineConfig::base().threads(threads).steal_batch(steal_batch);
                let searcher =
                    BoundedSearcher::with_engine_config(&schema, &initial, false, engine);
                let reports = searcher.run_batch(&batch);
                let core: Vec<_> = reports.iter().map(core_digest).collect();
                prop_assert_eq!(
                    &core, &reference,
                    "threads={} steal_batch={}", threads, steal_batch
                );
                per_steal_batch.push(reports.iter().map(digest).collect());
            }
            prop_assert_eq!(
                &per_steal_batch[0], &per_steal_batch[1],
                "steal_batch must not change any report at threads={}", threads
            );
        }
    }

    /// The emptiness front-end is likewise pool-schedule independent.
    #[test]
    fn emptiness_is_thread_and_steal_batch_independent(
        initial in random_initial(),
        satisfiable in any::<bool>(),
    ) {
        let schema = phone_directory_access_schema();
        let formula = if satisfiable {
            AccLtl::finally(jones_post())
        } else {
            AccLtl::and(vec![
                AccLtl::globally(AccLtl::not(jones_post())),
                AccLtl::finally(jones_post()),
            ])
        };
        let automata = [
            accltl_plus_to_automaton(&formula),
            accltl_plus_to_automaton(&dataflow_formula()),
        ];
        let refs: Vec<_> = automata.iter().collect();
        let reference: Vec<_> = bounded_emptiness_batch_with_config(
            &refs,
            &schema,
            &initial,
            EngineConfig::base().threads(1),
        )
        .iter()
        .map(core_digest)
        .collect();
        for threads in [2usize, 8] {
            let mut per_steal_batch: Vec<Vec<_>> = Vec::new();
            for steal_batch in [1usize, 3] {
                let engine = EngineConfig::base().threads(threads).steal_batch(steal_batch);
                let reports =
                    bounded_emptiness_batch_with_config(&refs, &schema, &initial, engine);
                let core: Vec<_> = reports.iter().map(core_digest).collect();
                prop_assert_eq!(
                    &core, &reference,
                    "threads={} steal_batch={}", threads, steal_batch
                );
                per_steal_batch.push(reports.iter().map(digest).collect());
            }
            prop_assert_eq!(
                &per_steal_batch[0], &per_steal_batch[1],
                "steal_batch must not change any report at threads={}", threads
            );
        }
    }
}

/// Thread counts far beyond both the frontier size and the machine's cores
/// change nothing: idle workers park, the merge order is still the frontier
/// order, and a found witness still validates.
#[test]
fn oversubscribed_threads_are_deterministic() {
    let schema = phone_directory_access_schema();
    let initial = Instance::new();
    let batch = vec![AccLtl::finally(jones_post()), dataflow_formula()];
    let reference: Vec<_> = BoundedSearcher::with_engine_config(
        &schema,
        &initial,
        false,
        EngineConfig::base().threads(1),
    )
    .run_batch(&batch)
    .iter()
    .map(core_digest)
    .collect();
    // 32 workers over frontier layers that hold a handful of nodes — far
    // more threads than tasks, and more than the CI machines have cores.
    let engine = EngineConfig::base().threads(32).steal_batch(2);
    let reports =
        BoundedSearcher::with_engine_config(&schema, &initial, false, engine).run_batch(&batch);
    let got: Vec<_> = reports.iter().map(core_digest).collect();
    assert_eq!(got, reference);
    if let SatOutcome::Satisfiable { witness } = &reports[0].verdict {
        assert!(witness.validate(&schema).is_ok());
    } else {
        panic!("expected a witness: {:?}", reports[0].verdict);
    }
}

/// Budget cutoffs bite at the same point on every pool schedule: with a
/// guard budget small enough to abort mid-search, oversubscribed runs
/// report exactly the single-threaded cutoffs.
#[test]
fn budget_cutoffs_are_pool_schedule_independent() {
    let schema = phone_directory_access_schema();
    let initial = Instance::new();
    let batch = vec![dataflow_formula(), AccLtl::finally(jones_post())];
    for budget in [1usize, 7, 50] {
        let reference: Vec<_> = BoundedSearcher::with_engine_config(
            &schema,
            &initial,
            false,
            EngineConfig::base().threads(1).max_guard_checks(budget),
        )
        .run_batch(&batch)
        .iter()
        .map(core_digest)
        .collect();
        for threads in [4usize, 16] {
            let engine = EngineConfig::base()
                .threads(threads)
                .max_guard_checks(budget);
            let got: Vec<_> = BoundedSearcher::with_engine_config(&schema, &initial, false, engine)
                .run_batch(&batch)
                .iter()
                .map(core_digest)
                .collect();
            assert_eq!(got, reference, "budget {budget} threads {threads}");
        }
    }
}

/// Emptiness chains keep their wave order under the pool: a satisfiable
/// automaton's witness is genuine on every thread count.
#[test]
fn emptiness_witnesses_survive_oversubscription() {
    let schema = phone_directory_access_schema();
    let initial = Instance::new();
    let automaton = accltl_plus_to_automaton(&AccLtl::finally(jones_post()));
    for threads in [1usize, 16] {
        let engine = EngineConfig::base().threads(threads);
        let report = bounded_emptiness_batch_with_config(&[&automaton], &schema, &initial, engine)
            .pop()
            .expect("one report");
        let EmptinessOutcome::NonEmpty { witness } = &report.verdict else {
            panic!("expected a witness, got {:?}", report.verdict);
        };
        let transitions = witness.transitions(&schema, &initial).unwrap();
        assert!(automaton.accepts_transitions(&transitions));
    }
}
