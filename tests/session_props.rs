//! Differential property tests for monitoring sessions
//! (`logic::bounded::MonitorSession` / `AccessAnalyzer::monitor`): after
//! every step of a random access/response stream, a session's per-property
//! reports must be *byte-identical* — the same verdicts, the same witnesses,
//! the same explored-state counts and guard-consult totals — to a
//! from-scratch re-run over the grown instance, on 1, 4 and 8 worker
//! threads, with `EngineConfig::disable_session_reuse` and with the
//! `ACCLTL_DISABLE_SESSION_REUSE=1` environment flag.  The session's whole
//! point is reusing caches across steps; these tests prove the reuse is
//! invisible in every contractual counter.

mod common;

use proptest::prelude::*;

use accltl_core::logic::bounded::{BoundedSearcher, MonitorSession};
use accltl_core::paths::DISABLE_SESSION_REUSE_ENV_VAR;
use accltl_core::prelude::*;

use common::{digest, flag_lock, random_formula, random_initial};

/// Strategy: one well-formed access/response step over the phone-directory
/// schema.  Names, streets and response subsets are drawn from small pools
/// so streams repeat accesses (zero-delta steps) as often as they reveal
/// fresh facts.
fn random_step() -> impl Strategy<Value = (Access, Response)> {
    let name = prop_oneof![Just("Jones"), Just("Smith"), Just("Taylor")];
    let mobile = (name, any::<bool>(), any::<bool>()).prop_map(|(name, parks, high)| {
        let access = Access::new("AcM1", tuple![name]);
        let mut response = Response::new();
        if parks {
            response.insert(tuple![name, "OX13QD", "Parks Rd", 5_551_212]);
        }
        if high {
            response.insert(tuple![name, "OX26NN", "High St", 5_552_000]);
        }
        (access, response)
    });
    let address =
        (any::<bool>(), any::<bool>(), any::<bool>()).prop_map(|(parks, jones, smith)| {
            let (street, postcode) = if parks {
                ("Parks Rd", "OX13QD")
            } else {
                ("High St", "OX26NN")
            };
            let access = Access::new("AcM2", tuple![street, postcode]);
            let mut response = Response::new();
            if jones {
                response.insert(tuple![street, postcode, "Jones", "1"]);
            }
            if smith {
                response.insert(tuple![street, postcode, "Smith", "2"]);
            }
            (access, response)
        });
    prop_oneof![mobile, address]
}

/// Strategy: a stream of 1–4 steps.
fn random_stream() -> impl Strategy<Value = Vec<(Access, Response)>> {
    proptest::collection::vec(random_step(), 1..5)
}

/// The contractual digests of a session's current per-property reports.
fn session_digests(session: &MonitorSession<'_>) -> Vec<(SatOutcome, usize, usize, u64)> {
    session.reports().iter().map(digest).collect()
}

/// Asserts the session's reports are byte-identical to a from-scratch batch
/// run over the session's current instance, and that witnesses are genuine.
fn assert_matches_scratch(
    session: &MonitorSession<'_>,
    schema: &AccessSchema,
    zero_ary: bool,
    engine: EngineConfig,
    properties: &[AccLtl],
) {
    let scratch = BoundedSearcher::with_engine_config(schema, session.current(), zero_ary, engine)
        .run_batch(properties);
    let scratch_digests: Vec<_> = scratch.iter().map(digest).collect();
    assert_eq!(
        session_digests(session),
        scratch_digests,
        "session reports diverged from a from-scratch re-run at step {}",
        session.steps()
    );
    for report in session.reports() {
        if let SatOutcome::Satisfiable { witness } = &report.verdict {
            assert!(witness.validate(schema).is_ok());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The foregrounded contract: at every step, on 1/4/8 threads, session
    /// reports equal a from-scratch batch over the grown instance — verdict,
    /// witness, explored count and guard-consult total.
    #[test]
    fn session_steps_match_from_scratch_reruns(
        properties in proptest::collection::vec(random_formula(), 1..4),
        stream in random_stream(),
        initial in random_initial(),
        zero_ary in any::<bool>(),
        threads in prop_oneof![Just(1usize), Just(4), Just(8)],
    ) {
        let _guard = flag_lock();
        let schema = phone_directory_access_schema();
        let engine = EngineConfig::base().threads(threads);
        let searcher =
            BoundedSearcher::with_engine_config(&schema, &initial, zero_ary, engine);
        let mut session = searcher.open_session(&properties);
        assert_matches_scratch(&session, &schema, zero_ary, engine, &properties);
        for (access, response) in &stream {
            session.step(access, response).expect("well-formed step");
            assert_matches_scratch(&session, &schema, zero_ary, engine, &properties);
        }
    }

    /// A reusing session and a `disable_session_reuse` session stepped in
    /// lockstep report identical digests after every step (the disabled
    /// session re-runs each step from scratch by construction).
    #[test]
    fn disabled_sessions_are_byte_identical(
        properties in proptest::collection::vec(random_formula(), 1..4),
        stream in random_stream(),
        initial in random_initial(),
        zero_ary in any::<bool>(),
    ) {
        let _guard = flag_lock();
        let schema = phone_directory_access_schema();
        let reusing = EngineConfig::base().threads(1);
        let disabled = reusing.disable_session_reuse(true);
        let reusing_searcher =
            BoundedSearcher::with_engine_config(&schema, &initial, zero_ary, reusing);
        let disabled_searcher =
            BoundedSearcher::with_engine_config(&schema, &initial, zero_ary, disabled);
        let mut session = reusing_searcher.open_session(&properties);
        let mut scratch = disabled_searcher.open_session(&properties);
        prop_assert_eq!(session_digests(&session), session_digests(&scratch));
        for (access, response) in &stream {
            session.step(access, response).expect("well-formed step");
            scratch.step(access, response).expect("well-formed step");
            prop_assert_eq!(
                session_digests(&session),
                session_digests(&scratch),
                "step {} diverged between reuse and scratch mode",
                session.steps()
            );
            prop_assert_eq!(session.current(), scratch.current());
        }
    }

    /// The analyzer front-end: after every step, `MonitorSession::verdicts`
    /// equals what a fresh `AccessAnalyzer::monitor` over the grown instance
    /// reports, the aggregated counters match, and `still_relevant` agrees
    /// with `long_term_relevant` asked from scratch.
    #[test]
    fn analyzer_sessions_match_fresh_monitors(
        properties in proptest::collection::vec(random_formula(), 1..3),
        stream in random_stream(),
        initial in random_initial(),
    ) {
        let _guard = flag_lock();
        let schema = phone_directory_access_schema();
        let mut properties = properties;
        // Exercise every engine group alongside the random formulas: an
        // X-fragment, a zero-ary, a binding-positive and a full-language
        // property (the `check_all` grouping).
        properties.push(AccLtl::next(AccLtl::atom(isbind_prop("AcM1"))));
        properties.push(AccLtl::finally(AccLtl::atom(isbind_prop("AcM1"))));
        properties.push(AccLtl::finally(AccLtl::atom(PosFormula::exists(
            vec!["n"],
            isbind_atom("AcM1", vec![Term::var("n")]),
        ))));
        properties.push(AccLtl::globally(AccLtl::not(AccLtl::atom(
            PosFormula::exists(vec!["n"], isbind_atom("AcM1", vec![Term::var("n")])),
        ))));
        let analyzer = AccessAnalyzer::new(schema.clone()).with_initial(initial);
        let mut session = analyzer.monitor(&properties);
        let query = UnionOfCqs::single(cq!(<- atom!("Mobile#"; @"Jones", p, s, ph)));
        let probe = Access::new("AcM1", tuple!["Jones"]);
        for (access, response) in &stream {
            session.step(access, response).expect("well-formed step");
            let fresh_analyzer =
                AccessAnalyzer::new(schema.clone()).with_initial(session.current().clone());
            let fresh = fresh_analyzer.monitor(&properties);
            prop_assert_eq!(session.verdicts(), fresh.verdicts());
            let (ours, theirs) = (session.last_report(), fresh.last_report());
            prop_assert_eq!(ours.explored, theirs.explored);
            prop_assert_eq!(ours.cost, theirs.cost);
            prop_assert_eq!(ours.guard.total(), theirs.guard.total());
            prop_assert_eq!(
                session.still_relevant(&probe, &query, false),
                fresh_analyzer.long_term_relevant(&probe, &query, false)
            );
        }
    }
}

/// The `ACCLTL_DISABLE_SESSION_REUSE=1` environment flag end-to-end: a
/// session opened under the flag (the config is resolved once, at
/// `open_session`) steps byte-identically to a reusing session on a fixed
/// stream that mixes fresh reveals with zero-delta repeats.
#[test]
fn env_flag_disables_reuse_with_identical_reports() {
    let _guard = flag_lock();
    let schema = phone_directory_access_schema();
    let initial = Instance::new();
    let properties = vec![
        AccLtl::finally(common::jones_post()),
        common::dataflow_formula(),
    ];
    let stream: Vec<(Access, Response)> = vec![
        (
            Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]),
            [tuple!["Parks Rd", "OX13QD", "Jones", "1"]]
                .into_iter()
                .collect(),
        ),
        (
            Access::new("AcM1", tuple!["Jones"]),
            [tuple!["Jones", "OX13QD", "Parks Rd", 5_551_212]]
                .into_iter()
                .collect(),
        ),
        // Zero-delta repeat: the reusing session replays, the disabled one
        // re-runs — reports must still agree.
        (
            Access::new("AcM1", tuple!["Jones"]),
            [tuple!["Jones", "OX13QD", "Parks Rd", 5_551_212]]
                .into_iter()
                .collect(),
        ),
    ];

    let config = BoundedSearchConfig {
        threads: 1,
        ..BoundedSearchConfig::default()
    };
    let searcher = BoundedSearcher::new(&schema, &initial, false, config);
    let mut reusing = searcher.open_session(&properties);

    std::env::set_var(DISABLE_SESSION_REUSE_ENV_VAR, "1");
    let mut disabled = searcher.open_session(&properties);
    std::env::remove_var(DISABLE_SESSION_REUSE_ENV_VAR);

    assert_eq!(session_digests(&reusing), session_digests(&disabled));
    for (access, response) in &stream {
        let report = reusing
            .step(access, response)
            .expect("well-formed step")
            .clone();
        let scratch_report = disabled
            .step(access, response)
            .expect("well-formed step")
            .clone();
        assert_eq!(
            session_digests(&reusing),
            session_digests(&disabled),
            "env-disabled session diverged at step {}",
            disabled.steps()
        );
        // The disabled session never replays (it may still report within-run
        // engine-cache hits as `reused`); the reusing one may replay.
        assert!(!scratch_report.replayed);
        assert_eq!(report.step, scratch_report.step);
    }
    // The zero-delta repeat replayed in reuse mode.
    assert!(reusing.last_report().replayed);
}

/// Invalid steps (unknown method, response violating the binding) error
/// without perturbing the session: the standing verdicts and the current
/// instance are unchanged.
#[test]
fn invalid_steps_leave_the_session_intact() {
    let _guard = flag_lock();
    let schema = phone_directory_access_schema();
    let analyzer = AccessAnalyzer::new(schema);
    let properties = vec![AccLtl::finally(common::jones_post())];
    let mut session = analyzer.monitor(&properties);
    let before_verdicts = session.verdicts();
    let before_instance = session.current().clone();

    let unknown = Access::new("NoSuchMethod", tuple!["Jones"]);
    assert!(session.step(&unknown, &Response::new()).is_err());

    let access = Access::new("AcM1", tuple!["Jones"]);
    let mismatched: Response = [tuple!["NotJones", "OX13QD", "Parks Rd", 5_551_212]]
        .into_iter()
        .collect();
    assert!(session.step(&access, &mismatched).is_err());

    assert_eq!(session.verdicts(), before_verdicts);
    assert_eq!(session.current(), &before_instance);
}
