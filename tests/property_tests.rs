//! Property-based tests on the core invariants, spanning all crates.

use std::collections::BTreeSet;

use proptest::prelude::*;

use accltl_core::automata::accltl_plus_to_automaton;
use accltl_core::prelude::*;
use accltl_core::relational::cq_contained_in_cq;

/// Strategy: a small random instance over relations R0(arity 2) and R1(arity 1)
/// with values drawn from a tiny domain.
fn small_instance() -> impl Strategy<Value = Instance> {
    let value = prop_oneof![Just("a"), Just("b"), Just("c")];
    let r0_fact = (value.clone(), value.clone()).prop_map(|(x, y)| ("R0".to_owned(), tuple![x, y]));
    let r1_fact = value.prop_map(|x| ("R1".to_owned(), tuple![x]));
    let fact = prop_oneof![r0_fact, r1_fact];
    proptest::collection::vec(fact, 0..8).prop_map(|facts| {
        let mut instance = Instance::new();
        instance.extend_facts(facts);
        instance
    })
}

/// Strategy: a small boolean CQ over R0/R1 with variables from {x, y, z} and
/// occasional constants.
fn small_cq() -> impl Strategy<Value = ConjunctiveQuery> {
    let term = prop_oneof![
        Just(Term::var("x")),
        Just(Term::var("y")),
        Just(Term::var("z")),
        Just(Term::constant("a")),
        Just(Term::constant("b")),
    ];
    let r0_atom = (term.clone(), term.clone()).prop_map(|(s, t)| Atom::new("R0", vec![s, t]));
    let r1_atom = term.prop_map(|s| Atom::new("R1", vec![s]));
    let atom = prop_oneof![r0_atom, r1_atom];
    proptest::collection::vec(atom, 1..4).prop_map(ConjunctiveQuery::boolean)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A CQ always holds on its own canonical database (Chandra–Merlin).
    #[test]
    fn cq_holds_on_its_canonical_database(q in small_cq()) {
        let (canonical, _) = q.canonical_instance();
        prop_assert!(q.holds(&canonical));
    }

    /// Containment is sound for evaluation: if q1 ⊑ q2 then on every instance
    /// where q1 holds, q2 holds as well.
    #[test]
    fn containment_is_sound_for_evaluation(
        q1 in small_cq(),
        q2 in small_cq(),
        instance in small_instance(),
    ) {
        if cq_contained_in_cq(&q1, &q2) && q1.holds(&instance) {
            prop_assert!(q2.holds(&instance));
        }
    }

    /// Evaluation is monotone for positive queries: adding facts never makes a
    /// satisfied CQ unsatisfied.
    #[test]
    fn cq_evaluation_is_monotone(
        q in small_cq(),
        smaller in small_instance(),
        extra in small_instance(),
    ) {
        let larger = smaller.union(&extra);
        if q.holds(&smaller) {
            prop_assert!(q.holds(&larger));
        }
    }

    /// Conf(p, I0) always contains I0 and grows along the path; groundedness
    /// is monotone in the initial instance.
    #[test]
    fn configurations_grow_and_groundedness_is_monotone(
        names in proptest::collection::vec(prop_oneof![Just("Smith"), Just("Jones"), Just("Doe")], 1..4),
        reveal in proptest::collection::vec(any::<bool>(), 1..4),
    ) {
        let schema = phone_directory_access_schema();
        let mut path = AccessPath::new();
        for (name, hit) in names.iter().zip(&reveal) {
            let response: BTreeSet<Tuple> = if *hit {
                [tuple![*name, "OX13QD", "Parks Rd", 5551212]].into_iter().collect()
            } else {
                BTreeSet::new()
            };
            path.push(Access::new("AcM1", tuple![*name]), response);
        }
        let configs = path.configurations(&schema, &Instance::new()).unwrap();
        for window in configs.windows(2) {
            prop_assert!(window[0].is_subinstance_of(&window[1]));
        }
        // Groundedness: if grounded over I0 then grounded over any superset.
        let mut seed = Instance::new();
        for name in &names {
            seed.add_fact("Address", tuple!["High St", "OX26NN", *name, 1]);
        }
        if accltl_core::paths::is_grounded(&path, &Instance::new()) {
            prop_assert!(accltl_core::paths::is_grounded(&path, &seed));
        }
    }

    /// The Lemma 4.5 translation agrees with the formula on random short
    /// paths over the phone-directory schema.
    #[test]
    fn automaton_translation_agrees_with_formula(
        choices in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..4),
    ) {
        let schema = phone_directory_access_schema();
        let mut path = AccessPath::new();
        for (use_acm1, hit) in choices {
            if use_acm1 {
                let response: BTreeSet<Tuple> = if hit {
                    [tuple!["Smith", "OX13QD", "Parks Rd", 5551212]].into_iter().collect()
                } else {
                    BTreeSet::new()
                };
                path.push(Access::new("AcM1", tuple!["Smith"]), response);
            } else {
                let response: BTreeSet<Tuple> = if hit {
                    [tuple!["Parks Rd", "OX13QD", "Jones", 16]].into_iter().collect()
                } else {
                    BTreeSet::new()
                };
                path.push(Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]), response);
            }
        }
        let formula = AccLtl::and(vec![
            properties::eventually_answered_formula(&cq!(<- atom!("Address"; s, p, @"Jones", h))),
            AccLtl::finally(AccLtl::atom(PosFormula::exists(
                vec!["n"],
                isbind_atom("AcM1", vec![Term::var("n")]),
            ))),
        ]);
        let automaton = accltl_plus_to_automaton(&formula);
        let transitions = path.transitions(&schema, &Instance::new()).unwrap();
        prop_assert_eq!(
            formula.satisfied_by_transitions(&transitions, false),
            automaton.accepts_transitions(&transitions)
        );
    }

    /// Satisfiability witnesses returned by the analyzer really satisfy the
    /// formula they were produced for (checked on the 0-ary fragment where
    /// the engine is complete).
    #[test]
    fn analyzer_witnesses_are_genuine(acm2_first in any::<bool>(), require_mobile in any::<bool>()) {
        let schema = phone_directory_access_schema();
        let analyzer = AccessAnalyzer::new(schema.clone());
        let jones = properties::eventually_answered_formula(
            &cq!(<- atom!("Address"; s, p, @"Jones", h)),
        );
        let mut parts = vec![jones];
        if require_mobile {
            parts.push(AccLtl::finally(AccLtl::atom(PosFormula::exists(
                vec!["n", "p", "s", "ph"],
                pre_atom("Mobile#", vec![
                    Term::var("n"), Term::var("p"), Term::var("s"), Term::var("ph"),
                ]),
            ))));
        }
        if acm2_first {
            parts.push(properties::access_order_formula("AcM2", "AcM1"));
        }
        let formula = AccLtl::and(parts);
        let report = analyzer.check_satisfiable(&formula);
        if let Some(witness) = report.witness() {
            prop_assert!(witness.validate(&schema).is_ok());
            prop_assert!(formula
                .holds_on_path(witness, &schema, &Instance::new(), true)
                .unwrap());
        } else {
            // All these combinations are satisfiable; anything else is a bug.
            prop_assert!(false, "expected a witness for {}", formula);
        }
    }
}

/// Strategy: a short random lowercase identifier (the shim has no string
/// `Arbitrary`, so identifiers are built from random bytes).
fn small_ident() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 1..16)
        .prop_map(|bytes| bytes.iter().map(|b| char::from(b'a' + (b % 26))).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interning round-trips: resolving an interned string gives the string
    /// back, and re-interning gives the same id.
    #[test]
    fn interning_round_trips(s in small_ident()) {
        let table = SymbolTable::new();
        let sym = table.intern(&s);
        prop_assert_eq!(table.resolve(sym), s.as_str());
        prop_assert_eq!(table.intern(&s), sym);
        // Ids are shared by the typed wrappers over the same pool.
        prop_assert_eq!(RelId::new(&s).sym(), sym);
        prop_assert_eq!(VarId::new(&s).sym(), sym);
    }

    /// Interned symbols order exactly like the strings they replace — every
    /// ordered collection in the workspace depends on this.
    #[test]
    fn symbol_order_matches_string_order(a in small_ident(), b in small_ident()) {
        prop_assert_eq!(Sym::new(&a).cmp(&Sym::new(&b)), a.as_str().cmp(b.as_str()));
        prop_assert_eq!(
            Value::str(a.as_str()).cmp(&Value::str(b.as_str())),
            a.as_str().cmp(b.as_str())
        );
    }

    /// An instance built through the string API equals one built through raw
    /// interned ids: the representation change is invisible to equality.
    #[test]
    fn string_api_and_id_api_build_equal_instances(instance in small_instance()) {
        let mut by_id = Instance::new();
        for (rel, tuple) in instance.facts() {
            // Re-key through a freshly interned id resolved from the name.
            by_id.add_fact(RelId::new(rel.as_str()), tuple.clone());
        }
        prop_assert_eq!(&by_id, &instance);
        prop_assert!(by_id.is_subinstance_of(&instance));
        prop_assert!(instance.is_subinstance_of(&by_id));
    }
}

/// Display output is unchanged by the interning refactor for the paper's
/// running example (Figure 1 hidden instance and phone-directory schema).
#[test]
fn paper_example_display_is_stable() {
    let hidden = phone_directory_hidden_instance();
    assert_eq!(
        hidden.to_string(),
        "Address(\"Parks Rd\", \"OX13QD\", \"Jones\", 16)\n\
         Address(\"Parks Rd\", \"OX13QD\", \"Smith\", 13)\n\
         Mobile#(\"Smith\", \"OX13QD\", \"Parks Rd\", 5551212)"
    );
    let schema = phone_directory_access_schema();
    assert_eq!(
        schema.schema().to_string(),
        "Address(text, text, text, int)\nMobile#(text, text, text, int)"
    );
    let q = cq!([n] <- atom!("Address"; s, p, n, h));
    assert_eq!(q.to_string(), "Q(n) :- Address(s, p, n, h)");
    assert_eq!(Instance::new().to_string(), "∅");
}
