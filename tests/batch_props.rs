//! Differential property tests for the batched multi-property search
//! (`paths::engine::BatchEngine` and its front-ends): for every property, a
//! batched run must be *byte-identical* to a standalone run — the same
//! verdict, the same witness, the same explored-state count and guard-consult
//! total, the same budget cutoffs — for any partitioning of the batch, on 1
//! and on 4 worker threads, and with the guard cache disabled.  The analyzer
//! front-end (`check_all`) must likewise reproduce `check_satisfiable`
//! report-for-report.

mod common;

use proptest::prelude::*;

use accltl_core::automata::{
    accltl_plus_to_automaton, bounded_emptiness_batch, bounded_emptiness_batch_with_config,
    bounded_emptiness_report, EmptinessConfig, EmptinessOutcome,
};
use accltl_core::logic::bounded::BoundedSearcher;
use accltl_core::prelude::*;

use common::{
    dataflow_formula, digest, flag_lock, jones_post, mobile_pre, random_formula, random_initial,
    with_cache_disabled,
};

/// Strategy: a batch of 2–4 formulas.
fn random_batch() -> impl Strategy<Value = Vec<AccLtl>> {
    proptest::collection::vec(random_formula(), 2..5)
}

/// A partition point strictly inside the batch, derived from a seed.
fn split_of(batch: &[AccLtl], seed: u8) -> usize {
    1 + seed as usize % (batch.len() - 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// One `run_batch` call, two `run_batch` calls over a partition, and N
    /// standalone `run` calls all yield the same per-property reports.
    #[test]
    fn batched_search_is_partition_independent(
        batch in random_batch(),
        split_seed in any::<u8>(),
        initial in random_initial(),
        zero_ary in any::<bool>(),
    ) {
        let split = split_of(&batch, split_seed);
        let _guard = flag_lock();
        let schema = phone_directory_access_schema();
        let searcher = BoundedSearcher::new(
            &schema,
            &initial,
            zero_ary,
            BoundedSearchConfig { threads: 1, ..BoundedSearchConfig::default() },
        );
        let standalone: Vec<_> = batch.iter().map(|f| digest(&searcher.run(f))).collect();
        let whole: Vec<_> = searcher.run_batch(&batch).iter().map(digest).collect();
        let mut parts: Vec<_> = searcher.run_batch(&batch[..split]).iter().map(digest).collect();
        parts.extend(searcher.run_batch(&batch[split..]).iter().map(digest));
        prop_assert_eq!(&whole, &standalone);
        prop_assert_eq!(&parts, &standalone);
    }

    /// On every thread count, batched reports equal the standalone ones
    /// (consult totals are chunk-structure-dependent, so they are compared
    /// within a thread count, not across); verdicts are additionally
    /// thread-independent.
    #[test]
    fn batched_search_is_thread_deterministic(
        batch in random_batch(),
        split_seed in any::<u8>(),
        initial in random_initial(),
    ) {
        let _ = split_seed;
        let _guard = flag_lock();
        let schema = phone_directory_access_schema();
        let mut verdicts_by_threads: Vec<Vec<SatOutcome>> = Vec::new();
        for threads in [1usize, 4] {
            let searcher = BoundedSearcher::new(
                &schema,
                &initial,
                false,
                BoundedSearchConfig { threads, ..BoundedSearchConfig::default() },
            );
            let standalone: Vec<_> = batch.iter().map(|f| digest(&searcher.run(f))).collect();
            let batched: Vec<_> = searcher.run_batch(&batch).iter().map(digest).collect();
            prop_assert_eq!(&batched, &standalone);
            verdicts_by_threads.push(batched.into_iter().map(|d| d.0).collect());
        }
        prop_assert_eq!(&verdicts_by_threads[0], &verdicts_by_threads[1]);
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Disabling the guard cache changes no verdict, witness, explored count
    /// or consult total of a batched run (only the hit/miss split).
    #[test]
    fn batched_search_is_cache_independent(
        batch in random_batch(),
        split_seed in any::<u8>(),
        initial in random_initial(),
    ) {
        let _ = split_seed;
        let _guard = flag_lock();
        let schema = phone_directory_access_schema();
        let searcher = BoundedSearcher::new(
            &schema,
            &initial,
            false,
            BoundedSearchConfig { threads: 1, ..BoundedSearchConfig::default() },
        );
        let cached = searcher.run_batch(&batch);
        let uncached = with_cache_disabled(|| searcher.run_batch(&batch));
        let cached_digests: Vec<_> = cached.iter().map(digest).collect();
        let uncached_digests: Vec<_> = uncached.iter().map(digest).collect();
        prop_assert_eq!(&cached_digests, &uncached_digests);
        for report in &uncached {
            prop_assert_eq!(report.cache.hits, 0);
        }
    }

    /// Batched emptiness reproduces the standalone reports automaton by
    /// automaton, for any partition of the batch.
    #[test]
    fn batched_emptiness_is_partition_independent(
        batch in random_batch(),
        split_seed in any::<u8>(),
        initial in random_initial(),
    ) {
        let split = split_of(&batch, split_seed);
        let _guard = flag_lock();
        let schema = phone_directory_access_schema();
        let automata: Vec<_> = batch.iter().map(accltl_plus_to_automaton).collect();
        let refs: Vec<_> = automata.iter().collect();
        let config = EmptinessConfig { threads: 1, ..EmptinessConfig::default() };
        let standalone: Vec<_> = refs
            .iter()
            .map(|a| digest(&bounded_emptiness_report(a, &schema, &initial, &config)))
            .collect();
        let whole: Vec<_> = bounded_emptiness_batch(&refs, &schema, &initial, &config)
            .iter()
            .map(digest)
            .collect();
        let mut parts: Vec<_> = bounded_emptiness_batch(&refs[..split], &schema, &initial, &config)
            .iter()
            .map(digest)
            .collect();
        parts.extend(
            bounded_emptiness_batch(&refs[split..], &schema, &initial, &config)
                .iter()
                .map(digest),
        );
        prop_assert_eq!(&whole, &standalone);
        prop_assert_eq!(&parts, &standalone);
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The analyzer's `check_all` reproduces `check_satisfiable` report for
    /// report on a mixed-fragment batch (each engine group batched
    /// internally).
    #[test]
    fn check_all_matches_check_satisfiable(
        batch in random_batch(),
        split_seed in any::<u8>(),
        initial in random_initial(),
    ) {
        let _ = split_seed;
        let _guard = flag_lock();
        let mut properties = batch;
        // Make sure every engine group is exercised alongside the random
        // formulas: an X-fragment, a zero-ary, a binding-positive and a
        // full-language property.
        properties.push(AccLtl::next(AccLtl::atom(isbind_prop("AcM1"))));
        properties.push(AccLtl::finally(AccLtl::atom(isbind_prop("AcM1"))));
        properties.push(AccLtl::finally(AccLtl::atom(PosFormula::exists(
            vec!["n"],
            isbind_atom("AcM1", vec![Term::var("n")]),
        ))));
        properties.push(AccLtl::globally(AccLtl::not(AccLtl::atom(
            PosFormula::exists(vec!["n"], isbind_atom("AcM1", vec![Term::var("n")])),
        ))));
        let analyzer =
            AccessAnalyzer::new(phone_directory_access_schema()).with_initial(initial);
        let sequential: Vec<_> = properties
            .iter()
            .map(|f| analyzer.check_satisfiable(f))
            .collect();
        let batched = analyzer.check_all(&BatchRequest::new(properties));
        prop_assert_eq!(&batched, &sequential);
    }
}

/// Per-property budget cutoffs are batch-independent: with a guard-check
/// budget small enough to abort mid-search, the batched run reports exactly
/// the standalone cutoffs (same verdict, same explored count, same spent
/// cost at the cut).
#[test]
fn budget_cutoffs_are_partition_independent() {
    let _guard = flag_lock();
    let schema = phone_directory_access_schema();
    let initial = Instance::new();
    let batch = vec![
        AccLtl::finally(jones_post()),
        dataflow_formula(),
        AccLtl::and(vec![
            AccLtl::globally(AccLtl::not(jones_post())),
            AccLtl::finally(mobile_pre()),
        ]),
    ];
    for budget in [1usize, 7, 50] {
        let engine = EngineConfig::base()
            .max_states(2_000)
            .max_guard_checks(budget);
        let searcher = BoundedSearcher::with_engine_config(&schema, &initial, false, engine);
        let standalone: Vec<_> = batch.iter().map(|f| digest(&searcher.run(f))).collect();
        let batched: Vec<_> = searcher.run_batch(&batch).iter().map(digest).collect();
        assert_eq!(batched, standalone, "budget {budget}");
    }
}

/// The explicit-config emptiness front-end is likewise batch-independent,
/// budget cutoffs included.
#[test]
fn emptiness_budget_cutoffs_are_partition_independent() {
    let _guard = flag_lock();
    let schema = phone_directory_access_schema();
    let initial = Instance::new();
    let automata = [
        accltl_plus_to_automaton(&AccLtl::finally(jones_post())),
        accltl_plus_to_automaton(&dataflow_formula()),
    ];
    let refs: Vec<_> = automata.iter().collect();
    for budget in [1usize, 9, 60] {
        let engine = EngineConfig::base()
            .max_states(2_000)
            .max_guard_checks(budget);
        let standalone: Vec<_> = refs
            .iter()
            .map(|a| {
                digest(
                    &bounded_emptiness_batch_with_config(
                        std::slice::from_ref(a),
                        &schema,
                        &initial,
                        engine,
                    )
                    .pop()
                    .expect("one report"),
                )
            })
            .collect();
        let batched: Vec<_> = bounded_emptiness_batch_with_config(&refs, &schema, &initial, engine)
            .iter()
            .map(digest)
            .collect();
        assert_eq!(batched, standalone, "budget {budget}");
    }
}

/// A batch whose verdicts disagree (satisfiable next to exhausted-unsat)
/// keeps each property's early exit independent: the satisfiable one still
/// returns its witness, the unsatisfiable one its exhaustion.
#[test]
fn mixed_verdicts_early_exit_independently() {
    let _guard = flag_lock();
    let schema = phone_directory_access_schema();
    let initial = Instance::new();
    let sat = AccLtl::finally(jones_post());
    let unsat = AccLtl::and(vec![
        AccLtl::globally(AccLtl::not(jones_post())),
        AccLtl::finally(jones_post()),
    ]);
    let searcher = BoundedSearcher::new(
        &schema,
        &initial,
        false,
        BoundedSearchConfig {
            threads: 1,
            ..BoundedSearchConfig::default()
        },
    );
    let reports = searcher.run_batch(&[sat, unsat]);
    assert!(matches!(reports[0].verdict, SatOutcome::Satisfiable { .. }));
    assert_eq!(reports[1].verdict, SatOutcome::Unsatisfiable);
    if let SatOutcome::Satisfiable { witness } = &reports[0].verdict {
        assert!(witness.validate(&schema).is_ok());
    }
}

/// The `EmptinessOutcome` digests above only compare contractually; pin the
/// witness acceptance too for a satisfiable automaton run through the batch.
#[test]
fn batched_emptiness_witnesses_are_genuine() {
    let _guard = flag_lock();
    let schema = phone_directory_access_schema();
    let initial = Instance::new();
    let automaton = accltl_plus_to_automaton(&AccLtl::finally(jones_post()));
    let config = EmptinessConfig {
        threads: 1,
        ..EmptinessConfig::default()
    };
    let report = bounded_emptiness_report(&automaton, &schema, &initial, &config);
    let EmptinessOutcome::NonEmpty { witness } = &report.verdict else {
        panic!("expected a witness, got {:?}", report.verdict);
    };
    let transitions = witness.transitions(&schema, &initial).unwrap();
    assert!(automaton.accepts_transitions(&transitions));
}
