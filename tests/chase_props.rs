//! Property tests for the incremental chase: on random instances and random
//! FD/IND/disjointness sets — including runs whose FD repairs equate
//! labelled nulls across relations — the index-driven incremental chase must
//! produce exactly the outcome of the scan-based chase, repair for repair.

use proptest::prelude::*;

use accltl_core::prelude::*;
use accltl_core::relational::chase::{chase_with_stats, ChaseConfig, ChaseOutcome};
use accltl_core::relational::{
    Constraint, DisjointnessConstraint, FunctionalDependency, InclusionDependency,
};

/// Strategy: a value drawn from a small pool of constants and labelled nulls
/// (nulls make FD repairs take the equate path instead of hard-failing).
fn small_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::str("a")),
        Just(Value::str("b")),
        Just(Value::str("c")),
        Just(Value::labelled_null(1)),
        Just(Value::labelled_null(2)),
    ]
}

/// Strategy: a random instance over two binary relations `R` and `S` and a
/// unary relation `U`.
fn random_instance() -> impl Strategy<Value = Instance> {
    proptest::collection::vec((0usize..3, small_value(), small_value()), 0..8).prop_map(|facts| {
        let mut inst = Instance::new();
        for (rel, v1, v2) in facts {
            match rel {
                0 => inst.add_fact("R", Tuple::new(vec![v1, v2])),
                1 => inst.add_fact("S", Tuple::new(vec![v1, v2])),
                _ => inst.add_fact("U", Tuple::new(vec![v1])),
            };
        }
        inst
    })
}

/// Strategy: a random constraint over the `R`/`S`/`U` vocabulary.
fn random_constraint() -> impl Strategy<Value = Constraint> {
    prop_oneof![
        // FDs on the binary relations, in both directions.
        (any::<bool>(), any::<bool>()).prop_map(|(on_r, flip)| {
            let rel = if on_r { "R" } else { "S" };
            let (lhs, rhs) = if flip { (vec![1], 0) } else { (vec![0], 1) };
            Constraint::Fd(FunctionalDependency::new(rel, lhs, rhs))
        }),
        // INDs between the binary relations and into the unary one.
        (0usize..4).prop_map(|shape| match shape {
            0 => Constraint::Ind(InclusionDependency::new("R", vec![0], "S", vec![0])),
            1 => Constraint::Ind(InclusionDependency::new("S", vec![1], "R", vec![1])),
            2 => Constraint::Ind(InclusionDependency::new("R", vec![0, 1], "S", vec![0, 1])),
            _ => Constraint::Ind(InclusionDependency::new("R", vec![1], "U", vec![0])),
        }),
        // A disjointness (denial) constraint.
        Just(Constraint::Disjoint(DisjointnessConstraint::new(
            "R", 0, "S", 1
        ))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scan and incremental chase agree on the outcome — the exact instance,
    /// failure or exhaustion — and on every repair counter, for random
    /// instances and constraint lists (budgeted to keep divergent IND cycles
    /// bounded).
    #[test]
    fn incremental_chase_equals_scan_chase(
        inst in random_instance(),
        constraints in proptest::collection::vec(random_constraint(), 0..5),
    ) {
        let (scan_outcome, scan_stats) = chase_with_stats(
            &inst,
            &constraints,
            &ChaseConfig { max_steps: 200, incremental: false },
        );
        let (inc_outcome, inc_stats) = chase_with_stats(
            &inst,
            &constraints,
            &ChaseConfig { max_steps: 200, incremental: true },
        );
        prop_assert_eq!(&inc_outcome, &scan_outcome);
        prop_assert_eq!(inc_stats.passes, scan_stats.passes);
        prop_assert_eq!(inc_stats.violation_checks, scan_stats.violation_checks);
        prop_assert_eq!(inc_stats.fd_merges, scan_stats.fd_merges);
        prop_assert_eq!(inc_stats.ind_additions, scan_stats.ind_additions);

        // A completed chase satisfies every constraint, and re-chasing is a
        // fixpoint — in both modes.
        if let ChaseOutcome::Completed(result) = &inc_outcome {
            prop_assert!(constraints.iter().all(|c| c.satisfied(result)));
            let again = chase_with_stats(
                result,
                &constraints,
                &ChaseConfig { max_steps: 200, incremental: true },
            ).0;
            prop_assert_eq!(again, ChaseOutcome::Completed(result.clone()));
        }
    }
}
