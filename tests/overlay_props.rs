//! Property tests for the copy-on-write configuration overlays and the
//! shared parallel frontier engine: overlays must be observationally
//! identical to eagerly materialized configurations, and search verdicts must
//! not depend on the worker-thread count.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;

use accltl_core::automata::{accltl_plus_to_automaton, bounded_emptiness, EmptinessConfig};
use accltl_core::prelude::*;
use accltl_core::relational::overlay::InstanceOverlay;

/// Strategy: a random access path over the phone-directory schema — each step
/// is an AcM1 or AcM2 access whose response reveals zero or more compatible
/// tuples.
fn random_path() -> impl Strategy<Value = AccessPath> {
    let name = prop_oneof![Just("Smith"), Just("Jones"), Just("Doe")];
    let step = (name, any::<bool>(), 0usize..3).prop_map(|(name, use_acm1, hits)| {
        if use_acm1 {
            let response: BTreeSet<Tuple> = (0..hits)
                .map(|i| tuple![name, "OX13QD", "Parks Rd", 5_551_212 + i as i64])
                .collect();
            (Access::new("AcM1", tuple![name]), response)
        } else {
            let response: BTreeSet<Tuple> = (0..hits)
                .map(|i| tuple!["Parks Rd", "OX13QD", name, i as i64])
                .collect();
            (Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]), response)
        }
    });
    proptest::collection::vec(step, 0..5).prop_map(AccessPath::from_steps)
}

/// Strategy: a random initial instance sharing values with the paths above.
fn random_initial() -> impl Strategy<Value = Instance> {
    proptest::collection::vec(any::<bool>(), 0..3).prop_map(|picks| {
        let mut initial = Instance::new();
        for (i, pick) in picks.into_iter().enumerate() {
            if pick {
                initial.add_fact("Address", tuple!["High St", "OX26NN", "Seed", i as i64]);
            } else {
                initial.add_fact("Mobile#", tuple!["Smith", "OX13QD", "Parks Rd", 5_551_212]);
            }
        }
        initial
    })
}

/// Strategy: a small zero-ary-fragment formula over the phone-directory
/// vocabulary (satisfiable and unsatisfiable shapes mixed).
fn random_zero_ary_formula() -> impl Strategy<Value = AccLtl> {
    let jones = || {
        AccLtl::atom(PosFormula::exists(
            vec!["s", "p", "h"],
            post_atom(
                "Address",
                vec![
                    Term::var("s"),
                    Term::var("p"),
                    Term::constant("Jones"),
                    Term::var("h"),
                ],
            ),
        ))
    };
    let mobile = || {
        AccLtl::atom(PosFormula::exists(
            vec!["n", "p", "s", "ph"],
            pre_atom(
                "Mobile#",
                vec![
                    Term::var("n"),
                    Term::var("p"),
                    Term::var("s"),
                    Term::var("ph"),
                ],
            ),
        ))
    };
    prop_oneof![
        Just(AccLtl::finally(jones())),
        Just(AccLtl::next(mobile())),
        Just(AccLtl::and(vec![
            AccLtl::finally(jones()),
            AccLtl::finally(mobile()),
        ])),
        Just(AccLtl::and(vec![
            AccLtl::globally(AccLtl::not(jones())),
            AccLtl::finally(jones()),
        ])),
        Just(AccLtl::until(
            AccLtl::not(mobile()),
            AccLtl::atom(isbind_prop("AcM2")),
        )),
    ]
}

fn verdict_discriminant(outcome: &SatOutcome) -> u8 {
    match outcome {
        SatOutcome::Satisfiable { .. } => 0,
        SatOutcome::Unsatisfiable => 1,
        SatOutcome::Unknown { .. } => 2,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The overlay configuration sequence is observationally identical to the
    /// eagerly materialized one: fact set, iteration order and Display.
    #[test]
    fn overlay_configurations_match_materialized_instances(
        path in random_path(),
        initial in random_initial(),
    ) {
        let schema = phone_directory_access_schema();
        let base = Arc::new(initial.clone());
        let overlays = path.overlay_configurations(&schema, &base).unwrap();
        let eager = path.configurations(&schema, &initial).unwrap();
        prop_assert_eq!(overlays.len(), eager.len());
        for (overlay, instance) in overlays.iter().zip(&eager) {
            // Same fact set (materialization equality covers set equality).
            prop_assert_eq!(&overlay.materialize(), instance);
            // Same iteration order, fact by fact.
            let overlay_facts: Vec<_> = overlay
                .facts()
                .map(|(rel, t)| (rel, t.clone()))
                .collect();
            let eager_facts: Vec<_> = instance
                .facts()
                .map(|(rel, t)| (rel, t.clone()))
                .collect();
            prop_assert_eq!(overlay_facts, eager_facts);
            // Same Display.
            prop_assert_eq!(overlay.to_string(), instance.to_string());
            // Same lookup surface.
            prop_assert_eq!(overlay.fact_count(), instance.fact_count());
            prop_assert_eq!(overlay.active_domain(), instance.active_domain());
        }
        // The final configuration is computed directly by `configuration`.
        let direct = path.configuration(&schema, &initial).unwrap();
        prop_assert_eq!(&direct, eager.last().unwrap());
    }

    /// `StructureKey`s are content-addressed: however a fact set splits
    /// between the base allocation and the overlay delta, equal content
    /// gives equal keys — across distinct `Arc` allocations and distinct
    /// overlay chains — while adding any fact changes the key.
    #[test]
    fn structure_keys_are_content_addressed(
        path in random_path(),
        initial in random_initial(),
        split_seed in any::<u8>(),
    ) {
        let schema = phone_directory_access_schema();
        let all: Instance = path.configuration(&schema, &initial).unwrap();
        let facts: Vec<_> = all.facts().map(|(rel, t)| (rel, t.clone())).collect();
        let split = split_seed as usize % (facts.len() + 1);

        // Chain A: every fact lives in its own base allocation.
        let chain_a = InstanceOverlay::new(Arc::new(all.clone()));
        // Chain B: a fresh allocation holds the first `split` facts, the
        // rest arrive through the delta.
        let mut base_b = Instance::new();
        for (rel, tuple) in &facts[..split] {
            base_b.add_fact(*rel, tuple.clone());
        }
        let mut chain_b = InstanceOverlay::new(Arc::new(base_b));
        for (rel, tuple) in &facts[split..] {
            chain_b.push_fact(*rel, tuple.clone());
        }

        prop_assert_eq!(&chain_a.materialize(), &chain_b.materialize());
        prop_assert_eq!(chain_a.structure_key(), chain_b.structure_key());

        // Any extra fact separates the keys.
        let mut grown = chain_b.clone();
        grown.push_fact("Address", tuple!["New St", "OX00XX", "Nobody", 99]);
        prop_assert!(chain_a.structure_key() != grown.structure_key());
    }

    /// Overlays over a shared base key hash sets exactly like their deltas.
    #[test]
    fn overlay_equality_follows_fact_sets(path in random_path()) {
        let schema = phone_directory_access_schema();
        let base = Arc::new(Instance::new());
        let overlays = path.overlay_configurations(&schema, &base).unwrap();
        let set: std::collections::HashSet<InstanceOverlay> =
            overlays.iter().cloned().collect();
        let distinct: std::collections::HashSet<Instance> =
            overlays.iter().map(InstanceOverlay::materialize).collect();
        prop_assert_eq!(set.len(), distinct.len());
    }

    /// The bounded satisfiability search returns the same verdict on 1 and 4
    /// worker threads, and every witness validates and satisfies the formula.
    #[test]
    fn bounded_search_verdicts_are_thread_count_independent(
        formula in random_zero_ary_formula(),
        initial in random_initial(),
    ) {
        let schema = phone_directory_access_schema();
        let outcomes: Vec<SatOutcome> = [1usize, 4]
            .iter()
            .map(|&threads| {
                let config = BoundedSearchConfig { threads, ..BoundedSearchConfig::default() };
                accltl_core::logic::solver::sat_zero_fragment(
                    &formula, &schema, &initial, &config,
                )
                .expect("formula is in the 0-ary fragment")
            })
            .collect();
        prop_assert_eq!(
            verdict_discriminant(&outcomes[0]),
            verdict_discriminant(&outcomes[1])
        );
        for outcome in &outcomes {
            if let SatOutcome::Satisfiable { witness } = outcome {
                prop_assert!(witness.validate(&schema).is_ok());
                prop_assert!(formula
                    .holds_on_path(witness, &schema, &initial, true)
                    .unwrap());
            }
        }
    }

    /// The A-automaton emptiness search agrees across thread counts, with
    /// genuine witnesses.
    #[test]
    fn emptiness_verdicts_are_thread_count_independent(
        satisfiable in any::<bool>(),
        initial in random_initial(),
    ) {
        let schema = phone_directory_access_schema();
        let jones = AccLtl::atom(PosFormula::exists(
            vec!["s", "p", "h"],
            post_atom(
                "Address",
                vec![
                    Term::var("s"),
                    Term::var("p"),
                    Term::constant("Jones"),
                    Term::var("h"),
                ],
            ),
        ));
        let formula = if satisfiable {
            AccLtl::finally(jones)
        } else {
            AccLtl::and(vec![
                AccLtl::globally(AccLtl::not(jones.clone())),
                AccLtl::finally(jones),
            ])
        };
        let automaton = accltl_plus_to_automaton(&formula);
        let outcomes: Vec<_> = [1usize, 4]
            .iter()
            .map(|&threads| {
                let config = EmptinessConfig { threads, ..EmptinessConfig::default() };
                bounded_emptiness(&automaton, &schema, &initial, &config)
            })
            .collect();
        prop_assert_eq!(&outcomes[0], &outcomes[1]);
        for outcome in &outcomes {
            if let accltl_core::automata::EmptinessOutcome::NonEmpty { witness } = outcome {
                let transitions = witness.transitions(&schema, &initial).unwrap();
                prop_assert!(automaton.accepts_transitions(&transitions));
            }
        }
    }
}
