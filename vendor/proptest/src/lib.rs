//! Offline shim for the subset of the [proptest](https://docs.rs/proptest)
//! API used by the accltl property tests.
//!
//! The build container has no access to a cargo registry, so the workspace
//! resolves `proptest` to this path crate.  It implements a deterministic
//! random-input engine behind the same surface the tests use — `Strategy`
//! with `prop_map`, `Just`, `any`, tuple strategies, `collection::vec`,
//! `prop_oneof!` and the `proptest!`/`prop_assert!`/`prop_assert_eq!` macros.
//! Inputs are derived from a fixed per-test seed, so runs are reproducible;
//! unlike real proptest there is no shrinking — a failing case panics with
//! the generated inputs' `Debug` form.  Swap the `[workspace.dependencies]`
//! entry back to the crates.io release for shrinking and persistence.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! The deterministic random source and run configuration.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property is checked on.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// A splittable xorshift64* generator with a fixed, name-derived seed.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator deterministically from a test name.
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name, mixed so the state is never zero.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: hash | 1 }
        }

        /// Derives an independent generator for one numbered case.
        #[must_use]
        pub fn fork(&self, case: u32) -> Self {
            let mut forked = Self {
                state: self.state ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1),
            };
            forked.next_u64();
            forked
        }

        /// The next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// A uniform value in `0..bound` (`0` when `bound == 0`).
        pub fn below(&mut self, bound: usize) -> usize {
            if bound == 0 {
                0
            } else {
                (self.next_u64() % bound as u64) as usize
            }
        }

        /// A uniform boolean.
        pub fn gen_bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use std::fmt::Debug;
    use std::ops::Range;
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// Something that can generate values of an associated type.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value: Debug;

        /// Generates one value from the random source.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy's concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Rc::new(self),
            }
        }
    }

    /// A reference-counted type-erased strategy, cloneable for reuse.
    pub struct BoxedStrategy<V> {
        inner: Rc<dyn Strategy<Value = V>>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            Self {
                inner: Rc::clone(&self.inner),
            }
        }
    }

    impl<V: Debug> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.inner.generate(rng)
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A uniform choice among same-valued strategies; built by `prop_oneof!`.
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Self {
                options: self.options.clone(),
            }
        }
    }

    impl<V: Debug> Union<V> {
        /// A union over the given alternatives (must be non-empty).
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let pick = rng.below(self.options.len());
            self.options[pick].generate(rng)
        }
    }

    impl Strategy for Range<usize> {
        type Value = usize;

        fn generate(&self, rng: &mut TestRng) -> usize {
            self.start + rng.below(self.end - self.start)
        }
    }

    impl Strategy for Range<i64> {
        type Value = i64;

        fn generate(&self, rng: &mut TestRng) -> i64 {
            let width = (self.end - self.start) as usize;
            self.start + rng.below(width) as i64
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    /// A strategy for vectors with lengths drawn from a range.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S> VecStrategy<S> {
        pub(crate) fn new(element: S, len: Range<usize>) -> Self {
            Self { element, len }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.len.end.saturating_sub(self.len.start).max(1);
            let len = self.len.start + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! The `Arbitrary` trait behind `any::<T>()`.

    use std::fmt::Debug;
    use std::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen_bool()
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() & 0xff) as u8
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() & 0xffff_ffff) as u32
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as usize
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A`.
    #[must_use]
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Strategies for collections.

    use std::ops::Range;

    use crate::strategy::{Strategy, VecStrategy};

    /// A strategy for `Vec`s of `element` values with length in `len`.
    ///
    /// Panics on an empty range, matching crates.io proptest's behaviour so
    /// the shim cannot silently diverge from a real-proptest run.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(
            len.start < len.end,
            "vec strategy requires a non-empty size range"
        );
        VecStrategy::new(element, len)
    }
}

pub mod prelude {
    //! The glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// A uniform choice among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a property-level condition, mirroring `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts property-level equality, mirroring `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body on deterministically random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $config; $($rest)*);
    };
    (@run $config:expr;) => {};
    (@run $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let root = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                let mut rng = root.fork(case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::proptest!(@run $config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::test_runner::Config::default(); $($rest)*);
    };
}
