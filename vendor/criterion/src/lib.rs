//! Offline shim for the subset of the [criterion](https://docs.rs/criterion)
//! API used by the `accltl-bench` targets.
//!
//! The build container has no access to a cargo registry, so the workspace
//! resolves `criterion` to this path crate.  It is API-compatible with the
//! calls the benches make (`criterion_group!`/`criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, `black_box`) and runs
//! each benchmark for a small fixed number of timed samples, printing a
//! `name ... median time` line per benchmark.  Swap the `[workspace.dependencies]`
//! entry back to the crates.io release for real statistics.
//!
//! Besides the per-line output, every case's median is merged into a flat
//! machine-readable report `{"bench name": median_ns, ...}` — written to
//! `BENCH_report.json` in the working directory, or to the path named by the
//! `ACCLTL_BENCH_REPORT` environment variable.  Re-runs merge into the
//! existing file, so several bench binaries accumulate one report.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt::Display;
use std::hint;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// An identifier for one parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// A benchmark id made of a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// A benchmark id with only a parameter component.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        if self.function.is_empty() {
            self.parameter.clone()
        } else {
            format!("{}/{}", self.function, self.parameter)
        }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Timed samples per case; the reported figure is the median of these.
const SAMPLES: usize = 3;

/// Environment variable overriding the report path (default
/// `BENCH_report.json` in the working directory).
pub const BENCH_REPORT_ENV_VAR: &str = "ACCLTL_BENCH_REPORT";

fn report_path() -> String {
    std::env::var(BENCH_REPORT_ENV_VAR).unwrap_or_else(|_| "BENCH_report.json".to_owned())
}

/// The report accumulated by this process, seeded from any existing file so
/// that successive bench binaries merge instead of clobbering each other.
fn report_map() -> &'static Mutex<BTreeMap<String, u64>> {
    static MAP: OnceLock<Mutex<BTreeMap<String, u64>>> = OnceLock::new();
    MAP.get_or_init(|| Mutex::new(load_report(&report_path())))
}

/// Parses a previously written flat report (`{"name": ns, ...}`).  The shim
/// only ever writes this shape, so a small scan over string/number pairs
/// suffices; any malformed file is treated as empty.
fn load_report(path: &str) -> BTreeMap<String, u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return BTreeMap::new();
    };
    let mut map = BTreeMap::new();
    let mut chars = text.chars().peekable();
    loop {
        // Seek the opening quote of the next name.
        if chars.find(|&c| c == '"').is_none() {
            return map;
        }
        let mut name = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some(escaped) => name.push(escaped),
                    None => return map,
                },
                Some('"') => break,
                Some(c) => name.push(c),
                None => return map,
            }
        }
        // Expect `:` then digits; anything else abandons the entry.
        if chars.next() != Some(':') {
            continue;
        }
        let mut digits = String::new();
        while chars.peek().is_some_and(char::is_ascii_digit) {
            digits.push(chars.next().expect("peeked"));
        }
        if let Ok(ns) = digits.parse::<u64>() {
            map.insert(name, ns);
        }
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            _ => vec![c],
        })
        .collect()
}

/// Records one case's median and rewrites the merged report file.  Write
/// errors are ignored: a read-only working directory must not fail a bench.
fn record_case(label: &str, median_ns: u64) {
    let mut map = report_map().lock().expect("bench report lock");
    map.insert(label.to_owned(), median_ns);
    let mut text = String::from("{");
    for (index, (name, ns)) in map.iter().enumerate() {
        if index > 0 {
            text.push(',');
        }
        text.push_str(&format!("\"{}\":{}", escape(name), ns));
    }
    text.push_str("}\n");
    let _ = std::fs::write(report_path(), text);
}

fn run_case(label: &str, iterations: u64, mut body: impl FnMut(&mut Bencher)) {
    let mut per_iter_ns: Vec<u128> = (0..SAMPLES)
        .map(|_| {
            let mut bencher = Bencher {
                iterations,
                elapsed: Duration::ZERO,
            };
            body(&mut bencher);
            bencher
                .elapsed
                .checked_div(iterations as u32)
                .unwrap_or_default()
                .as_nanos()
        })
        .collect();
    per_iter_ns.sort_unstable();
    let median_ns = u64::try_from(per_iter_ns[SAMPLES / 2]).unwrap_or(u64::MAX);
    let median = Duration::from_nanos(median_ns);
    println!("bench: {label} ... {median:?}/iter (median of {SAMPLES}x{iterations} iterations)");
    record_case(label, median_ns);
}

/// A group of related benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    iterations: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples; the shim maps this onto iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iterations = (n as u64).max(1);
        self
    }

    /// Sets the target measurement time; ignored by the shim.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `body` under `id` within this group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut body: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().render());
        run_case(&label, self.iterations, &mut body);
        self
    }

    /// Benchmarks `body` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut body: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().render());
        run_case(&label, self.iterations, |b| body(b, input));
        self
    }

    /// Finishes the group.  The shim has no summary to emit.
    pub fn finish(&mut self) {}
}

/// Conversion into a [`BenchmarkId`], so plain strings work as ids.
pub trait IntoBenchmarkId {
    /// Converts `self` into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::from_parameter(self)
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::from_parameter(self)
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Honoured for API compatibility; the shim takes no CLI arguments.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iterations: 10,
            _criterion: self,
        }
    }

    /// Benchmarks a single standalone function.
    pub fn bench_function(&mut self, name: &str, mut body: impl FnMut(&mut Bencher)) -> &mut Self {
        run_case(name, 10, &mut body);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
