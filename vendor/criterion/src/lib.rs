//! Offline shim for the subset of the [criterion](https://docs.rs/criterion)
//! API used by the `accltl-bench` targets.
//!
//! The build container has no access to a cargo registry, so the workspace
//! resolves `criterion` to this path crate.  It is API-compatible with the
//! calls the benches make (`criterion_group!`/`criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, `black_box`) and runs
//! each benchmark for a small fixed number of timed iterations, printing a
//! `name ... median time` line per benchmark.  Swap the `[workspace.dependencies]`
//! entry back to the crates.io release for real statistics.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// An identifier for one parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// A benchmark id made of a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// A benchmark id with only a parameter component.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        if self.function.is_empty() {
            self.parameter.clone()
        } else {
            format!("{}/{}", self.function, self.parameter)
        }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_case(label: &str, iterations: u64, mut body: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    body(&mut bencher);
    let per_iter = bencher
        .elapsed
        .checked_div(iterations as u32)
        .unwrap_or_default();
    println!("bench: {label} ... {per_iter:?}/iter ({iterations} iterations)");
}

/// A group of related benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    iterations: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples; the shim maps this onto iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iterations = (n as u64).max(1);
        self
    }

    /// Sets the target measurement time; ignored by the shim.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `body` under `id` within this group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut body: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().render());
        run_case(&label, self.iterations, &mut body);
        self
    }

    /// Benchmarks `body` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut body: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().render());
        run_case(&label, self.iterations, |b| body(b, input));
        self
    }

    /// Finishes the group.  The shim has no summary to emit.
    pub fn finish(&mut self) {}
}

/// Conversion into a [`BenchmarkId`], so plain strings work as ids.
pub trait IntoBenchmarkId {
    /// Converts `self` into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::from_parameter(self)
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::from_parameter(self)
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Honoured for API compatibility; the shim takes no CLI arguments.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iterations: 10,
            _criterion: self,
        }
    }

    /// Benchmarks a single standalone function.
    pub fn bench_function(&mut self, name: &str, mut body: impl FnMut(&mut Bencher)) -> &mut Self {
        run_case(name, 10, &mut body);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
