//! Monitoring-session demo: opens an [`AccessAnalyzer::monitor`] session over
//! two properties of the phone-directory schema, feeds it a short stream of
//! concrete accesses, and prints the per-step verdicts and the long-term
//! relevance of the next candidate access.
//!
//! The session reuses the engine and guard-verdict caches across steps;
//! setting `ACCLTL_DISABLE_SESSION_REUSE=1` re-runs each step from scratch
//! with byte-identical output (CI diffs the two).  Only the contractual
//! counters (explored states, cost, guard consults) are printed — the
//! reused/recomputed split legitimately differs between the two modes.
//!
//! Run with `cargo run --example access_monitor`.

use accltl_core::prelude::*;

fn verdict_label(outcome: &SatOutcome) -> String {
    match outcome {
        SatOutcome::Satisfiable { witness } => format!("satisfiable\n    witness: {witness}"),
        SatOutcome::Unsatisfiable => "unsatisfiable".to_string(),
        SatOutcome::Unknown { .. } => "unknown".to_string(),
    }
}

fn print_step(session: &MonitorSession<'_>, labels: &[&str]) {
    let report = session.last_report();
    println!(
        "step {}: explored={} cost={} guard_consults={}",
        report.step,
        report.explored,
        report.cost,
        report.guard.total()
    );
    for (index, label) in labels.iter().enumerate() {
        println!(
            "  {label}: {}",
            verdict_label(&session.still_satisfiable(index))
        );
    }
}

fn main() {
    let analyzer = AccessAnalyzer::new(phone_directory_access_schema());

    // Property 1 (0-ary fragment): eventually Jones's address is revealed.
    let jones_post = PosFormula::exists(
        vec!["s", "p", "h"],
        post_atom(
            "Address",
            vec![
                Term::var("s"),
                Term::var("p"),
                Term::constant("Jones"),
                Term::var("h"),
            ],
        ),
    );
    let eventually_jones = AccLtl::finally(AccLtl::atom(jones_post));

    // Property 2 (AccLTL+, bounded fallback in a session): an AcM1 access
    // whose bound name was previously revealed in Address^pre.
    let dataflow = AccLtl::finally(AccLtl::atom(PosFormula::exists(
        vec!["n"],
        PosFormula::and(vec![
            isbind_atom("AcM1", vec![Term::var("n")]),
            PosFormula::exists(
                vec!["s", "p", "h"],
                pre_atom(
                    "Address",
                    vec![
                        Term::var("s"),
                        Term::var("p"),
                        Term::var("n"),
                        Term::var("h"),
                    ],
                ),
            ),
        ]),
    )));

    let labels = ["F [Jones revealed]", "F [AcM1 bound to a revealed name]"];
    let mut session = analyzer.monitor(&[eventually_jones, dataflow]);
    print_step(&session, &labels);

    // The runtime question between steps: is another AcM1("Jones") access
    // still relevant to Jones's mobile number?
    let jones_mobile = UnionOfCqs::single(cq!(<- atom!("Mobile#"; @"Jones", p, s, ph)));
    let candidate = Access::new("AcM1", tuple!["Jones"]);

    let stream: Vec<(Access, Response)> = vec![
        (
            Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]),
            [tuple!["Parks Rd", "OX13QD", "Jones", "1"]]
                .into_iter()
                .collect(),
        ),
        (
            Access::new("AcM1", tuple!["Jones"]),
            [tuple!["Jones", "OX13QD", "Parks Rd", "5551212"]]
                .into_iter()
                .collect(),
        ),
        // A repeat of the same access: reveals nothing new, so a session
        // replays the previous verdicts without re-searching.
        (
            Access::new("AcM1", tuple!["Jones"]),
            [tuple!["Jones", "OX13QD", "Parks Rd", "5551212"]]
                .into_iter()
                .collect(),
        ),
    ];

    for (access, response) in &stream {
        let relevant = match session.still_relevant(access, &jones_mobile, false) {
            LtrVerdict::Relevant { .. } => "relevant",
            LtrVerdict::NotRelevant => "not relevant",
            LtrVerdict::Unknown => "unknown",
        };
        println!("next access {access}: {relevant} to Jones's mobile number");
        session.step(access, response).expect("well-formed access");
        print_step(&session, &labels);
    }

    let relevant = match session.still_relevant(&candidate, &jones_mobile, false) {
        LtrVerdict::Relevant { .. } => "relevant",
        LtrVerdict::NotRelevant => "not relevant",
        LtrVerdict::Unknown => "unknown",
    };
    println!("next access {candidate}: {relevant} to Jones's mobile number");

    // One-shot counter/timing summary, printed only under ACCLTL_STATS=1.
    accltl_core::obs::summary::print_if_enabled();
}
