//! A-automaton emptiness demo: translates `AccLTL+` formulas to A-automata
//! (Lemma 4.5), runs the bounded product emptiness search (Theorem 4.6) and
//! prints the outcomes and witness paths.
//!
//! The emptiness search runs on the same shared frontier engine as the
//! bounded satisfiability search; `ACCLTL_SEARCH_THREADS` (default 1) selects
//! the worker count without affecting any output — CI runs this example with
//! 1 and 4 threads and diffs the output.  Per-transition guards evaluate
//! through the per-position value indexes of `relational::index`;
//! `ACCLTL_DISABLE_INDEXES=1` selects the scan fallback, again without
//! affecting any output (CI diffs that too).  Guard verdicts are memoized
//! through the cache of `relational::guard_cache`;
//! `ACCLTL_DISABLE_GUARD_CACHE=1` selects the uncached path, once more with
//! byte-identical output (CI diffs that as well).
//!
//! Run with `cargo run --example emptiness`.

use accltl_core::automata::{accltl_plus_to_automaton, bounded_emptiness, EmptinessConfig};
use accltl_core::prelude::*;

fn report(label: &str, outcome: &accltl_core::automata::EmptinessOutcome) {
    use accltl_core::automata::EmptinessOutcome;
    match outcome {
        EmptinessOutcome::NonEmpty { witness } => {
            println!("{label}: non-empty\n  witness: {witness}");
        }
        EmptinessOutcome::Empty => println!("{label}: empty"),
        EmptinessOutcome::Unknown => println!("{label}: unknown (budget exhausted)"),
    }
}

fn main() {
    let schema = phone_directory_access_schema();
    let config = EmptinessConfig::default();

    let jones_post = PosFormula::exists(
        vec!["s", "p", "h"],
        post_atom(
            "Address",
            vec![
                Term::var("s"),
                Term::var("p"),
                Term::constant("Jones"),
                Term::var("h"),
            ],
        ),
    );

    // 1. Eventually Jones's address is revealed — non-empty.
    let f = AccLtl::finally(AccLtl::atom(jones_post.clone()));
    let automaton = accltl_plus_to_automaton(&f);
    println!(
        "automaton for F [Jones revealed]: {} states, {} transitions",
        automaton.state_count,
        automaton.transitions.len()
    );
    report(
        "L(A) of F [Jones revealed]",
        &bounded_emptiness(&automaton, &schema, &Instance::new(), &config),
    );

    // 2. The contradiction G ¬[Jones] ∧ F [Jones] — empty.
    let contradiction = AccLtl::and(vec![
        AccLtl::globally(AccLtl::not(AccLtl::atom(jones_post.clone()))),
        AccLtl::finally(AccLtl::atom(jones_post)),
    ]);
    let automaton = accltl_plus_to_automaton(&contradiction);
    report(
        "L(A) of G ¬[Jones] ∧ F [Jones]",
        &bounded_emptiness(&automaton, &schema, &Instance::new(), &config),
    );

    // 3. A hand-built two-stage dataflow automaton: accept once an AcM1
    //    access uses a name already present in Address^pre.
    let mut automaton = AAutomaton::new(2, 0);
    automaton.add_transition(0, Guard::always(), 0);
    automaton.add_transition(
        0,
        Guard::positive(PosFormula::exists(
            vec!["n"],
            PosFormula::and(vec![
                isbind_atom("AcM1", vec![Term::var("n")]),
                PosFormula::exists(
                    vec!["s", "p", "h"],
                    pre_atom(
                        "Address",
                        vec![
                            Term::var("s"),
                            Term::var("p"),
                            Term::var("n"),
                            Term::var("h"),
                        ],
                    ),
                ),
            ]),
        )),
        1,
    );
    automaton.mark_accepting(1);
    report(
        "L(A) of the dataflow automaton",
        &bounded_emptiness(&automaton, &schema, &Instance::new(), &config),
    );

    // One-shot counter/timing summary, printed only under ACCLTL_STATS=1.
    accltl_core::obs::summary::print_if_enabled();
}
