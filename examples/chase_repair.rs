//! Repairing an instance with the bounded chase: inclusion-dependency
//! repairs, functional-dependency null merges, and a denial-constraint
//! failure.
//!
//! Run with `cargo run --example chase_repair`.  The output is deterministic
//! and byte-identical whichever discovery mode runs — re-run with
//! `ACCLTL_DISABLE_INCREMENTAL_CHASE=1` (or `ACCLTL_DISABLE_INDEXES=1`) and
//! diff; CI does exactly that.  Only mode-invariant counters are printed:
//! per-mode work counters (tuples rescanned, index rebuilds avoided) are the
//! point of the incremental mode and intentionally differ.

use accltl_core::prelude::*;
use accltl_core::relational::chase::{chase_with_stats, ChaseConfig, ChaseOutcome};
use accltl_core::relational::{Constraint, InclusionDependency};

fn workload() -> (Instance, Vec<Constraint>) {
    let mut inst = Instance::new();
    // Mobile entries whose street/postcode pairs lack address rows: each one
    // triggers an inclusion-dependency repair.
    inst.add_fact("Mobile#", tuple!["Smith", "OX13QD", "Parks Rd", 5551212]);
    inst.add_fact("Mobile#", tuple!["Jones", "OX26NN", "High St", 5550000]);
    inst.add_fact("Mobile#", tuple!["Doe", "OX44AA", "Abbey Rd", 5559999]);
    // One address row already present, with a null postcode: the FD
    // `street → postcode` merges it with the repaired rows' constants.
    inst.add_fact(
        "Address",
        Tuple::new(vec![
            Value::str("Parks Rd"),
            Value::labelled_null(1),
            Value::str("Smith"),
            Value::Int(13),
        ]),
    );
    let constraints = vec![
        Constraint::Ind(InclusionDependency::new(
            "Mobile#",
            vec![2, 1],
            "Address",
            vec![0, 1],
        )),
        Constraint::Fd(FunctionalDependency::new("Address", vec![0], 1)),
    ];
    (inst, constraints)
}

fn main() {
    let (inst, constraints) = workload();
    println!("=== Chase repair (phone-directory constraints) ===");
    println!("input: {} facts", inst.fact_count());
    for c in &constraints {
        println!("  constraint: {c}");
    }

    let config = ChaseConfig::default();
    let (outcome, stats) = chase_with_stats(&inst, &constraints, &config);
    match &outcome {
        ChaseOutcome::Completed(result) => {
            println!(
                "completed: {} facts, all constraints satisfied: {}",
                result.fact_count(),
                constraints.iter().all(|c| c.satisfied(result))
            );
            println!("{result}");
        }
        ChaseOutcome::Failed { violated } => println!("failed on: {violated}"),
        ChaseOutcome::BudgetExhausted(_) => println!("budget exhausted"),
    }
    println!(
        "repair trace: {} passes, {} violation checks, {} FD merges, {} IND additions ({} repairs)",
        stats.passes,
        stats.violation_checks,
        stats.fd_merges,
        stats.ind_additions,
        stats.repairs()
    );

    // A denial constraint cannot be repaired: the chase reports the violated
    // constraint instead of an instance.
    let mut conflicted = Instance::new();
    conflicted.add_fact("Staff", tuple!["Parks Rd"]);
    conflicted.add_fact("Street", tuple!["Parks Rd"]);
    let denial = vec![Constraint::Disjoint(DisjointnessConstraint::new(
        "Staff", 0, "Street", 0,
    ))];
    let (outcome, _) = chase_with_stats(&conflicted, &denial, &config);
    match outcome {
        ChaseOutcome::Failed { violated } => println!("\ndenial detected: {violated}"),
        _ => println!("\nunexpected: denial constraint not detected"),
    }

    // One-shot counter/timing summary, printed only under ACCLTL_STATS=1.
    accltl_core::obs::summary::print_if_enabled();
}
