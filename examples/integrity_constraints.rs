//! Data-integrity restrictions: disjointness constraints and functional
//! dependencies (Examples 2.3 and 2.4, Section 5.1).
//!
//! Shows (a) how a disjointness constraint changes containment under access
//! patterns and relevance verdicts, and (b) how functional dependencies are
//! expressed in the inequality extension of the transition language.
//!
//! Run with `cargo run --example integrity_constraints`.

use accltl_core::prelude::*;

fn main() {
    let schema = phone_directory_access_schema();

    // (a) Disjointness: customer names never coincide with street names.
    let name_street_disjoint = DisjointnessConstraint::new("Mobile#", 0, "Address", 0);

    // "Some customer is named like a street" — unsatisfiable under the
    // constraint, so the query is contained in the impossible query.
    let person_named_like_street =
        cq!(<- atom!("Mobile#"; n, p, s, ph), atom!("Address"; n, p2, m, h));
    let impossible = cq!(<- atom!("Mobile#"; @"⊥none", p, s, ph));

    let plain = AccessAnalyzer::new(schema.clone());
    let constrained =
        AccessAnalyzer::new(schema.clone()).with_disjointness(name_street_disjoint.clone());

    println!("Containment of \"customer named like a street\" in the empty query:");
    println!(
        "  without constraints: {:?}",
        matches!(
            plain.contained_under_access_patterns(&person_named_like_street, &impossible),
            accltl_core::analyzer::ContainmentOutcome::Contained
        )
    );
    println!(
        "  with names ∩ streets = ∅: {:?}",
        matches!(
            constrained.contained_under_access_patterns(&person_named_like_street, &impossible),
            accltl_core::analyzer::ContainmentOutcome::Contained
        )
    );

    // (b) Functional dependencies need inequalities (Example 2.4): name
    // determines phone number in Mobile#.
    let fd = FunctionalDependency::new("Mobile#", vec![0], 3);
    let fd_formula = properties::functional_dependency_formula(&schema, &fd);
    println!(
        "\nFD restriction {fd} as an AccLTL formula lives in fragment: {}",
        classify(&fd_formula)
    );

    // A path that reveals two conflicting phone numbers for Smith violates
    // the FD restriction; the violation is visible once the facts appear in a
    // pre-instance.
    let conflicting = AccessPath::new()
        .with_step(
            Access::new("AcM1", tuple!["Smith"]),
            [
                tuple!["Smith", "OX13QD", "Parks Rd", 5551212],
                tuple!["Smith", "OX13QD", "Parks Rd", 9999999],
            ]
            .into_iter()
            .collect(),
        )
        .with_step(
            Access::new("AcM1", tuple!["Jones"]),
            [].into_iter().collect(),
        );
    let respects_fd = fd_formula
        .holds_on_path(&conflicting, &schema, &Instance::new(), true)
        .expect("evaluation succeeds");
    println!(
        "path with two phone numbers for Smith respects the FD: {respects_fd} (expected false)"
    );

    // The FD-aware relevance question of Example 2.4: under the FD, a second
    // access asking for Smith's number is no longer long-term relevant once
    // one number is known — the FD pins the answer down.
    let one_number_known = {
        let mut instance = Instance::new();
        instance.add_fact("Mobile#", tuple!["Smith", "OX13QD", "Parks Rd", 5551212]);
        instance
    };
    let smith_query = UnionOfCqs::single(cq!(<- atom!("Mobile#"; @"Smith", p, s, ph)));
    let analyzer_with_knowledge =
        AccessAnalyzer::new(schema.clone()).with_initial(one_number_known);
    let verdict = analyzer_with_knowledge.long_term_relevant(
        &Access::new("AcM1", tuple!["Smith"]),
        &smith_query,
        false,
    );
    println!(
        "re-asking for Smith's number once one entry is known is relevant: {} (expected false)",
        verdict.is_relevant()
    );

    // One-shot counter/timing summary, printed only under ACCLTL_STATS=1.
    accltl_core::obs::summary::print_if_enabled();
}
