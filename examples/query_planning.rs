//! Relevance-guided access pruning for query answering under limited access
//! patterns.
//!
//! The brute-force plan of the paper's introduction tries every valid access
//! built from known values.  Recent work ([3, 4], which the paper
//! generalises) prunes accesses that are not long-term relevant.  This
//! example measures the difference on a synthetic workload: it compares the
//! number of accesses performed by the brute-force saturation with the number
//! of accesses that are actually long-term relevant for the query.
//!
//! Run with `cargo run --example query_planning`.

use accltl_core::prelude::*;

fn main() {
    let workload = generate_workload(&WorkloadConfig {
        relations: 3,
        arity: 3,
        methods: 3,
        max_inputs: 1,
        domain_size: 6,
        facts_per_relation: 8,
        query_atoms: 2,
        seed: 7,
    });
    let analyzer = AccessAnalyzer::new(workload.schema.clone());

    println!("Synthetic schema:");
    for method in workload.schema.methods() {
        println!("  {method}");
    }

    for (i, query) in workload.queries.iter().enumerate() {
        let report = analyzer
            .maximal_answers(query, &workload.hidden)
            .expect("workload schemas are well-formed");

        // Count which of the accesses the brute-force plan performed were
        // long-term relevant for the query (the ones a relevance-aware
        // planner would keep).
        let union = UnionOfCqs::single(query.clone());
        let mut relevant = 0usize;
        for (access, _) in report.witness_path.steps() {
            if analyzer
                .long_term_relevant(access, &union, false)
                .is_relevant()
            {
                relevant += 1;
            }
        }
        println!(
            "\nquery #{i}: {query}\n  brute-force accesses: {:4}   long-term relevant: {:4}   answers: {} (complete: {})",
            report.accesses_performed,
            relevant,
            report.answers.len(),
            report.is_complete(),
        );
    }

    println!(
        "\nThe gap between the two columns is the work a relevance-aware planner avoids\n\
         (paper, introduction and Example 2.3)."
    );

    // One-shot counter/timing summary, printed only under ACCLTL_STATS=1.
    accltl_core::obs::summary::print_if_enabled();
}
