//! Auditing a multi-form Web interface with access-order, dataflow and
//! data-integrity restrictions.
//!
//! The interface designer wants to enforce (paper, introduction):
//!  * access-order: the Address form must be used before the Mobile# form;
//!  * dataflow: names entered into the Mobile# form must have been returned
//!    by the Address form earlier;
//!  * integrity: customer names never coincide with street names.
//!
//! The audit asks which combinations of these restrictions still admit an
//! access path that answers the analyst's query — i.e. whether the
//! restrictions are compatible with the interface being useful at all.
//!
//! Run with `cargo run --example web_form_audit`.

use accltl_core::logic::AccLtl;
use accltl_core::prelude::*;

fn main() {
    let schema = phone_directory_access_schema();
    let analyzer = AccessAnalyzer::new(schema.clone());

    let jones = cq!(<- atom!("Address"; s, p, @"Jones", h));
    let goal = properties::eventually_answered_formula(&jones);

    let order = properties::access_order_formula("AcM2", "AcM1");
    let dataflow = properties::dataflow_formula(&schema, "AcM1", 0, "Address", 2);
    let disjoint = properties::disjointness_formula_for(
        &schema,
        &DisjointnessConstraint::new("Mobile#", 0, "Address", 0),
    );
    let grounded = properties::groundedness_formula(&schema);

    let restrictions: Vec<(&str, AccLtl)> = vec![
        ("no restriction", AccLtl::top()),
        ("access order (Address before Mobile#)", order.clone()),
        ("dataflow (Mobile# names from Address)", dataflow.clone()),
        ("names disjoint from streets", disjoint.clone()),
        ("groundedness", grounded.clone()),
        (
            "order + dataflow + disjointness",
            AccLtl::and(vec![order, dataflow, disjoint]),
        ),
    ];

    println!("Audit: is the Jones query still reachable under each restriction?\n");
    for (label, restriction) in restrictions {
        let formula = AccLtl::and(vec![restriction.clone(), goal.clone()]);
        let fragment = classify(&formula);
        let report = analyzer.check_satisfiable(&formula);
        println!(
            "  {label:45}  fragment: {:28}  satisfiable: {:?}",
            fragment.to_string(),
            report.is_satisfiable()
        );
        if let Some(witness) = report.witness() {
            println!("      witness ({} accesses): {witness}", witness.len());
        }
    }

    // Finally, a restriction that makes the goal impossible: forbid any use of
    // the Address form.  The Jones tuple can then never be revealed.
    let never_address = AccLtl::globally(AccLtl::not(AccLtl::atom(isbind_prop("AcM2"))));
    let impossible = AccLtl::and(vec![never_address, goal]);
    let report = analyzer.check_satisfiable(&impossible);
    println!(
        "\n  forbidding the Address form entirely  ->  satisfiable: {:?} (expected false)",
        report.is_satisfiable()
    );

    // One-shot counter/timing summary, printed only under ACCLTL_STATS=1.
    accltl_core::obs::summary::print_if_enabled();
}
