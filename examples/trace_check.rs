//! Validates an `ACCLTL_TRACE` JSONL trace file: every line must parse,
//! every number must be non-negative, and per thread the enter/exit records
//! must form a well-nested span tree that ends empty.  Used by the CI trace
//! smoke alongside the determinism diffs.
//!
//! ```text
//! cargo run --example trace_check -- TRACE.jsonl [--require name1,name2,...]
//! ```
//!
//! With `--require`, the listed span/event names must each occur at least
//! once — CI uses this to pin the instrumentation coverage (engine phases,
//! pool tasks, guard-cache consults, chase passes, LTS layers).  Exits
//! non-zero with a line-numbered message on the first violation.

use std::collections::{BTreeMap, BTreeSet};
use std::process::ExitCode;

use accltl_core::obs::json::{parse, JsonValue};

/// One validation failure, with the 1-based line it occurred on.
struct Violation {
    line: usize,
    message: String,
}

fn fail(line: usize, message: impl Into<String>) -> Violation {
    Violation {
        line,
        message: message.into(),
    }
}

/// Recursively checks that every numeric value in a record is non-negative
/// (the trace grammar only emits unsigned integers).
fn check_non_negative(value: &JsonValue, line: usize) -> Result<(), Violation> {
    match value {
        JsonValue::Int(n) if *n < 0 => Err(fail(line, format!("negative number {n}"))),
        JsonValue::Float(f) if *f < 0.0 => Err(fail(line, format!("negative number {f}"))),
        JsonValue::Array(items) => items.iter().try_for_each(|v| check_non_negative(v, line)),
        JsonValue::Object(map) => map.values().try_for_each(|v| check_non_negative(v, line)),
        _ => Ok(()),
    }
}

fn str_field<'a>(record: &'a JsonValue, key: &str, line: usize) -> Result<&'a str, Violation> {
    record
        .get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| fail(line, format!("missing string field {key:?}")))
}

fn int_field(record: &JsonValue, key: &str, line: usize) -> Result<i128, Violation> {
    record
        .get(key)
        .and_then(JsonValue::as_int)
        .ok_or_else(|| fail(line, format!("missing integer field {key:?}")))
}

/// Validates the whole trace text, returning per-kind record counts and the
/// set of names seen.
fn validate(text: &str) -> Result<(BTreeMap<String, usize>, BTreeSet<String>), Violation> {
    // Per-thread stack of open span ids; exits must match the innermost
    // open span on their thread, and every stack must end empty.
    let mut open: BTreeMap<i128, Vec<(i128, String)>> = BTreeMap::new();
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut names: BTreeSet<String> = BTreeSet::new();
    let mut seen_ids: BTreeSet<i128> = BTreeSet::new();

    for (index, line) in text.lines().enumerate() {
        let lineno = index + 1;
        let record = parse(line).map_err(|e| fail(lineno, format!("unparseable JSON: {e}")))?;
        check_non_negative(&record, lineno)?;
        let ev = str_field(&record, "ev", lineno)?;
        let name = str_field(&record, "name", lineno)?.to_owned();
        let thread = int_field(&record, "thread", lineno)?;
        names.insert(name.clone());
        *counts.entry(ev.to_owned()).or_default() += 1;
        match ev {
            "enter" => {
                let id = int_field(&record, "id", lineno)?;
                let parent = int_field(&record, "parent", lineno)?;
                int_field(&record, "t_ns", lineno)?;
                if !seen_ids.insert(id) {
                    return Err(fail(lineno, format!("duplicate span id {id}")));
                }
                let stack = open.entry(thread).or_default();
                // The parent link must point at the innermost open span on
                // this thread (or 0 for a root).
                let expected = stack.last().map_or(0, |(open_id, _)| *open_id);
                if parent != expected {
                    return Err(fail(
                        lineno,
                        format!("span {id} has parent {parent}, expected {expected}"),
                    ));
                }
                stack.push((id, name));
            }
            "exit" => {
                let id = int_field(&record, "id", lineno)?;
                int_field(&record, "dur_ns", lineno)?;
                let stack = open.entry(thread).or_default();
                match stack.pop() {
                    Some((open_id, open_name)) if open_id == id && open_name == name => {}
                    Some((open_id, open_name)) => {
                        return Err(fail(
                            lineno,
                            format!(
                                "exit of span {id} ({name}) crosses open span \
                                 {open_id} ({open_name})"
                            ),
                        ));
                    }
                    None => {
                        return Err(fail(
                            lineno,
                            format!("exit of span {id} with no open span on thread {thread}"),
                        ));
                    }
                }
            }
            "event" => {
                int_field(&record, "t_ns", lineno)?;
            }
            other => return Err(fail(lineno, format!("unknown record kind {other:?}"))),
        }
    }

    for (thread, stack) in &open {
        if let Some((id, name)) = stack.last() {
            return Err(fail(
                text.lines().count(),
                format!("span {id} ({name}) on thread {thread} never exited"),
            ));
        }
    }
    Ok((counts, names))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: trace_check <trace.jsonl> [--require name1,name2,...]");
        return ExitCode::FAILURE;
    };
    let required: Vec<String> = match (args.next().as_deref(), args.next()) {
        (Some("--require"), Some(list)) => list.split(',').map(str::to_owned).collect(),
        (None, _) => Vec::new(),
        _ => {
            eprintln!("usage: trace_check <trace.jsonl> [--require name1,name2,...]");
            return ExitCode::FAILURE;
        }
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("trace_check: cannot read {path}: {error}");
            return ExitCode::FAILURE;
        }
    };
    if text.trim().is_empty() {
        eprintln!("trace_check: {path} is empty — was ACCLTL_TRACE honoured?");
        return ExitCode::FAILURE;
    }

    match validate(&text) {
        Ok((counts, names)) => {
            let missing: Vec<&String> = required
                .iter()
                .filter(|name| !names.contains(*name))
                .collect();
            if !missing.is_empty() {
                eprintln!("trace_check: {path} has no record named {missing:?}");
                return ExitCode::FAILURE;
            }
            let summary: Vec<String> = counts.iter().map(|(ev, n)| format!("{n} {ev}")).collect();
            println!(
                "trace_check: {path} OK — {} ({} distinct names)",
                summary.join(", "),
                names.len()
            );
            ExitCode::SUCCESS
        }
        Err(violation) => {
            eprintln!(
                "trace_check: {path}:{}: {}",
                violation.line, violation.message
            );
            ExitCode::FAILURE
        }
    }
}
