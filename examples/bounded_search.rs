//! Bounded witness search demo: runs the Table 1 solver front-ends on a few
//! formulas over the phone-directory schema and prints the verdicts and
//! witness paths.
//!
//! The frontier engine behind the search shards each BFS layer across worker
//! threads (`ACCLTL_SEARCH_THREADS`, default 1) with verdicts and witnesses
//! guaranteed independent of the thread count — CI runs this example with 1
//! and 4 threads and diffs the output.  Guard evaluation goes through the
//! per-position value indexes of `relational::index`; setting
//! `ACCLTL_DISABLE_INDEXES=1` falls back to relation scans with byte-identical
//! output (CI diffs that too).  Obligation checks are additionally memoized
//! through the guard-verdict cache of `relational::guard_cache`; setting
//! `ACCLTL_DISABLE_GUARD_CACHE=1` selects the uncached path, again with
//! byte-identical output (CI diffs that as well).
//!
//! Run with `cargo run --example bounded_search`.

use accltl_core::logic::solver::{sat_binding_positive_bounded, sat_zero_fragment};
use accltl_core::prelude::*;

fn report(label: &str, outcome: &SatOutcome) {
    match outcome {
        SatOutcome::Satisfiable { witness } => {
            println!("{label}: satisfiable\n  witness: {witness}");
        }
        SatOutcome::Unsatisfiable => println!("{label}: unsatisfiable"),
        SatOutcome::Unknown { .. } => println!("{label}: unknown (budget exhausted)"),
    }
}

fn main() {
    let schema = phone_directory_access_schema();
    let config = BoundedSearchConfig::default();

    let jones_post = PosFormula::exists(
        vec!["s", "p", "h"],
        post_atom(
            "Address",
            vec![
                Term::var("s"),
                Term::var("p"),
                Term::constant("Jones"),
                Term::var("h"),
            ],
        ),
    );

    // 1. A satisfiable eventuality (0-ary fragment, PSPACE row of Table 1).
    let eventually_jones = AccLtl::finally(AccLtl::atom(jones_post.clone()));
    let outcome = sat_zero_fragment(&eventually_jones, &schema, &Instance::new(), &config)
        .expect("formula is in the 0-ary fragment");
    report("F [Jones revealed]", &outcome);

    // 2. A contradiction: globally-not conjoined with eventually.
    let contradiction = AccLtl::and(vec![
        AccLtl::globally(AccLtl::not(AccLtl::atom(jones_post.clone()))),
        AccLtl::finally(AccLtl::atom(jones_post)),
    ]);
    let outcome = sat_zero_fragment(&contradiction, &schema, &Instance::new(), &config)
        .expect("formula is in the 0-ary fragment");
    report("G ¬[Jones] ∧ F [Jones]", &outcome);

    // 3. The running dataflow example (AccLTL+): an AcM1 access whose bound
    //    name was previously revealed in Address^pre.
    let dataflow = AccLtl::finally(AccLtl::atom(PosFormula::exists(
        vec!["n"],
        PosFormula::and(vec![
            isbind_atom("AcM1", vec![Term::var("n")]),
            PosFormula::exists(
                vec!["s", "p", "h"],
                pre_atom(
                    "Address",
                    vec![
                        Term::var("s"),
                        Term::var("p"),
                        Term::var("n"),
                        Term::var("h"),
                    ],
                ),
            ),
        ]),
    )));
    let outcome = sat_binding_positive_bounded(&dataflow, &schema, &Instance::new(), &config)
        .expect("formula is binding-positive");
    report("F [AcM1 bound to a revealed name]", &outcome);

    // One-shot counter/timing summary, printed only under ACCLTL_STATS=1.
    accltl_core::obs::summary::print_if_enabled();
}
