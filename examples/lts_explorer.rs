//! Regenerates Figure 1: the tree of possible access paths of the
//! phone-directory schema.
//!
//! Run with `cargo run --example lts_explorer`.

use accltl_core::prelude::*;

fn main() {
    let schema = phone_directory_access_schema();
    let hidden = phone_directory_hidden_instance();

    // Figure 1 branches on both the binding entered into a form and the
    // (possibly partial) response the form returns.
    let options = LtsOptions {
        max_depth: 2,
        grounded_only: false,
        response_policy: ResponsePolicy::SubsetsOfHidden {
            max_response_size: 2,
        },
        max_bindings_per_method: 6,
        max_nodes: 2_000,
        ..LtsOptions::default()
    };
    let explorer = LtsExplorer::new(&schema, &hidden, options);
    let tree = explorer
        .explore(&Instance::new())
        .expect("the phone-directory schema is well-formed");

    println!("LTS fragment for the phone-directory schema (Figure 1):");
    println!(
        "  nodes: {}   transitions: {}   truncated: {}",
        tree.node_count(),
        tree.edge_count(),
        tree.truncated
    );
    println!("  nodes per depth: {:?}", tree.nodes_per_depth());
    println!("\n{}", tree.render(60));

    // The exact-response view (every form returns precisely the matching
    // tuples) is much narrower — the comparison the Figure 1 caption implies.
    let exact = LtsExplorer::new(
        &schema,
        &hidden,
        LtsOptions {
            max_depth: 2,
            response_policy: ResponsePolicy::ExactFromHidden,
            max_bindings_per_method: 6,
            ..LtsOptions::default()
        },
    )
    .explore(&Instance::new())
    .expect("exploration succeeds");
    println!(
        "Exact-response view: nodes {} / transitions {} (vs {} / {} with partial responses)",
        exact.node_count(),
        exact.edge_count(),
        tree.node_count(),
        tree.edge_count()
    );

    // One-shot counter/timing summary, printed only under ACCLTL_STATS=1.
    accltl_core::obs::summary::print_if_enabled();
}
