//! Batched multi-property analysis demo: checks a Table-1-style suite of
//! properties over the phone-directory schema either property-by-property
//! (`sequential`) or through one shared configuration-space exploration per
//! engine (`batched`, the default), printing identically formatted reports.
//!
//! The batch engine promises per-property verdicts, witnesses, explored-state
//! counts and guard-consult *totals* byte-identical to the sequential runs —
//! CI runs this example in both modes and diffs the output.
//!
//! Run with `cargo run --example batch_analysis -- [batched|sequential]`.

use accltl_core::logic::bounded::BoundedSearcher;
use accltl_core::prelude::*;
use accltl_core::{AnalyzerReport, BatchRequest};

fn property_suite() -> Vec<(&'static str, AccLtl)> {
    let jones_post = PosFormula::exists(
        vec!["s", "p", "h"],
        post_atom(
            "Address",
            vec![
                Term::var("s"),
                Term::var("p"),
                Term::constant("Jones"),
                Term::var("h"),
            ],
        ),
    );
    let dataflow = AccLtl::finally(AccLtl::atom(PosFormula::exists(
        vec!["n"],
        PosFormula::and(vec![
            isbind_atom("AcM1", vec![Term::var("n")]),
            PosFormula::exists(
                vec!["s", "p", "h"],
                pre_atom(
                    "Address",
                    vec![
                        Term::var("s"),
                        Term::var("p"),
                        Term::var("n"),
                        Term::var("h"),
                    ],
                ),
            ),
        ]),
    )));
    vec![
        (
            "X [AcM1 bound]          (AccLTL(X), ΣP2)",
            AccLtl::next(AccLtl::atom(isbind_prop("AcM1"))),
        ),
        (
            "F [Jones revealed]      (0-ary, PSPACE)",
            AccLtl::finally(AccLtl::atom(jones_post.clone())),
        ),
        (
            "G¬J ∧ FJ                (0-ary, PSPACE)",
            AccLtl::and(vec![
                AccLtl::globally(AccLtl::not(AccLtl::atom(jones_post.clone()))),
                AccLtl::finally(AccLtl::atom(jones_post)),
            ]),
        ),
        ("F [AcM1 bound to pre]   (AccLTL+)", dataflow.clone()),
        (
            "G ¬[AcM1 bound to pre]  (full language)",
            AccLtl::globally(AccLtl::not(dataflow)),
        ),
    ]
}

fn print_report(label: &str, report: &AnalyzerReport) {
    let verdict = match &report.outcome {
        SatOutcome::Satisfiable { witness } => format!("satisfiable, witness {witness}"),
        SatOutcome::Unsatisfiable => "unsatisfiable".to_string(),
        SatOutcome::Unknown { .. } => "unknown (budget exhausted)".to_string(),
    };
    println!("{label}: {verdict}  [{:?}]", report.engine);
}

fn main() {
    let batched = match std::env::args().nth(1).as_deref() {
        None | Some("batched") => true,
        Some("sequential") => false,
        Some(other) => {
            eprintln!("usage: batch_analysis [batched|sequential] (got {other:?})");
            std::process::exit(2);
        }
    };
    let schema = phone_directory_access_schema();
    let suite = property_suite();
    let labels: Vec<&str> = suite.iter().map(|(label, _)| *label).collect();
    let properties: Vec<AccLtl> = suite.into_iter().map(|(_, f)| f).collect();

    println!("== analyzer verdicts ==");
    let analyzer = AccessAnalyzer::new(schema.clone());
    let reports: Vec<AnalyzerReport> = if batched {
        analyzer.check_all(&BatchRequest::new(properties.clone()))
    } else {
        properties
            .iter()
            .map(|f| analyzer.check_satisfiable(f))
            .collect()
    };
    for (label, report) in labels.iter().zip(&reports) {
        print_report(label, report);
    }

    // The bounded-search layer exposes the full accounting; explored states
    // and guard-consult totals must also be mode-independent (the hit/miss
    // split is not, and is deliberately not printed).
    println!("== bounded-search accounting ==");
    let searcher = BoundedSearcher::new(
        &schema,
        &Instance::new(),
        false,
        BoundedSearchConfig::default(),
    );
    let search_reports: Vec<SearchReport<SatOutcome>> = if batched {
        searcher.run_batch(&properties)
    } else {
        properties.iter().map(|f| searcher.run(f)).collect()
    };
    for (label, report) in labels.iter().zip(&search_reports) {
        println!(
            "{label}: explored {} states, {} guard checks, {} consults",
            report.explored,
            report.cost,
            report.cache.total(),
        );
    }

    // One-shot counter/timing summary, printed only under ACCLTL_STATS=1.
    accltl_core::obs::summary::print_if_enabled();
}
