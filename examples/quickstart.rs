//! Quickstart: the paper's running example end to end.
//!
//! Builds the phone-directory schema with its two Web-form access methods,
//! replays the access path of Figure 1, evaluates `AccLTL` properties on it,
//! and asks the analyzer the headline static-analysis questions.
//!
//! Run with `cargo run --example quickstart`.

use accltl_core::prelude::*;

fn main() {
    // 1. The schema of the introduction: Mobile#(name, postcode, street,
    //    phoneno) accessed by name, Address(street, postcode, name, houseno)
    //    accessed by street + postcode.
    let schema = phone_directory_access_schema();
    println!("Schema:\n{}", schema.schema());
    for method in schema.methods() {
        println!("  access method: {method}");
    }

    // 2. An access path: enter "Smith" into the Mobile# form, then enter the
    //    discovered street and postcode into the Address form (Figure 1).
    let path = AccessPath::new()
        .with_step(
            Access::new("AcM1", tuple!["Smith"]),
            [tuple!["Smith", "OX13QD", "Parks Rd", 5551212]]
                .into_iter()
                .collect(),
        )
        .with_step(
            Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]),
            [
                tuple!["Parks Rd", "OX13QD", "Smith", 13],
                tuple!["Parks Rd", "OX13QD", "Jones", 16],
            ]
            .into_iter()
            .collect(),
        );
    path.validate(&schema).expect("the path is well-formed");
    let final_config = path
        .configuration(&schema, &Instance::new())
        .expect("methods are declared");
    println!("\nAccess path:\n  {path}");
    println!(
        "Final configuration ({} facts):\n{final_config}",
        final_config.fact_count()
    );

    // 3. Evaluate an AccLTL property on the path: eventually the revealed data
    //    answers "does Jones have an address entry?".
    let jones = cq!(<- atom!("Address"; s, p, @"Jones", h));
    let eventually_jones = properties::eventually_answered_formula(&jones);
    let holds = eventually_jones
        .holds_on_path(&path, &schema, &Instance::new(), false)
        .expect("evaluation succeeds");
    println!("\nF [Jones revealed] holds on the path: {holds}");

    // 4. Ask the analyzer: is that property satisfiable at all, which fragment
    //    does it live in, and which engine decided it?
    let analyzer = AccessAnalyzer::new(schema.clone());
    let report = analyzer.check_satisfiable(&eventually_jones);
    println!(
        "satisfiable: {} (fragment {}, witness length {:?})",
        report.is_satisfiable(),
        report.fragment,
        report.witness().map(AccessPath::len)
    );

    // 5. Long-term relevance: is entering (Parks Rd, OX13QD) into the Address
    //    form worth it for the Jones query?
    let access = Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]);
    let verdict = analyzer.long_term_relevant(&access, &UnionOfCqs::single(jones.clone()), false);
    println!("AcM2(Parks Rd, OX13QD) long-term relevant for the Jones query: {verdict:?}");

    // 6. Maximal answers under the access restrictions: starting from nothing,
    //    Jones's address is *not* obtainable (the paper's opening observation).
    let report = analyzer
        .maximal_answers(
            &cq!([x, y, z] <- atom!("Address"; x, y, @"Jones", z)),
            &phone_directory_hidden_instance(),
        )
        .expect("answerability analysis succeeds");
    println!(
        "maximal answers from an empty start: {} (complete: {}, accesses tried: {})",
        report.answers.len(),
        report.is_complete(),
        report.accesses_performed
    );

    // One-shot counter/timing summary, printed only under ACCLTL_STATS=1.
    accltl_core::obs::summary::print_if_enabled();
}
