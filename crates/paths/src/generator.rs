//! Seeded workload generators for tests and benchmarks.
//!
//! The paper has no experimental section, so the benchmark harness needs
//! synthetic workloads: schemas with access methods, hidden instances,
//! conjunctive queries and accesses.  Everything here is driven by a seeded
//! RNG so that benchmark runs are reproducible.

use accltl_relational::{
    Atom, ConjunctiveQuery, DataType, Instance, RelationSchema, Schema, Term, Tuple, Value,
};

use crate::access::{Access, AccessMethod, AccessSchema};
use crate::rng::SeededRng;

/// Parameters of the synthetic workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Number of relations in the schema.
    pub relations: usize,
    /// Arity of every relation.
    pub arity: usize,
    /// Number of access methods (at least one per relation is created when
    /// this is larger than `relations`).
    pub methods: usize,
    /// Maximum number of input positions per access method.
    pub max_inputs: usize,
    /// Number of distinct data values in the hidden instance.
    pub domain_size: usize,
    /// Number of facts per relation in the hidden instance.
    pub facts_per_relation: usize,
    /// Number of atoms in generated conjunctive queries.
    pub query_atoms: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            relations: 3,
            arity: 3,
            methods: 4,
            max_inputs: 2,
            domain_size: 8,
            facts_per_relation: 10,
            query_atoms: 3,
            seed: 42,
        }
    }
}

/// A generated workload: a schema with access methods, a hidden instance and
/// a batch of conjunctive queries.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The schema with access methods.
    pub schema: AccessSchema,
    /// The hidden instance (the actual content of the data source).
    pub hidden: Instance,
    /// Generated conjunctive queries over the schema.
    pub queries: Vec<ConjunctiveQuery>,
    /// Generated accesses (all valid for the schema).
    pub accesses: Vec<Access>,
}

/// Generates a reproducible workload from the configuration.
#[must_use]
pub fn generate_workload(config: &WorkloadConfig) -> Workload {
    let mut rng = SeededRng::new(config.seed);

    // Schema: R0..R{n-1}, all text columns (the paper's examples are
    // homogeneous and text values keep bindings readable in reports).
    let schema = Schema::from_relations(
        (0..config.relations)
            .map(|i| RelationSchema::new(format!("R{i}"), vec![DataType::Text; config.arity])),
    )
    .expect("generated relation names are unique");

    let mut access_schema = AccessSchema::new(schema);
    for m in 0..config.methods.max(config.relations) {
        let relation = format!("R{}", m % config.relations);
        let input_count = rng.usize_up_to(config.max_inputs.min(config.arity));
        let mut positions: Vec<usize> = (0..config.arity).collect();
        rng.shuffle(&mut positions);
        positions.truncate(input_count);
        access_schema
            .add_method(AccessMethod::new(format!("M{m}"), relation, positions))
            .expect("generated methods are valid");
    }

    // Hidden instance over a bounded value domain.
    let domain: Vec<Value> = (0..config.domain_size)
        .map(|i| Value::str(format!("v{i}")))
        .collect();
    let mut hidden = Instance::new();
    for r in 0..config.relations {
        for _ in 0..config.facts_per_relation {
            let tuple: Tuple = (0..config.arity)
                .map(|_| domain[rng.usize_below(domain.len())])
                .collect();
            hidden.add_fact(format!("R{r}"), tuple);
        }
    }

    // Queries: chain-shaped conjunctive queries sharing variables between
    // consecutive atoms (the classical "path join" workload), with an
    // occasional constant.
    let mut queries = Vec::new();
    for q in 0..4 {
        let mut atoms = Vec::new();
        for a in 0..config.query_atoms {
            let relation = format!("R{}", rng.usize_below(config.relations));
            let terms: Vec<Term> = (0..config.arity)
                .map(|p| {
                    if p == 0 && a > 0 {
                        // Join with the previous atom.
                        Term::var(format!("x{}_{}", q, a - 1))
                    } else if rng.bool_with(0.15) {
                        Term::constant(domain[rng.usize_below(domain.len())])
                    } else if p == config.arity - 1 {
                        Term::var(format!("x{q}_{a}"))
                    } else {
                        Term::var(format!("y{q}_{a}_{p}"))
                    }
                })
                .collect();
            atoms.push(Atom::new(relation, terms));
        }
        queries.push(ConjunctiveQuery::boolean(atoms));
    }

    // Accesses: one per method, with binding values drawn from the domain.
    let mut accesses = Vec::new();
    for method in access_schema.methods() {
        let binding: Tuple = method
            .input_positions()
            .iter()
            .map(|_| domain[rng.usize_below(domain.len())])
            .collect();
        accesses.push(Access::new(method.name_sym(), binding));
    }

    Workload {
        schema: access_schema,
        hidden,
        queries,
        accesses,
    }
}

/// The hidden instance used throughout the paper's running example: Smith's
/// mobile entry and the Parks Road addresses of Smith and Jones (Figure 1).
#[must_use]
pub fn phone_directory_hidden_instance() -> Instance {
    let mut inst = Instance::new();
    inst.add_fact(
        "Mobile#",
        Tuple::new(vec![
            Value::str("Smith"),
            Value::str("OX13QD"),
            Value::str("Parks Rd"),
            Value::Int(5551212),
        ]),
    );
    inst.add_fact(
        "Address",
        Tuple::new(vec![
            Value::str("Parks Rd"),
            Value::str("OX13QD"),
            Value::str("Smith"),
            Value::Int(13),
        ]),
    );
    inst.add_fact(
        "Address",
        Tuple::new(vec![
            Value::str("Parks Rd"),
            Value::str("OX13QD"),
            Value::str("Jones"),
            Value::Int(16),
        ]),
    );
    inst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_reproducible() {
        let config = WorkloadConfig::default();
        let w1 = generate_workload(&config);
        let w2 = generate_workload(&config);
        assert_eq!(w1.hidden, w2.hidden);
        assert_eq!(w1.queries, w2.queries);
        assert_eq!(w1.accesses, w2.accesses);
    }

    #[test]
    fn different_seeds_differ() {
        let w1 = generate_workload(&WorkloadConfig::default());
        let w2 = generate_workload(&WorkloadConfig {
            seed: 7,
            ..WorkloadConfig::default()
        });
        assert_ne!(w1.hidden, w2.hidden);
    }

    #[test]
    fn generated_objects_are_well_formed() {
        let w = generate_workload(&WorkloadConfig::default());
        assert!(w.hidden.validate_against(w.schema.schema()).is_ok());
        for access in &w.accesses {
            assert!(w.schema.validate_access(access).is_ok());
        }
        for query in &w.queries {
            assert!(query.validate().is_ok());
            assert!(!query.atoms.is_empty());
        }
        assert!(w.schema.method_count() >= 3);
    }

    #[test]
    fn config_knobs_change_sizes() {
        let w = generate_workload(&WorkloadConfig {
            relations: 5,
            facts_per_relation: 3,
            ..WorkloadConfig::default()
        });
        assert_eq!(w.schema.schema().len(), 5);
        // Duplicates may collapse a couple of facts, but the order of
        // magnitude must match.
        assert!(w.hidden.fact_count() <= 15);
        assert!(w.hidden.fact_count() >= 10);
    }

    #[test]
    fn paper_hidden_instance_matches_figure1() {
        let inst = phone_directory_hidden_instance();
        assert_eq!(inst.fact_count(), 3);
        assert_eq!(inst.relation_size("Address"), 2);
        assert_eq!(inst.relation_size("Mobile#"), 1);
    }
}
