//! Error type for access-path construction and validation.

use std::fmt;

use accltl_relational::RelationalError;

/// Errors produced while building schemas with access methods, accesses and
/// access paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// An underlying relational error (unknown relation, arity mismatch, ...).
    Relational(RelationalError),
    /// An access method name was used that is not declared.
    UnknownAccessMethod(String),
    /// An access method was declared twice.
    DuplicateAccessMethod(String),
    /// An input position of an access method is out of range for its relation.
    InputPositionOutOfRange {
        /// The access method.
        method: String,
        /// The offending 1-based position.
        position: usize,
    },
    /// A binding does not match the access method's input positions (wrong
    /// arity or wrong type).
    InvalidBinding {
        /// The access method.
        method: String,
        /// Human-readable description of the mismatch.
        reason: String,
    },
    /// A response tuple is not compatible with the access (wrong relation
    /// arity, or disagrees with the binding on an input position).
    MalformedResponse {
        /// The access method.
        method: String,
        /// Human-readable description of the mismatch.
        reason: String,
    },
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Relational(e) => write!(f, "{e}"),
            PathError::UnknownAccessMethod(name) => {
                write!(f, "unknown access method `{name}`")
            }
            PathError::DuplicateAccessMethod(name) => {
                write!(f, "access method `{name}` declared twice")
            }
            PathError::InputPositionOutOfRange { method, position } => {
                write!(
                    f,
                    "input position {position} out of range for access method `{method}`"
                )
            }
            PathError::InvalidBinding { method, reason } => {
                write!(f, "invalid binding for access method `{method}`: {reason}")
            }
            PathError::MalformedResponse { method, reason } => {
                write!(
                    f,
                    "malformed response for access method `{method}`: {reason}"
                )
            }
        }
    }
}

impl std::error::Error for PathError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PathError::Relational(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationalError> for PathError {
    fn from(e: RelationalError) -> Self {
        PathError::Relational(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = PathError::InvalidBinding {
            method: "AcM1".into(),
            reason: "expected 1 value, got 2".into(),
        };
        assert!(e.to_string().contains("AcM1"));
        assert!(e.to_string().contains("expected 1 value"));
        assert!(PathError::UnknownAccessMethod("X".into())
            .to_string()
            .contains("X"));
    }

    #[test]
    fn relational_errors_convert_and_chain() {
        let e: PathError = RelationalError::UnknownRelation("R".into()).into();
        assert!(e.to_string().contains("R"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
