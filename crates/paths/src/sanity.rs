//! Sanity conditions on access paths: groundedness, idempotence and
//! (S-)exactness (paper, Section 2).

use std::collections::BTreeSet;

use accltl_relational::{Instance, Sym, Value};

use crate::access::AccessSchema;
use crate::path::AccessPath;
use crate::Result;

/// True if the path is *grounded* in `initial`: every value used in a binding
/// occurs either in the initial instance or in the response of an earlier
/// access.
#[must_use]
pub fn is_grounded(path: &AccessPath, initial: &Instance) -> bool {
    let mut known: BTreeSet<Value> = initial.active_domain();
    for (access, response) in path.steps() {
        if !access.binding.values().iter().all(|v| known.contains(v)) {
            return false;
        }
        for tuple in response {
            known.extend(tuple.values().iter().cloned());
        }
    }
    true
}

/// True if the path is *idempotent*: whenever it repeats the same access
/// (method and binding), it obtains the same response.
#[must_use]
pub fn is_idempotent(path: &AccessPath) -> bool {
    let steps = path.steps();
    for (i, (access_i, response_i)) in steps.iter().enumerate() {
        for (access_j, response_j) in &steps[i + 1..] {
            if access_i == access_j && response_i != response_j {
                return false;
            }
        }
    }
    true
}

/// True if the path is *exact* for the access methods in `exact_methods`:
/// there is an instance `I` such that every access whose method is in the set
/// returns exactly the tuples of `I` that agree with its binding.
///
/// Any witnessing instance must contain every tuple returned anywhere along
/// the path (plus the initial instance), so it suffices to check exactness
/// against the minimal candidate `Conf(p, I0)`: if an exact-method access
/// failed to return a matching tuple that some step of the path (or the
/// initial instance) reveals, no larger instance can repair that, and
/// conversely `Conf(p, I0)` itself witnesses exactness when the check passes.
pub fn is_exact_for(
    path: &AccessPath,
    schema: &AccessSchema,
    initial: &Instance,
    exact_methods: &BTreeSet<Sym>,
) -> Result<bool> {
    let final_config = path.configuration(schema, initial)?;
    for (access, response) in path.steps() {
        if !exact_methods.contains(&access.method) {
            continue;
        }
        let expected = schema.exact_response(access, &final_config);
        if *response != expected {
            return Ok(false);
        }
    }
    Ok(true)
}

/// The path-semantics options of a schema: which sanity conditions paths are
/// required to satisfy.  The paper allows mixing: some methods exact, some
/// idempotent, optionally all paths grounded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathSemantics {
    /// Require paths to be grounded in the initial instance.
    pub grounded: bool,
    /// Require paths to be idempotent.
    pub idempotent: bool,
    /// The access methods whose responses must be exact.
    pub exact_methods: BTreeSet<Sym>,
}

impl PathSemantics {
    /// No restrictions: arbitrary well-formed access paths.
    #[must_use]
    pub fn unrestricted() -> Self {
        Self::default()
    }

    /// Grounded paths only.
    #[must_use]
    pub fn grounded_only() -> Self {
        PathSemantics {
            grounded: true,
            ..Self::default()
        }
    }

    /// Collects the exactness/idempotence markers declared on the schema's
    /// access methods.
    #[must_use]
    pub fn from_schema(schema: &AccessSchema) -> Self {
        PathSemantics {
            grounded: false,
            idempotent: schema.methods().any(|m| m.is_idempotent()),
            exact_methods: schema
                .methods()
                .filter(|m| m.is_exact())
                .map(|m| m.name_sym())
                .collect(),
        }
    }

    /// True if the path satisfies every required sanity condition.
    pub fn satisfied_by(
        &self,
        path: &AccessPath,
        schema: &AccessSchema,
        initial: &Instance,
    ) -> Result<bool> {
        if self.grounded && !is_grounded(path, initial) {
            return Ok(false);
        }
        if self.idempotent && !is_idempotent(path) {
            return Ok(false);
        }
        if !self.exact_methods.is_empty()
            && !is_exact_for(path, schema, initial, &self.exact_methods)?
        {
            return Ok(false);
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{phone_directory_access_schema, Access};
    use crate::path::response;
    use accltl_relational::tuple;

    fn smith() -> accltl_relational::Tuple {
        tuple!["Smith", "OX13QD", "Parks Rd", 5551212]
    }

    #[test]
    fn groundedness_requires_known_binding_values() {
        let p = AccessPath::new()
            .with_step(Access::new("AcM1", tuple!["Smith"]), response([smith()]))
            .with_step(
                Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]),
                response([]),
            );
        // "Smith" is not known initially: not grounded over the empty instance.
        assert!(!is_grounded(&p, &Instance::new()));

        // With "Smith" known initially (e.g. from an Address fact), the whole
        // path is grounded because the second access only uses values revealed
        // by the first response.
        let mut initial = Instance::new();
        initial.add_fact("Address", tuple!["High St", "OX26NN", "Smith", 2]);
        assert!(is_grounded(&p, &initial));
    }

    #[test]
    fn groundedness_of_empty_path() {
        assert!(is_grounded(&AccessPath::new(), &Instance::new()));
    }

    #[test]
    fn idempotence_detects_conflicting_repeats() {
        let a = Access::new("AcM1", tuple!["Smith"]);
        let consistent = AccessPath::new()
            .with_step(a.clone(), response([smith()]))
            .with_step(a.clone(), response([smith()]));
        assert!(is_idempotent(&consistent));

        let conflicting = AccessPath::new()
            .with_step(a.clone(), response([smith()]))
            .with_step(a, response([]));
        assert!(!is_idempotent(&conflicting));
    }

    #[test]
    fn exactness_checked_against_final_configuration() {
        let schema = phone_directory_access_schema();
        let exact: BTreeSet<Sym> = BTreeSet::from([Sym::new("AcM1")]);

        // One access to Mobile# returning Smith's tuple: exact (the final
        // configuration has no other matching tuple).
        let ok =
            AccessPath::new().with_step(Access::new("AcM1", tuple!["Smith"]), response([smith()]));
        assert!(is_exact_for(&ok, &schema, &Instance::new(), &exact).unwrap());

        // Two accesses with the same binding where the first returns nothing:
        // not exact, because the final configuration contains a matching tuple
        // the first access failed to return.
        let not_ok = AccessPath::new()
            .with_step(Access::new("AcM1", tuple!["Smith"]), response([]))
            .with_step(Access::new("AcM1", tuple!["Smith"]), response([smith()]));
        assert!(!is_exact_for(&not_ok, &schema, &Instance::new(), &exact).unwrap());

        // The same path is fine if AcM1 is not required to be exact.
        assert!(is_exact_for(&not_ok, &schema, &Instance::new(), &BTreeSet::new()).unwrap());
    }

    #[test]
    fn exactness_accounts_for_initial_instance() {
        let schema = phone_directory_access_schema();
        let exact: BTreeSet<Sym> = BTreeSet::from([Sym::new("AcM1")]);
        let mut initial = Instance::new();
        initial.add_fact("Mobile#", smith());
        // An empty response to AcM1("Smith") cannot be exact when the initial
        // instance already contains a matching tuple.
        let p = AccessPath::new().with_step(Access::new("AcM1", tuple!["Smith"]), response([]));
        assert!(!is_exact_for(&p, &schema, &initial, &exact).unwrap());
    }

    #[test]
    fn path_semantics_combine_conditions() {
        let schema = phone_directory_access_schema();
        let p =
            AccessPath::new().with_step(Access::new("AcM1", tuple!["Smith"]), response([smith()]));

        assert!(PathSemantics::unrestricted()
            .satisfied_by(&p, &schema, &Instance::new())
            .unwrap());
        // Grounded-only rejects it (the binding "Smith" is guessed).
        assert!(!PathSemantics::grounded_only()
            .satisfied_by(&p, &schema, &Instance::new())
            .unwrap());

        let mut with_exact = PathSemantics::unrestricted();
        with_exact.exact_methods.insert(Sym::new("AcM1"));
        assert!(with_exact
            .satisfied_by(&p, &schema, &Instance::new())
            .unwrap());
    }

    #[test]
    fn path_semantics_from_schema_reads_markers() {
        let mut schema = AccessSchema::new(accltl_relational::schema::phone_directory_schema());
        schema
            .add_method(crate::access::AccessMethod::new("AcM1", "Mobile#", vec![0]).exact())
            .unwrap();
        schema
            .add_method(crate::access::AccessMethod::new(
                "AcM2",
                "Address",
                vec![0, 1],
            ))
            .unwrap();
        let semantics = PathSemantics::from_schema(&schema);
        assert!(semantics.exact_methods.contains(&Sym::new("AcM1")));
        assert!(!semantics.exact_methods.contains(&Sym::new("AcM2")));
        assert!(semantics.idempotent);
        assert!(!semantics.grounded);
    }
}
