//! # accltl-paths
//!
//! Access methods, accesses, access paths and the labelled transition system
//! (LTS) of a schema with access restrictions — the substrate over which the
//! paper's specification languages (`accltl-logic`) and automata
//! (`accltl-automata`) are interpreted.
//!
//! Section 2 of *"Querying Schemas With Access Restrictions"* (Benedikt,
//! Bourhis, Ley; VLDB 2012) defines:
//!
//! * an **access method**: a relation plus a set of input positions
//!   ([`access::AccessMethod`]);
//! * an **access**: an access method plus a binding for its input positions
//!   ([`access::Access`]);
//! * a **well-formed response**: any set of tuples of the relation compatible
//!   with the binding ([`path::Response`]);
//! * an **access path**: a sequence of accesses and responses
//!   ([`path::AccessPath`]), with the derived configuration `Conf(p, I0)`;
//! * **sanity conditions** on paths: groundedness, idempotence and
//!   (S-)exactness ([`sanity`]);
//! * the **LTS** of a schema, whose nodes are revealed instances and whose
//!   transitions are accesses (Figure 1) ([`lts`]).
//!
//! On top of the substrate this crate implements two of the paper's
//! motivating static-analysis questions directly (they are also expressible
//! in the logics of `accltl-logic`):
//!
//! * computation of the **maximal answers** of a query under limited access
//!   patterns, via the accessible-part saturation of Li \[15\]
//!   ([`answerability`]);
//! * **long-term relevance** (LTR) of an access to a query, Example 2.3 / \[3\]
//!   ([`relevance`]).
//!
//! [`generator`] provides seeded workload generators used by tests and by the
//! benchmark harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod answerability;
pub mod engine;
pub mod error;
pub mod generator;
pub mod lts;
pub mod path;
pub mod pool;
pub mod relevance;
pub mod rng;
pub mod sanity;

pub use access::{Access, AccessMethod, AccessSchema};
pub use answerability::{accessible_part, maximal_answers, AnswerabilityReport};
pub use engine::{
    BatchEngine, Candidate, EmptyBindingMode, EngineCacheStats, EngineConfig, EngineOutcome,
    EngineReport, FactUniverse, FrontierEngine, PropertySpec, SearchReport, SessionState,
    StepOracle, StepOutcome, DISABLE_SESSION_REUSE_ENV_VAR,
};
pub use error::PathError;
pub use lts::{LtsExplorer, LtsOptions, LtsTree, ResponsePolicy, DISABLE_LTS_OVERLAY_ENV_VAR};
pub use path::{AccessPath, Response, Transition};
pub use relevance::{long_term_relevant, LtrOptions, LtrVerdict};
pub use sanity::{is_exact_for, is_grounded, is_idempotent, PathSemantics};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, PathError>;
