//! Maximal answers of a query under limited access patterns.
//!
//! The paper's introduction recalls the classical result (\[15\], Li 2003) that
//! the maximal answers of a conjunctive query obtainable through grounded,
//! exact accesses can be computed by a Datalog-style saturation that "tries
//! all possible valid accesses" — obtain every tuple reachable from the known
//! values, add the returned values to the known set, and repeat to a
//! fixpoint.  This module implements that saturation (the *accessible part*
//! of the hidden instance) and the derived notions of maximal answers and
//! full answerability, which the `query_planning` example and the
//! `containment_access_patterns` bench build on.

use std::collections::BTreeSet;

use accltl_relational::{ConjunctiveQuery, Instance, Tuple, Value};

use crate::access::{Access, AccessSchema};
use crate::path::AccessPath;
use crate::Result;

/// The result of the accessible-part saturation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnswerabilityReport {
    /// The accessible part of the hidden instance: every fact obtainable by
    /// grounded, exact accesses starting from the initial knowledge.
    pub accessible: Instance,
    /// A grounded, exact access path that reveals the accessible part (the
    /// brute-force plan).
    pub witness_path: AccessPath,
    /// The number of accesses performed by the saturation (including
    /// unproductive ones), the cost measure the paper's relevance analysis is
    /// designed to reduce.
    pub accesses_performed: usize,
    /// The maximal answers of the query over the accessible part.
    pub answers: BTreeSet<Tuple>,
    /// The answers of the query over the full hidden instance.
    pub full_answers: BTreeSet<Tuple>,
}

impl AnswerabilityReport {
    /// True if the accessible answers coincide with the answers over the full
    /// hidden instance — i.e. the access restrictions did not lose anything
    /// for this query on this instance.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.answers == self.full_answers
    }
}

/// Computes the accessible part of `hidden`: the set of facts obtainable by
/// grounded exact accesses starting from the values of `initial` (plus
/// `seed_values`), together with a witnessing access path.
pub fn accessible_part(
    schema: &AccessSchema,
    hidden: &Instance,
    initial: &Instance,
    seed_values: &BTreeSet<Value>,
) -> Result<(Instance, AccessPath, usize)> {
    let mut known_values: BTreeSet<Value> = initial.active_domain();
    known_values.extend(seed_values.iter().cloned());
    let mut revealed = initial.clone();
    let mut path = AccessPath::new();
    let mut accesses_performed = 0usize;
    let mut tried: BTreeSet<Access> = BTreeSet::new();

    loop {
        let mut changed = false;
        for method in schema.methods() {
            let relation = schema.schema().require_relation_id(method.relation_id())?;
            // Enumerate bindings over known values, filtered by column type.
            let per_position: Vec<Vec<Value>> = method
                .input_positions()
                .iter()
                .map(|&p| {
                    let ty = relation.column_types()[p];
                    known_values
                        .iter()
                        .filter(|v| v.data_type() == ty)
                        .copied()
                        .collect()
                })
                .collect();
            let mut bindings: Vec<Vec<Value>> = vec![Vec::new()];
            for values in &per_position {
                let mut next = Vec::new();
                for prefix in &bindings {
                    for v in values {
                        let mut extended = prefix.clone();
                        extended.push(*v);
                        next.push(extended);
                    }
                }
                bindings = next;
            }
            for binding in bindings {
                let access = Access::new(method.name_sym(), Tuple::new(binding));
                if tried.contains(&access) {
                    continue;
                }
                tried.insert(access.clone());
                accesses_performed += 1;
                let response = schema.exact_response(&access, hidden);
                let mut new_facts = false;
                for tuple in &response {
                    if revealed.add_fact(method.relation_id(), tuple.clone()) {
                        new_facts = true;
                        known_values.extend(tuple.values().iter().copied());
                    }
                }
                path.push(access, response);
                if new_facts {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    Ok((revealed, path, accesses_performed))
}

/// Computes the maximal answers of `query` under the schema's access
/// restrictions, starting from the knowledge in `initial`, and compares them
/// with the unrestricted answers over the hidden instance.
pub fn maximal_answers(
    schema: &AccessSchema,
    query: &ConjunctiveQuery,
    hidden: &Instance,
    initial: &Instance,
) -> Result<AnswerabilityReport> {
    // Constants of the query are known to the asker and may be entered into
    // forms, exactly as in the classical accessible-part construction.
    let seed_values: BTreeSet<Value> = query.constants();
    let (accessible, witness_path, accesses_performed) =
        accessible_part(schema, hidden, initial, &seed_values)?;
    let answers = query.evaluate(&accessible);
    let full_answers = query.evaluate(&hidden.union(initial));
    Ok(AnswerabilityReport {
        accessible,
        witness_path,
        accesses_performed,
        answers,
        full_answers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::phone_directory_access_schema;
    use crate::sanity::{is_exact_for, is_grounded};
    use accltl_relational::{atom, cq, tuple};

    fn hidden() -> Instance {
        let mut inst = Instance::new();
        inst.add_fact("Mobile#", tuple!["Smith", "OX13QD", "Parks Rd", 5551212]);
        inst.add_fact("Mobile#", tuple!["Dole", "OX44GG", "High St", 5550001]);
        inst.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Smith", 13]);
        inst.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Jones", 16]);
        inst.add_fact("Address", tuple!["High St", "OX44GG", "Dole", 2]);
        inst
    }

    #[test]
    fn paper_example_query_is_not_answerable_from_nothing() {
        // Address(X, Y, "Jones", Z): asking for Jones's address is not
        // answerable with AcM1/AcM2 starting from no known values, because
        // Jones has no Mobile# entry to bootstrap from (paper, introduction).
        let schema = phone_directory_access_schema();
        let q = cq!([x, y, z] <- atom!("Address"; x, y, @"Jones", z));
        let report = maximal_answers(&schema, &q, &hidden(), &Instance::new()).unwrap();
        assert!(report.answers.is_empty());
        assert!(!report.full_answers.is_empty());
        assert!(!report.is_complete());
    }

    #[test]
    fn seeding_with_a_known_name_makes_the_chain_accessible() {
        // Knowing the name "Smith" (a constant of the query) lets the
        // saturation enter it into AcM1, discover Parks Rd / OX13QD, enter
        // those into AcM2 and reveal both address tuples — including Jones's.
        let schema = phone_directory_access_schema();
        let q = cq!([s, p, h] <-
            atom!("Mobile#"; @"Smith", p0, s0, ph),
            atom!("Address"; s, p, @"Smith", h));
        let report = maximal_answers(&schema, &q, &hidden(), &Instance::new()).unwrap();
        assert!(report.is_complete());
        assert_eq!(report.answers.len(), 1);
        assert!(report
            .accessible
            .contains("Address", &tuple!["Parks Rd", "OX13QD", "Jones", 16]));
        // But the inaccessible branch (Dole / High St) stays hidden.
        assert!(!report
            .accessible
            .contains("Mobile#", &tuple!["Dole", "OX44GG", "High St", 5550001]));
    }

    #[test]
    fn witness_path_is_grounded_and_exact() {
        let schema = phone_directory_access_schema();
        let q =
            cq!([s, p, h] <- atom!("Mobile#"; @"Smith", p, s, ph), atom!("Address"; s, p, n, h));
        let report = maximal_answers(&schema, &q, &hidden(), &Instance::new()).unwrap();
        let mut initial_with_seed = Instance::new();
        // Groundedness is relative to the query constants being known; model
        // that by seeding a dummy fact carrying the constant.
        initial_with_seed.add_fact("Address", tuple!["seed", "seed", "Smith", 0]);
        assert!(is_grounded(&report.witness_path, &initial_with_seed));
        let all_methods: BTreeSet<_> = schema.methods().map(|m| m.name_sym()).collect();
        assert!(is_exact_for(
            &report.witness_path,
            &schema,
            &Instance::new(),
            &all_methods
        )
        .unwrap());
    }

    #[test]
    fn initial_knowledge_extends_the_accessible_part() {
        let schema = phone_directory_access_schema();
        // Start already knowing Dole's address entry: its values bootstrap the
        // other branch of the hidden instance.
        let mut initial = Instance::new();
        initial.add_fact("Address", tuple!["High St", "OX44GG", "Dole", 2]);
        let q = cq!([n] <- atom!("Mobile#"; n, p, s, ph));
        let report = maximal_answers(&schema, &q, &hidden(), &initial).unwrap();
        assert!(report.answers.contains(&tuple!["Dole"]));
        // Smith's branch remains unreachable (no shared values).
        assert!(!report.answers.contains(&tuple!["Smith"]));
    }

    #[test]
    fn accesses_performed_counts_unproductive_accesses_too() {
        let schema = phone_directory_access_schema();
        let q = cq!([x, y, z] <- atom!("Address"; x, y, @"Jones", z));
        let report = maximal_answers(&schema, &q, &hidden(), &Instance::new()).unwrap();
        // "Jones" is entered into AcM1 even though it reveals nothing.
        assert!(report.accesses_performed >= 1);
        assert_eq!(report.witness_path.len(), report.accesses_performed);
    }

    #[test]
    fn empty_schema_has_empty_accessible_part() {
        let schema = AccessSchema::new(accltl_relational::schema::phone_directory_schema());
        let (accessible, path, count) =
            accessible_part(&schema, &hidden(), &Instance::new(), &BTreeSet::new()).unwrap();
        assert!(accessible.is_empty());
        assert!(path.is_empty());
        assert_eq!(count, 0);
    }
}
