//! The labelled transition system (LTS) of a schema with access restrictions.
//!
//! With any schema and initial instance the paper associates an LTS whose
//! nodes are instances (the information revealed so far), whose labels are
//! accesses, and whose transitions add a well-formed response to the accessed
//! relation.  Figure 1 shows a fragment of this (infinite) tree for the
//! phone-directory schema; [`LtsExplorer`] materialises a bounded fragment of
//! it, which is what the `fig1_lts_tree` benchmark and the `lts_explorer`
//! example regenerate.
//!
//! # Overlay-backed exploration
//!
//! Configurations only ever *grow* along an access path, so each node of the
//! tree is stored as an [`InstanceOverlay`]: an [`Arc`]-shared base (the
//! initial instance) plus the facts revealed on the path to the node.
//! Creating a child then costs `O(|response| + |delta|)` instead of
//! `O(|Conf|)`, and — since every revealed fact comes out of the hidden
//! instance — the binding domain per access method can be computed **once**
//! per exploration rather than once per node.  The pre-overlay path, which
//! materialises a full `Instance` per node and recomputes domains from it,
//! is kept behind [`LtsOptions::use_overlays`] /
//! [`DISABLE_LTS_OVERLAY_ENV_VAR`] and produces a byte-identical tree
//! (nodes, labels, iteration and `Display` order) — property-tested in
//! `tests/lts_overlay_props.rs` and CI-enforced by diffing the
//! `lts_explorer` example both ways.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use accltl_obs::{metrics, trace};
use accltl_relational::{DataType, Instance, InstanceOverlay, Tuple, Value};

use crate::access::{Access, AccessSchema};
use crate::path::Response;
use crate::Result;

/// Environment variable disabling overlay-backed LTS exploration when set to
/// `1`: [`LtsOptions::from_env`] (and therefore `LtsOptions::default()`)
/// falls back to materialising a full instance per node, which produces a
/// byte-identical tree (CI diffs the `lts_explorer` example both ways).
///
/// The variable is *read* in exactly one place, [`LtsOptions::from_env`];
/// this module only defines the name.
pub const DISABLE_LTS_OVERLAY_ENV_VAR: &str = "ACCLTL_DISABLE_LTS_OVERLAY";

/// How responses are enumerated when expanding a node of the LTS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponsePolicy {
    /// Only the exact response from the hidden instance (the access returns
    /// precisely the matching tuples).  This models exact access methods.
    ExactFromHidden,
    /// Every subset of the matching tuples of the hidden instance with at most
    /// the given number of tuples.  This models sound-but-incomplete sources
    /// and produces the branching of Figure 1.
    SubsetsOfHidden {
        /// Maximum number of tuples in a response.
        max_response_size: usize,
    },
}

/// Options bounding the LTS exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LtsOptions {
    /// Maximum path depth (number of accesses from the root).
    pub max_depth: usize,
    /// Only expand accesses whose binding values are already known (grounded
    /// accesses).
    pub grounded_only: bool,
    /// How responses are enumerated.
    pub response_policy: ResponsePolicy,
    /// Cap on the number of bindings enumerated per access method per node.
    pub max_bindings_per_method: usize,
    /// Cap on the total number of nodes in the materialised tree.
    pub max_nodes: usize,
    /// Whether nodes are built as copy-on-write overlays over the shared
    /// initial instance (the default), or materialised as full instances.
    /// The tree is byte-identical either way; this is purely a performance
    /// switch.
    pub use_overlays: bool,
}

impl LtsOptions {
    /// The environment-independent baseline options.
    #[must_use]
    pub fn base() -> Self {
        LtsOptions {
            max_depth: 3,
            grounded_only: false,
            response_policy: ResponsePolicy::ExactFromHidden,
            max_bindings_per_method: 32,
            max_nodes: 10_000,
            use_overlays: true,
        }
    }

    /// The baseline with [`DISABLE_LTS_OVERLAY_ENV_VAR`] applied — the single
    /// place that variable is read.
    #[must_use]
    pub fn from_env() -> Self {
        let disabled = std::env::var(DISABLE_LTS_OVERLAY_ENV_VAR)
            .map(|v| v == "1")
            .unwrap_or(false);
        LtsOptions {
            use_overlays: !disabled,
            ..LtsOptions::base()
        }
    }
}

impl Default for LtsOptions {
    fn default() -> Self {
        LtsOptions::from_env()
    }
}

/// A node of the materialised LTS tree.
///
/// The node's configuration (the information revealed so far) is held as an
/// [`InstanceOverlay`] — under the default overlay-backed exploration all
/// nodes share the initial instance as their base and own only their path's
/// delta.  Equality is configuration equality (same facts, depth and edges),
/// independent of how the facts are split between base and delta.
#[derive(Debug, Clone)]
pub struct LtsNode {
    /// The configuration (revealed information) at this node.
    conf: InstanceOverlay,
    /// Distance from the root in accesses.
    pub depth: usize,
    /// Outgoing edges: the access, its response, and the index of the child
    /// node in [`LtsTree::nodes`].
    pub edges: Vec<(Access, Response, usize)>,
}

impl LtsNode {
    /// The configuration at this node, as a copy-on-write overlay.
    #[must_use]
    pub fn configuration(&self) -> &InstanceOverlay {
        &self.conf
    }

    /// The configuration materialised into a standalone [`Instance`].
    #[must_use]
    pub fn instance(&self) -> Instance {
        self.conf.materialize()
    }

    /// The number of facts known at this node.
    #[must_use]
    pub fn fact_count(&self) -> usize {
        self.conf.fact_count()
    }
}

impl PartialEq for LtsNode {
    fn eq(&self, other: &Self) -> bool {
        self.depth == other.depth
            && self.edges == other.edges
            && self.conf.fact_count() == other.conf.fact_count()
            && self.conf.facts().eq(other.conf.facts())
    }
}

impl Eq for LtsNode {}

/// A bounded fragment of the LTS, materialised as a tree rooted at the initial
/// instance (Figure 1 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LtsTree {
    /// The nodes, in creation (BFS) order; index 0 is the root.
    pub nodes: Vec<LtsNode>,
    /// True if a bound (depth, node or binding cap) truncated the exploration.
    pub truncated: bool,
}

impl LtsTree {
    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges (transitions).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.nodes.iter().map(|n| n.edges.len()).sum()
    }

    /// Number of nodes at each depth, from the root downwards.
    #[must_use]
    pub fn nodes_per_depth(&self) -> Vec<usize> {
        let max_depth = self.nodes.iter().map(|n| n.depth).max().unwrap_or(0);
        let mut counts = vec![0usize; max_depth + 1];
        for node in &self.nodes {
            counts[node.depth] += 1;
        }
        counts
    }

    /// Renders the tree fragment as indented text (the textual analogue of
    /// Figure 1), limited to the given number of lines.
    #[must_use]
    pub fn render(&self, max_lines: usize) -> String {
        let mut out = String::new();
        let mut lines = 0usize;
        self.render_node(0, 0, &mut out, &mut lines, max_lines);
        if lines >= max_lines {
            out.push_str("  …\n");
        }
        out
    }

    fn render_node(
        &self,
        index: usize,
        indent: usize,
        out: &mut String,
        lines: &mut usize,
        max_lines: usize,
    ) {
        if *lines >= max_lines {
            return;
        }
        let node = &self.nodes[index];
        out.push_str(&"  ".repeat(indent));
        out.push_str(&format!(
            "[depth {}] known facts: {}\n",
            node.depth,
            node.fact_count()
        ));
        *lines += 1;
        for (access, response, child) in &node.edges {
            if *lines >= max_lines {
                return;
            }
            out.push_str(&"  ".repeat(indent + 1));
            out.push_str(&format!("--{access} / {} tuple(s)-->\n", response.len()));
            *lines += 1;
            self.render_node(*child, indent + 2, out, lines, max_lines);
        }
    }
}

impl fmt::Display for LtsTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(200))
    }
}

/// Sorted candidate values per column type, used to enumerate bindings.
type DomainByType = BTreeMap<DataType, Vec<Value>>;

fn domain_by_type(domain: &BTreeSet<Value>) -> DomainByType {
    let mut by_type: DomainByType = BTreeMap::new();
    for value in domain {
        by_type.entry(value.data_type()).or_default().push(*value);
    }
    by_type
}

/// Merges two sorted, deduplicated value lists into one (deduplicating).
fn merge_sorted(a: &[Value], b: &[Value]) -> Vec<Value> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Bounded explorer of the LTS of a schema with access restrictions.
///
/// The LTS itself is infinite (every access has infinitely many well-formed
/// responses); the explorer bounds it by drawing responses from a *hidden
/// instance* (the actual content of the data source) and bindings from a
/// finite value domain, exactly the way Figure 1 is drawn in the paper.
///
/// Under the default overlay-backed mode ([`LtsOptions::use_overlays`])
/// every node shares the initial instance behind an [`Arc`] and owns only
/// its path's revealed facts, and the binding domains are hoisted out of the
/// per-node loop (every response tuple comes from the hidden instance, so
/// the non-grounded domain `adom(Conf) ∪ adom(hidden)` is constant across
/// the tree).  The materialising mode recomputes both per node; the trees
/// are identical.
#[derive(Debug, Clone)]
pub struct LtsExplorer<'a> {
    schema: &'a AccessSchema,
    hidden: &'a Instance,
    options: LtsOptions,
}

impl<'a> LtsExplorer<'a> {
    /// Creates an explorer for the schema with the given hidden instance.
    #[must_use]
    pub fn new(schema: &'a AccessSchema, hidden: &'a Instance, options: LtsOptions) -> Self {
        LtsExplorer {
            schema,
            hidden,
            options,
        }
    }

    /// Explores the LTS from the given initial instance, producing a bounded
    /// tree fragment.
    pub fn explore(&self, initial: &Instance) -> Result<LtsTree> {
        let _explore_span = trace::span_fields(
            "lts.explore",
            &[("overlays", u64::from(self.options.use_overlays))],
        );
        // Hoisted binding domain (overlay mode): every response tuple is
        // drawn from the hidden instance, so values revealed along any path
        // are a subset of `adom(initial) ∪ adom(hidden)`.  Non-grounded
        // exploration therefore sees one constant domain; grounded
        // exploration merges each node's (small) delta domain on top of the
        // initial instance's.
        let static_domain = if self.options.use_overlays {
            let mut domain = initial.active_domain();
            if !self.options.grounded_only {
                domain.extend(self.hidden.active_domain());
            }
            Some(domain_by_type(&domain))
        } else {
            None
        };

        let mut nodes = vec![LtsNode {
            conf: InstanceOverlay::new(Arc::new(initial.clone())),
            depth: 0,
            edges: Vec::new(),
        }];
        let mut truncated = false;
        let mut frontier = vec![0usize];

        while let Some(index) = frontier.pop() {
            let (depth, conf) = {
                let node = &nodes[index];
                (node.depth, node.conf.clone())
            };
            if depth >= self.options.max_depth {
                continue;
            }
            // Grounded overlay exploration: the node's domain beyond the
            // initial instance is exactly its delta's.
            let delta_domain = match &static_domain {
                Some(_) if self.options.grounded_only => {
                    Some(domain_by_type(&conf.delta().active_domain()))
                }
                _ => None,
            };
            let mut edges = Vec::new();
            for method in self.schema.methods() {
                let bindings = match &static_domain {
                    Some(by_type) => {
                        self.candidate_bindings_hoisted(method, by_type, delta_domain.as_ref())?
                    }
                    None => self.candidate_bindings_scanned(method, &conf)?,
                };
                if bindings.len() >= self.options.max_bindings_per_method {
                    truncated = true;
                }
                for binding in bindings {
                    let access = Access::new(method.name_sym(), binding);
                    for response in self.candidate_responses(&access) {
                        if nodes.len() + edges.len() >= self.options.max_nodes {
                            truncated = true;
                            break;
                        }
                        let successor = if self.options.use_overlays {
                            let mut successor = conf.clone();
                            for tuple in &response {
                                successor.push_fact(method.relation_id(), tuple.clone());
                            }
                            successor
                        } else {
                            let mut instance = conf.materialize();
                            for tuple in &response {
                                instance.add_fact(method.relation_id(), tuple.clone());
                            }
                            InstanceOverlay::from(instance)
                        };
                        edges.push((access.clone(), response, successor));
                    }
                }
            }
            for (access, response, successor) in edges {
                let child_index = nodes.len();
                nodes.push(LtsNode {
                    conf: successor,
                    depth: depth + 1,
                    edges: Vec::new(),
                });
                nodes[index].edges.push((access, response, child_index));
                frontier.push(child_index);
            }
            if nodes.len() >= self.options.max_nodes {
                truncated = true;
                break;
            }
        }

        let tree = LtsTree { nodes, truncated };
        metrics::add("lts.explorations", 1);
        metrics::add("lts.nodes", tree.nodes.len() as u64);
        metrics::add("lts.edges", tree.edge_count() as u64);
        if trace::tracing() {
            // One record per BFS layer: the exploration's depth profile.
            for (depth, count) in tree.nodes_per_depth().iter().enumerate() {
                trace::event(
                    "lts.layer",
                    &[("depth", depth as u64), ("nodes", *count as u64)],
                );
            }
            trace::event(
                "lts.report",
                &[
                    ("nodes", tree.nodes.len() as u64),
                    ("edges", tree.edge_count() as u64),
                    ("truncated", u64::from(tree.truncated)),
                ],
            );
        }
        Ok(tree)
    }

    /// Binding enumeration against the hoisted domain (overlay mode): the
    /// per-type value lists were computed once for the whole exploration;
    /// grounded exploration merges the node's delta domain on top.
    fn candidate_bindings_hoisted(
        &self,
        method: &crate::access::AccessMethod,
        by_type: &DomainByType,
        delta: Option<&DomainByType>,
    ) -> Result<Vec<Tuple>> {
        static EMPTY: Vec<Value> = Vec::new();
        let relation = self
            .schema
            .schema()
            .require_relation_id(method.relation_id())?;
        let per_position: Vec<Vec<Value>> = method
            .input_positions()
            .iter()
            .map(|&p| {
                let ty = relation.column_types()[p];
                let base = by_type.get(&ty).unwrap_or(&EMPTY);
                match delta.and_then(|d| d.get(&ty)) {
                    Some(extra) => merge_sorted(base, extra),
                    None => base.clone(),
                }
            })
            .collect();
        Ok(self.capped_binding_product(&per_position))
    }

    /// Binding enumeration recomputed from the node's configuration
    /// (materialising mode): values are drawn from the active domain of the
    /// configuration plus (unless `grounded_only`) the active domain of the
    /// hidden instance.
    fn candidate_bindings_scanned(
        &self,
        method: &crate::access::AccessMethod,
        current: &InstanceOverlay,
    ) -> Result<Vec<Tuple>> {
        let relation = self
            .schema
            .schema()
            .require_relation_id(method.relation_id())?;
        let mut domain: BTreeSet<Value> = current.active_domain();
        if !self.options.grounded_only {
            domain.extend(self.hidden.active_domain());
        }
        let per_position: Vec<Vec<Value>> = method
            .input_positions()
            .iter()
            .map(|&p| {
                let ty = relation.column_types()[p];
                domain
                    .iter()
                    .filter(|v| v.data_type() == ty)
                    .copied()
                    .collect()
            })
            .collect();
        Ok(self.capped_binding_product(&per_position))
    }

    /// Cartesian product of the per-position candidate lists, capped at
    /// `max_bindings_per_method` (with the historical over-enumeration
    /// buffer of 4× during construction, preserved so both binding
    /// enumeration paths truncate identically).
    fn capped_binding_product(&self, per_position: &[Vec<Value>]) -> Vec<Tuple> {
        let mut bindings: Vec<Vec<Value>> = vec![Vec::new()];
        for values in per_position {
            let mut next = Vec::new();
            for prefix in &bindings {
                for v in values {
                    if next.len() + bindings.len() > self.options.max_bindings_per_method * 4 {
                        break;
                    }
                    let mut extended = prefix.clone();
                    extended.push(*v);
                    next.push(extended);
                }
            }
            bindings = next;
        }
        bindings.truncate(self.options.max_bindings_per_method);
        bindings.into_iter().map(Tuple::new).collect()
    }

    /// Enumerates candidate responses for an access according to the response
    /// policy.
    fn candidate_responses(&self, access: &Access) -> Vec<Response> {
        let matching: Vec<Tuple> = self
            .schema
            .exact_response(access, self.hidden)
            .into_iter()
            .collect();
        match self.options.response_policy {
            ResponsePolicy::ExactFromHidden => {
                vec![matching.into_iter().collect()]
            }
            ResponsePolicy::SubsetsOfHidden { max_response_size } => {
                // Enumerate all subsets of the matching tuples up to the size
                // cap (including the empty response).
                let n = matching.len().min(16);
                let mut responses = Vec::new();
                for mask in 0u32..(1 << n) {
                    if (mask.count_ones() as usize) > max_response_size {
                        continue;
                    }
                    let subset: Response = (0..n)
                        .filter(|i| mask & (1 << i) != 0)
                        .map(|i| matching[i].clone())
                        .collect();
                    responses.push(subset);
                }
                responses
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::phone_directory_access_schema;
    use accltl_relational::tuple;

    fn hidden() -> Instance {
        let mut inst = Instance::new();
        inst.add_fact("Mobile#", tuple!["Smith", "OX13QD", "Parks Rd", 5551212]);
        inst.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Smith", 13]);
        inst.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Jones", 16]);
        inst
    }

    #[test]
    fn exact_exploration_reveals_the_hidden_instance() {
        let schema = phone_directory_access_schema();
        let hidden = hidden();
        let explorer = LtsExplorer::new(
            &schema,
            &hidden,
            LtsOptions {
                max_depth: 2,
                max_bindings_per_method: 64,
                ..LtsOptions::base()
            },
        );
        let tree = explorer.explore(&Instance::new()).unwrap();
        assert!(tree.node_count() > 1);
        assert_eq!(tree.node_count(), tree.edge_count() + 1);
        // Some depth-2 node knows all three hidden facts (access Smith's
        // mobile entry, then the Parks Rd / OX13QD address form).
        assert!(tree
            .nodes
            .iter()
            .any(|n| n.depth == 2 && n.fact_count() == 3));
    }

    #[test]
    fn grounded_exploration_starts_empty_handed() {
        let schema = phone_directory_access_schema();
        let hidden = hidden();
        let explorer = LtsExplorer::new(
            &schema,
            &hidden,
            LtsOptions {
                grounded_only: true,
                max_depth: 2,
                ..LtsOptions::base()
            },
        );
        // With an empty initial instance there are no known values, so no
        // grounded access can be made at all: the tree is just the root.
        let tree = explorer.explore(&Instance::new()).unwrap();
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.edge_count(), 0);

        // Seeding the initial instance with an Address fact provides values to
        // enter into the forms, so the tree grows.
        let mut initial = Instance::new();
        initial.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Smith", 13]);
        let tree = explorer.explore(&initial).unwrap();
        assert!(tree.node_count() > 1);
    }

    #[test]
    fn subset_responses_branch_like_figure1() {
        let schema = phone_directory_access_schema();
        let hidden = hidden();
        let explorer = LtsExplorer::new(
            &schema,
            &hidden,
            LtsOptions {
                max_depth: 1,
                response_policy: ResponsePolicy::SubsetsOfHidden {
                    max_response_size: 2,
                },
                max_bindings_per_method: 8,
                ..LtsOptions::base()
            },
        );
        let tree = explorer.explore(&Instance::new()).unwrap();
        // For the access AcM2("Parks Rd","OX13QD") there are two matching
        // address tuples, so subsets {}, {t1}, {t2}, {t1,t2} all appear: the
        // tree branches more than under the exact policy.
        let exact_tree = LtsExplorer::new(
            &schema,
            &hidden,
            LtsOptions {
                max_depth: 1,
                max_bindings_per_method: 8,
                ..LtsOptions::base()
            },
        )
        .explore(&Instance::new())
        .unwrap();
        assert!(tree.edge_count() > exact_tree.edge_count());
    }

    #[test]
    fn node_budget_truncates_exploration() {
        let schema = phone_directory_access_schema();
        let hidden = hidden();
        let explorer = LtsExplorer::new(
            &schema,
            &hidden,
            LtsOptions {
                max_depth: 4,
                max_nodes: 10,
                max_bindings_per_method: 64,
                ..LtsOptions::base()
            },
        );
        let tree = explorer.explore(&Instance::new()).unwrap();
        assert!(tree.truncated);
        assert!(tree.node_count() <= 11);
    }

    #[test]
    fn nodes_per_depth_and_render() {
        let schema = phone_directory_access_schema();
        let hidden = hidden();
        let explorer = LtsExplorer::new(&schema, &hidden, LtsOptions::base());
        let tree = explorer.explore(&Instance::new()).unwrap();
        let per_depth = tree.nodes_per_depth();
        assert_eq!(per_depth[0], 1);
        assert_eq!(per_depth.iter().sum::<usize>(), tree.node_count());
        let rendering = tree.render(40);
        assert!(rendering.contains("known facts"));
        assert!(rendering.contains("AcM"));
    }

    #[test]
    fn overlay_and_materialized_exploration_agree() {
        let schema = phone_directory_access_schema();
        let hidden = hidden();
        let mut initial = Instance::new();
        initial.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Smith", 13]);
        for options in [
            LtsOptions {
                max_depth: 2,
                max_bindings_per_method: 16,
                ..LtsOptions::base()
            },
            LtsOptions {
                max_depth: 1,
                response_policy: ResponsePolicy::SubsetsOfHidden {
                    max_response_size: 2,
                },
                max_bindings_per_method: 8,
                ..LtsOptions::base()
            },
            LtsOptions {
                grounded_only: true,
                max_depth: 2,
                ..LtsOptions::base()
            },
        ] {
            let overlay_tree = LtsExplorer::new(&schema, &hidden, options.clone())
                .explore(&initial)
                .unwrap();
            let materialized_tree = LtsExplorer::new(
                &schema,
                &hidden,
                LtsOptions {
                    use_overlays: false,
                    ..options
                },
            )
            .explore(&initial)
            .unwrap();
            assert_eq!(overlay_tree, materialized_tree);
            assert_eq!(
                overlay_tree.render(500),
                materialized_tree.render(500),
                "render order must be identical"
            );
        }
    }

    #[test]
    fn overlay_nodes_share_the_initial_base() {
        let schema = phone_directory_access_schema();
        let hidden = hidden();
        let explorer = LtsExplorer::new(
            &schema,
            &hidden,
            LtsOptions {
                max_depth: 2,
                max_bindings_per_method: 16,
                ..LtsOptions::base()
            },
        );
        let tree = explorer.explore(&Instance::new()).unwrap();
        let root_base = Arc::clone(tree.nodes[0].configuration().base());
        assert!(tree
            .nodes
            .iter()
            .all(|n| Arc::ptr_eq(n.configuration().base(), &root_base)));
    }

    #[test]
    fn overlays_are_the_baseline_and_env_name_is_stable() {
        assert!(LtsOptions::base().use_overlays);
        assert_eq!(DISABLE_LTS_OVERLAY_ENV_VAR, "ACCLTL_DISABLE_LTS_OVERLAY");
    }
}
