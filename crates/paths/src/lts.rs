//! The labelled transition system (LTS) of a schema with access restrictions.
//!
//! With any schema and initial instance the paper associates an LTS whose
//! nodes are instances (the information revealed so far), whose labels are
//! accesses, and whose transitions add a well-formed response to the accessed
//! relation.  Figure 1 shows a fragment of this (infinite) tree for the
//! phone-directory schema; [`LtsExplorer`] materialises a bounded fragment of
//! it, which is what the `fig1_lts_tree` benchmark and the `lts_explorer`
//! example regenerate.

use std::collections::BTreeSet;
use std::fmt;

use accltl_relational::{Instance, Tuple, Value};

use crate::access::{Access, AccessSchema};
use crate::path::Response;
use crate::Result;

/// How responses are enumerated when expanding a node of the LTS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponsePolicy {
    /// Only the exact response from the hidden instance (the access returns
    /// precisely the matching tuples).  This models exact access methods.
    ExactFromHidden,
    /// Every subset of the matching tuples of the hidden instance with at most
    /// the given number of tuples.  This models sound-but-incomplete sources
    /// and produces the branching of Figure 1.
    SubsetsOfHidden {
        /// Maximum number of tuples in a response.
        max_response_size: usize,
    },
}

/// Options bounding the LTS exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LtsOptions {
    /// Maximum path depth (number of accesses from the root).
    pub max_depth: usize,
    /// Only expand accesses whose binding values are already known (grounded
    /// accesses).
    pub grounded_only: bool,
    /// How responses are enumerated.
    pub response_policy: ResponsePolicy,
    /// Cap on the number of bindings enumerated per access method per node.
    pub max_bindings_per_method: usize,
    /// Cap on the total number of nodes in the materialised tree.
    pub max_nodes: usize,
}

impl Default for LtsOptions {
    fn default() -> Self {
        LtsOptions {
            max_depth: 3,
            grounded_only: false,
            response_policy: ResponsePolicy::ExactFromHidden,
            max_bindings_per_method: 32,
            max_nodes: 10_000,
        }
    }
}

/// A node of the materialised LTS tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LtsNode {
    /// The instance (revealed information) at this node.
    pub instance: Instance,
    /// Distance from the root in accesses.
    pub depth: usize,
    /// Outgoing edges: the access, its response, and the index of the child
    /// node in [`LtsTree::nodes`].
    pub edges: Vec<(Access, Response, usize)>,
}

/// A bounded fragment of the LTS, materialised as a tree rooted at the initial
/// instance (Figure 1 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LtsTree {
    /// The nodes, in creation (BFS) order; index 0 is the root.
    pub nodes: Vec<LtsNode>,
    /// True if a bound (depth, node or binding cap) truncated the exploration.
    pub truncated: bool,
}

impl LtsTree {
    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges (transitions).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.nodes.iter().map(|n| n.edges.len()).sum()
    }

    /// Number of nodes at each depth, from the root downwards.
    #[must_use]
    pub fn nodes_per_depth(&self) -> Vec<usize> {
        let max_depth = self.nodes.iter().map(|n| n.depth).max().unwrap_or(0);
        let mut counts = vec![0usize; max_depth + 1];
        for node in &self.nodes {
            counts[node.depth] += 1;
        }
        counts
    }

    /// Renders the tree fragment as indented text (the textual analogue of
    /// Figure 1), limited to the given number of lines.
    #[must_use]
    pub fn render(&self, max_lines: usize) -> String {
        let mut out = String::new();
        let mut lines = 0usize;
        self.render_node(0, 0, &mut out, &mut lines, max_lines);
        if lines >= max_lines {
            out.push_str("  …\n");
        }
        out
    }

    fn render_node(
        &self,
        index: usize,
        indent: usize,
        out: &mut String,
        lines: &mut usize,
        max_lines: usize,
    ) {
        if *lines >= max_lines {
            return;
        }
        let node = &self.nodes[index];
        out.push_str(&"  ".repeat(indent));
        out.push_str(&format!(
            "[depth {}] known facts: {}\n",
            node.depth,
            node.instance.fact_count()
        ));
        *lines += 1;
        for (access, response, child) in &node.edges {
            if *lines >= max_lines {
                return;
            }
            out.push_str(&"  ".repeat(indent + 1));
            out.push_str(&format!("--{access} / {} tuple(s)-->\n", response.len()));
            *lines += 1;
            self.render_node(*child, indent + 2, out, lines, max_lines);
        }
    }
}

impl fmt::Display for LtsTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(200))
    }
}

/// Bounded explorer of the LTS of a schema with access restrictions.
///
/// The LTS itself is infinite (every access has infinitely many well-formed
/// responses); the explorer bounds it by drawing responses from a *hidden
/// instance* (the actual content of the data source) and bindings from a
/// finite value domain, exactly the way Figure 1 is drawn in the paper.
#[derive(Debug, Clone)]
pub struct LtsExplorer<'a> {
    schema: &'a AccessSchema,
    hidden: &'a Instance,
    options: LtsOptions,
}

impl<'a> LtsExplorer<'a> {
    /// Creates an explorer for the schema with the given hidden instance.
    #[must_use]
    pub fn new(schema: &'a AccessSchema, hidden: &'a Instance, options: LtsOptions) -> Self {
        LtsExplorer {
            schema,
            hidden,
            options,
        }
    }

    /// Explores the LTS from the given initial instance, producing a bounded
    /// tree fragment.
    pub fn explore(&self, initial: &Instance) -> Result<LtsTree> {
        let mut nodes = vec![LtsNode {
            instance: initial.clone(),
            depth: 0,
            edges: Vec::new(),
        }];
        let mut truncated = false;
        let mut frontier = vec![0usize];

        while let Some(index) = frontier.pop() {
            let (depth, instance) = {
                let node = &nodes[index];
                (node.depth, node.instance.clone())
            };
            if depth >= self.options.max_depth {
                continue;
            }
            let mut edges = Vec::new();
            for method in self.schema.methods() {
                let bindings = self.candidate_bindings(method, &instance)?;
                if bindings.len() >= self.options.max_bindings_per_method {
                    truncated = true;
                }
                for binding in bindings {
                    let access = Access::new(method.name_sym(), binding);
                    for response in self.candidate_responses(&access) {
                        if nodes.len() + edges.len() >= self.options.max_nodes {
                            truncated = true;
                            break;
                        }
                        let mut successor = instance.clone();
                        for tuple in &response {
                            successor.add_fact(method.relation_id(), tuple.clone());
                        }
                        edges.push((access.clone(), response, successor));
                    }
                }
            }
            for (access, response, successor) in edges {
                let child_index = nodes.len();
                nodes.push(LtsNode {
                    instance: successor,
                    depth: depth + 1,
                    edges: Vec::new(),
                });
                nodes[index].edges.push((access, response, child_index));
                frontier.push(child_index);
            }
            if nodes.len() >= self.options.max_nodes {
                truncated = true;
                break;
            }
        }

        Ok(LtsTree { nodes, truncated })
    }

    /// Enumerates candidate bindings for an access method at a node.
    ///
    /// Values are drawn from the active domain of the current instance plus
    /// (unless `grounded_only`) the active domain of the hidden instance, and
    /// filtered by the declared column type of each input position.
    fn candidate_bindings(
        &self,
        method: &crate::access::AccessMethod,
        current: &Instance,
    ) -> Result<Vec<Tuple>> {
        let relation = self
            .schema
            .schema()
            .require_relation_id(method.relation_id())?;
        let mut domain: BTreeSet<Value> = current.active_domain();
        if !self.options.grounded_only {
            domain.extend(self.hidden.active_domain());
        }
        let per_position: Vec<Vec<Value>> = method
            .input_positions()
            .iter()
            .map(|&p| {
                let ty = relation.column_types()[p];
                domain
                    .iter()
                    .filter(|v| v.data_type() == ty)
                    .copied()
                    .collect()
            })
            .collect();
        // Cartesian product, capped.
        let mut bindings: Vec<Vec<Value>> = vec![Vec::new()];
        for values in &per_position {
            let mut next = Vec::new();
            for prefix in &bindings {
                for v in values {
                    if next.len() + bindings.len() > self.options.max_bindings_per_method * 4 {
                        break;
                    }
                    let mut extended = prefix.clone();
                    extended.push(*v);
                    next.push(extended);
                }
            }
            bindings = next;
        }
        bindings.truncate(self.options.max_bindings_per_method);
        Ok(bindings.into_iter().map(Tuple::new).collect())
    }

    /// Enumerates candidate responses for an access according to the response
    /// policy.
    fn candidate_responses(&self, access: &Access) -> Vec<Response> {
        let matching: Vec<Tuple> = self
            .schema
            .exact_response(access, self.hidden)
            .into_iter()
            .collect();
        match self.options.response_policy {
            ResponsePolicy::ExactFromHidden => {
                vec![matching.into_iter().collect()]
            }
            ResponsePolicy::SubsetsOfHidden { max_response_size } => {
                // Enumerate all subsets of the matching tuples up to the size
                // cap (including the empty response).
                let n = matching.len().min(16);
                let mut responses = Vec::new();
                for mask in 0u32..(1 << n) {
                    if (mask.count_ones() as usize) > max_response_size {
                        continue;
                    }
                    let subset: Response = (0..n)
                        .filter(|i| mask & (1 << i) != 0)
                        .map(|i| matching[i].clone())
                        .collect();
                    responses.push(subset);
                }
                responses
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::phone_directory_access_schema;
    use accltl_relational::tuple;

    fn hidden() -> Instance {
        let mut inst = Instance::new();
        inst.add_fact("Mobile#", tuple!["Smith", "OX13QD", "Parks Rd", 5551212]);
        inst.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Smith", 13]);
        inst.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Jones", 16]);
        inst
    }

    #[test]
    fn exact_exploration_reveals_the_hidden_instance() {
        let schema = phone_directory_access_schema();
        let hidden = hidden();
        let explorer = LtsExplorer::new(
            &schema,
            &hidden,
            LtsOptions {
                max_depth: 2,
                max_bindings_per_method: 64,
                ..LtsOptions::default()
            },
        );
        let tree = explorer.explore(&Instance::new()).unwrap();
        assert!(tree.node_count() > 1);
        assert_eq!(tree.node_count(), tree.edge_count() + 1);
        // Some depth-2 node knows all three hidden facts (access Smith's
        // mobile entry, then the Parks Rd / OX13QD address form).
        assert!(tree
            .nodes
            .iter()
            .any(|n| n.depth == 2 && n.instance.fact_count() == 3));
    }

    #[test]
    fn grounded_exploration_starts_empty_handed() {
        let schema = phone_directory_access_schema();
        let hidden = hidden();
        let explorer = LtsExplorer::new(
            &schema,
            &hidden,
            LtsOptions {
                grounded_only: true,
                max_depth: 2,
                ..LtsOptions::default()
            },
        );
        // With an empty initial instance there are no known values, so no
        // grounded access can be made at all: the tree is just the root.
        let tree = explorer.explore(&Instance::new()).unwrap();
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.edge_count(), 0);

        // Seeding the initial instance with an Address fact provides values to
        // enter into the forms, so the tree grows.
        let mut initial = Instance::new();
        initial.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Smith", 13]);
        let tree = explorer.explore(&initial).unwrap();
        assert!(tree.node_count() > 1);
    }

    #[test]
    fn subset_responses_branch_like_figure1() {
        let schema = phone_directory_access_schema();
        let hidden = hidden();
        let explorer = LtsExplorer::new(
            &schema,
            &hidden,
            LtsOptions {
                max_depth: 1,
                response_policy: ResponsePolicy::SubsetsOfHidden {
                    max_response_size: 2,
                },
                max_bindings_per_method: 8,
                ..LtsOptions::default()
            },
        );
        let tree = explorer.explore(&Instance::new()).unwrap();
        // For the access AcM2("Parks Rd","OX13QD") there are two matching
        // address tuples, so subsets {}, {t1}, {t2}, {t1,t2} all appear: the
        // tree branches more than under the exact policy.
        let exact_tree = LtsExplorer::new(
            &schema,
            &hidden,
            LtsOptions {
                max_depth: 1,
                max_bindings_per_method: 8,
                ..LtsOptions::default()
            },
        )
        .explore(&Instance::new())
        .unwrap();
        assert!(tree.edge_count() > exact_tree.edge_count());
    }

    #[test]
    fn node_budget_truncates_exploration() {
        let schema = phone_directory_access_schema();
        let hidden = hidden();
        let explorer = LtsExplorer::new(
            &schema,
            &hidden,
            LtsOptions {
                max_depth: 4,
                max_nodes: 10,
                max_bindings_per_method: 64,
                ..LtsOptions::default()
            },
        );
        let tree = explorer.explore(&Instance::new()).unwrap();
        assert!(tree.truncated);
        assert!(tree.node_count() <= 11);
    }

    #[test]
    fn nodes_per_depth_and_render() {
        let schema = phone_directory_access_schema();
        let hidden = hidden();
        let explorer = LtsExplorer::new(&schema, &hidden, LtsOptions::default());
        let tree = explorer.explore(&Instance::new()).unwrap();
        let per_depth = tree.nodes_per_depth();
        assert_eq!(per_depth[0], 1);
        assert_eq!(per_depth.iter().sum::<usize>(), tree.node_count());
        let rendering = tree.render(40);
        assert!(rendering.contains("known facts"));
        assert!(rendering.contains("AcM"));
    }
}
