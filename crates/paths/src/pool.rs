//! A work-stealing worker pool for frontier expansion, with a deterministic
//! result-merge contract.
//!
//! The frontier engine used to open a fresh `std::thread::scope` for every
//! BFS layer chunk it expanded.  Real workloads are full of *small* layers —
//! a handful of nodes per property per round — so thread spawn/join overhead
//! dominated exactly the regime batching was meant to speed up.  [`scoped`]
//! instead spawns one set of workers per engine run: the workers persist
//! across every layer of every property the engine drives (idle workers
//! steal tasks across properties, since a round's task list interleaves all
//! of them) and park on a condvar between rounds.
//!
//! # Determinism contract
//!
//! [`Pool::run`] takes an ordered task list and returns one result per task
//! **in task order**, no matter how many workers ran them or who stole what:
//! every task writes its result into its own index-addressed slot, and the
//! caller reassembles the slots positionally.  Scheduling therefore affects
//! wall-clock only; the engine's merge loop sees expansions in frontier
//! order and replays verdicts, witnesses, budget cutoffs and consult totals
//! byte-identically for every `threads`/`steal_batch` setting.  (The
//! `hit`/`miss` *split* of shared caches can still vary with physical
//! interleaving — totals and verdicts cannot.)
//!
//! # Scheduling
//!
//! Tasks are dealt round-robin to per-worker deques in contiguous
//! [`EngineConfig::steal_batch`](crate::engine::EngineConfig::steal_batch)-sized
//! runs.  A worker pops from the *front* of its own deque (cache-friendly,
//! in deal order) and, when empty, steals from the *back* of a neighbour's —
//! the classic split that keeps owners and thieves off the same end.  The
//! caller participates as worker 0, so `threads = 1` (or a single task)
//! degrades to inline execution with no synchronization at all.
//!
//! # Why scoped rather than a free-standing pool
//!
//! The workspace forbids `unsafe` code, so job closures cannot be
//! lifetime-erased and shipped to detached threads; instead the workers are
//! scoped to one [`scoped`] call and borrow the job (and everything it
//! captures) directly.  The engine wraps its whole run loop in one call, so
//! the "persistent" pool lives exactly as long as the work it exists for —
//! thousands of rounds per spawn instead of a spawn per round.
//!
//! Worker panics are caught per task and re-raised on the calling thread by
//! [`Pool::run`], so a panicking oracle behaves as it did under the
//! per-layer `thread::scope`.

use std::any::Any;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;

use accltl_obs::metrics::LazyCounter;
use accltl_obs::trace;

/// Task-index ranges executed by pool workers (own-deque claims plus
/// steals).  Aggregated once per [`Round::drain`] call, so the always-on
/// cost is two cached-handle atomic adds per worker per round.
static POOL_RANGES: LazyCounter = LazyCounter::new("pool.ranges");
/// Ranges claimed from a *neighbour's* deque — the work-stealing traffic.
static POOL_STEALS: LazyCounter = LazyCounter::new("pool.steals");
/// Individual tasks executed by pool workers (multi-worker rounds only;
/// inline rounds never enter a deque).
static POOL_TASKS: LazyCounter = LazyCounter::new("pool.tasks");

/// Locks a mutex, recovering the guard if a panicking thread poisoned it —
/// the pool re-raises the panic itself, so poison adds no information.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One round of work: an ordered task list, the per-worker deques of
/// task-index ranges, and one result slot per task.
struct Round<T, U> {
    tasks: Vec<T>,
    deques: Vec<Mutex<VecDeque<Range<usize>>>>,
    results: Vec<Mutex<Option<U>>>,
    /// Tasks not yet completed; the last finisher notifies `done`.
    remaining: AtomicUsize,
    done_lock: Mutex<()>,
    done: Condvar,
    /// First panic payload raised by a task, re-raised by [`Pool::run`].
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl<T, U> Round<T, U> {
    /// Runs tasks as worker `slot`: drain the own deque front-first, then
    /// steal from the back of the neighbours', until no work is left.
    fn drain(&self, job: &impl Fn(&T) -> U, slot: usize) {
        let workers = self.deques.len();
        let mut ranges = 0u64;
        let mut steals = 0u64;
        let mut tasks = 0u64;
        loop {
            let claimed = lock(&self.deques[slot])
                .pop_front()
                .map(|range| (range, false))
                .or_else(|| {
                    (1..workers).find_map(|offset| {
                        lock(&self.deques[(slot + offset) % workers])
                            .pop_back()
                            .map(|range| (range, true))
                    })
                });
            let Some((range, stolen)) = claimed else {
                if ranges > 0 {
                    POOL_RANGES.add(ranges);
                    POOL_STEALS.add(steals);
                    POOL_TASKS.add(tasks);
                }
                return;
            };
            ranges += 1;
            steals += u64::from(stolen);
            tasks += range.len() as u64;
            let _task_span = trace::span_fields(
                "pool.task",
                &[
                    ("worker", slot as u64),
                    ("start", range.start as u64),
                    ("len", range.len() as u64),
                    ("stolen", u64::from(stolen)),
                ],
            );
            for index in range {
                match panic::catch_unwind(AssertUnwindSafe(|| job(&self.tasks[index]))) {
                    Ok(result) => *lock(&self.results[index]) = Some(result),
                    Err(payload) => {
                        let mut first = lock(&self.panic);
                        if first.is_none() {
                            *first = Some(payload);
                        }
                    }
                }
                if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    // Take the lock so the notify cannot race between the
                    // caller's check of `remaining` and its wait.
                    let _sync = lock(&self.done_lock);
                    self.done.notify_all();
                }
            }
        }
    }
}

/// The coordination state shared between the caller and the workers of one
/// [`scoped`] call.
struct Shared<T, U> {
    state: Mutex<TeamState<T, U>>,
    work_ready: Condvar,
}

struct TeamState<T, U> {
    /// Bumped per published round; workers wake when it moves.
    epoch: u64,
    shutdown: bool,
    round: Option<Arc<Round<T, U>>>,
}

/// A handle for submitting rounds of tasks to the workers of one [`scoped`]
/// call.  See the module docs for the determinism contract.
pub struct Pool<'env, T, U, F> {
    job: &'env F,
    shared: Option<&'env Shared<T, U>>,
    threads: usize,
    steal_batch: usize,
}

impl<T, U, F> Pool<'_, T, U, F>
where
    T: Send + Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    /// Runs `job` over every task and returns the results in task order.
    /// Panics raised by tasks are re-raised here, on the calling thread.
    pub fn run(&self, tasks: Vec<T>) -> Vec<U> {
        let count = tasks.len();
        let inline = self.shared.is_none() || count <= 1;
        let _round_span = trace::span_fields(
            "pool.round",
            &[
                ("tasks", count as u64),
                ("workers", if inline { 1 } else { self.threads as u64 }),
            ],
        );
        let Some(shared) = self.shared.filter(|_| count > 1) else {
            // Single worker or trivial round: run inline, no coordination.
            return tasks.iter().map(self.job).collect();
        };

        // Deal steal_batch-sized contiguous runs of task indexes round-robin
        // onto the per-worker deques.
        let mut deques: Vec<VecDeque<Range<usize>>> =
            (0..self.threads).map(|_| VecDeque::new()).collect();
        let mut start = 0;
        let mut slot = 0;
        while start < count {
            let end = (start + self.steal_batch).min(count);
            deques[slot % self.threads].push_back(start..end);
            start = end;
            slot += 1;
        }

        let round = Arc::new(Round {
            tasks,
            deques: deques.into_iter().map(Mutex::new).collect(),
            results: (0..count).map(|_| Mutex::new(None)).collect(),
            remaining: AtomicUsize::new(count),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });

        {
            let mut state = lock(&shared.state);
            state.epoch += 1;
            state.round = Some(Arc::clone(&round));
        }
        shared.work_ready.notify_all();

        // The caller is worker 0; workers 1.. were spawned by `scoped`.
        round.drain(self.job, 0);
        {
            let mut sync = lock(&round.done_lock);
            while round.remaining.load(Ordering::Acquire) != 0 {
                sync = round
                    .done
                    .wait(sync)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        // Unpublish so the round's buffers free once the workers drop their
        // handles, instead of living until the next round replaces it.
        lock(&shared.state).round = None;

        if let Some(payload) = lock(&round.panic).take() {
            panic::resume_unwind(payload);
        }
        // Workers may still hold their `Arc` clone for an instant after the
        // last decrement, so take the results out of the slots rather than
        // unwrapping the `Arc`.
        round
            .results
            .iter()
            .map(|slot| {
                lock(slot)
                    .take()
                    .expect("pool invariant: every task leaves a result or a panic")
            })
            .collect()
    }
}

/// Unparks on `work_ready`, drains each newly published round, and exits on
/// shutdown.
fn worker<T, U>(shared: &Shared<T, U>, job: &(impl Fn(&T) -> U + Sync), slot: usize) {
    let mut seen_epoch = 0;
    loop {
        let round = {
            let mut state = lock(&shared.state);
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    seen_epoch = state.epoch;
                    break state.round.clone();
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        if let Some(round) = round {
            round.drain(job, slot);
        }
    }
}

/// Signals shutdown when the caller's closure unwinds as well as when it
/// returns, so workers never outlive the scope join.
struct ShutdownGuard<'a, T, U>(&'a Shared<T, U>);

impl<T, U> Drop for ShutdownGuard<'_, T, U> {
    fn drop(&mut self) {
        lock(&self.0.state).shutdown = true;
        self.0.work_ready.notify_all();
    }
}

/// Spawns `threads - 1` workers (the caller is the remaining one), hands
/// `body` a [`Pool`] for submitting rounds of `job` tasks, and joins the
/// workers when `body` returns.  With `threads <= 1` no thread is spawned
/// and every round runs inline on the caller.
pub fn scoped<T, U, F, R>(
    threads: usize,
    steal_batch: usize,
    job: F,
    body: impl FnOnce(&Pool<'_, T, U, F>) -> R,
) -> R
where
    T: Send + Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = threads.max(1);
    let steal_batch = steal_batch.max(1);
    if threads == 1 {
        return body(&Pool {
            job: &job,
            shared: None,
            threads,
            steal_batch,
        });
    }
    let shared = Shared {
        state: Mutex::new(TeamState {
            epoch: 0,
            shutdown: false,
            round: None,
        }),
        work_ready: Condvar::new(),
    };
    thread::scope(|scope| {
        let _shutdown = ShutdownGuard(&shared);
        for slot in 1..threads {
            let shared = &shared;
            let job = &job;
            scope.spawn(move || worker(shared, job, slot));
        }
        body(&Pool {
            job: &job,
            shared: Some(&shared),
            threads,
            steal_batch,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        for threads in [1, 2, 4, 8] {
            for steal_batch in [1, 3, 64] {
                let got = scoped(
                    threads,
                    steal_batch,
                    |&x: &usize| x * 2,
                    |pool| pool.run((0..100).collect()),
                );
                assert_eq!(got, (0..100).map(|x| x * 2).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn many_rounds_reuse_one_worker_set() {
        scoped(
            4,
            1,
            |&x: &u64| x + 1,
            |pool| {
                for round in 0..50u64 {
                    let got = pool.run(vec![round, round + 1, round + 2]);
                    assert_eq!(got, vec![round + 1, round + 2, round + 3]);
                }
                // Empty and single-task rounds run inline on the caller.
                assert!(pool.run(Vec::new()).is_empty());
                assert_eq!(pool.run(vec![9]), vec![10]);
            },
        );
    }

    #[test]
    fn threads_beyond_task_count_are_harmless() {
        let got = scoped(16, 4, |&x: &i32| -x, |pool| pool.run(vec![1, 2, 3]));
        assert_eq!(got, vec![-1, -2, -3]);
    }

    #[test]
    fn worker_panics_reach_the_caller() {
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            scoped(
                4,
                1,
                |&x: &usize| {
                    assert_ne!(x, 7, "boom");
                    x
                },
                |pool| pool.run((0..32).collect()),
            )
        }));
        assert!(result.is_err());
    }
}
