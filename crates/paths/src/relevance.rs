//! Long-term relevance (LTR) of an access to a query (Example 2.3, \[3\]).
//!
//! An access `AC₁` is *long-term relevant* for a query `Q` on an initial
//! instance `I₀` if there is an access path `p = AC₁,r₁,AC₂,r₂,…` such that
//! the configuration reached by `p` satisfies `Q`, while the configuration
//! reached by the path with `AC₁` (and its response) dropped does not.
//! Intuitively: making the access can be the difference between discovering a
//! new query result and not discovering it.
//!
//! The decision procedure here follows the witness-shape argument the paper
//! uses for the X-fragment (Section 4.2): if a witness path exists at all,
//! one exists whose configuration is the homomorphic image of a single
//! disjunct of `Q` (so its length is at most `|Q|`), whose critical fact is
//! returned by `AC₁`, and whose values can be taken from the active domain of
//! `I₀`, the binding of `AC₁` and a set of fresh values, one per query
//! variable.  The search enumerates exactly that witness space:
//!
//! * under **unrestricted** ("independent") accesses, a candidate witness is
//!   accepted if every remaining fact lies on a relation that has some access
//!   method (any binding may be guessed);
//! * under **grounded** ("dependent") accesses, a candidate witness is
//!   accepted only if the remaining facts can be revealed in some order in
//!   which each access's binding values are already known — checked by a
//!   saturation over the candidate facts.
//!
//! The enumeration is capped; when the cap is hit the verdict is reported as
//! [`LtrVerdict::Unknown`] rather than silently answering `NotRelevant`.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use accltl_relational::cq::Assignment;
use accltl_relational::{
    Atom, ConjunctiveQuery, Instance, InstanceOverlay, RelId, Sym, Term, Tuple, UnionOfCqs, Value,
    VarId,
};

use crate::access::{Access, AccessSchema};
use crate::path::{AccessPath, Response};
use crate::Result;

/// Options for the long-term relevance check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LtrOptions {
    /// Restrict witness paths to grounded accesses ("dependent accesses" in
    /// \[3\]).  When false, arbitrary bindings may be guessed ("independent
    /// accesses").
    pub grounded: bool,
    /// Cap on the number of candidate variable assignments examined per query
    /// disjunct and per candidate critical atom.
    pub max_assignments: usize,
}

impl Default for LtrOptions {
    fn default() -> Self {
        LtrOptions {
            grounded: false,
            max_assignments: 200_000,
        }
    }
}

/// The verdict of the long-term relevance check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LtrVerdict {
    /// The access is long-term relevant; a witnessing access path is returned
    /// (its first step is the access in question).
    Relevant {
        /// A witness path: `Q` holds after it but not after dropping its first
        /// access.
        witness: AccessPath,
    },
    /// The access is not long-term relevant (within the enumerated witness
    /// space, which is complete unless the assignment cap was hit).
    NotRelevant,
    /// The assignment cap was reached before the witness space was exhausted.
    Unknown,
}

impl LtrVerdict {
    /// True if the verdict is `Relevant`.
    #[must_use]
    pub fn is_relevant(&self) -> bool {
        matches!(self, LtrVerdict::Relevant { .. })
    }
}

/// Decides long-term relevance of `access` for `query` over the initial
/// instance `initial`.
///
/// The query is treated as boolean (existentially closed); this matches
/// Example 2.3 of the paper.
pub fn long_term_relevant(
    schema: &AccessSchema,
    access: &Access,
    query: &UnionOfCqs,
    initial: &Instance,
    options: &LtrOptions,
) -> Result<LtrVerdict> {
    schema.validate_access(access)?;
    let method = schema.require_method(access.method)?;
    let relation = method.relation_id();

    // The active domain is needed by every candidate below (and by the
    // grounded saturation per assignment); compute it exactly once.
    let domain = initial.active_domain();

    // A grounded witness path must itself start with a grounded access.
    if options.grounded && !access.binding.values().iter().all(|v| domain.contains(v)) {
        return Ok(LtrVerdict::NotRelevant);
    }

    let mut cap_hit = false;
    // At most one clone for the whole check, created only when some critical
    // atom actually matches; every candidate witness below is an overlay over
    // this shared base instead of a fresh copy of the initial instance.
    let mut shared_initial: Option<Arc<Instance>> = None;

    for disjunct in &query.disjuncts {
        for (atom_index, atom) in disjunct.atoms.iter().enumerate() {
            if atom.predicate != relation {
                continue;
            }
            // Unify the candidate critical atom with the access binding on the
            // method's input positions.
            let Some(forced) = unify_with_binding(atom, method.input_positions(), &access.binding)
            else {
                continue;
            };
            let base = shared_initial.get_or_insert_with(|| Arc::new(initial.clone()));
            match search_assignments(
                schema, access, disjunct, atom_index, &forced, query, base, &domain, options,
            )? {
                SearchOutcome::Found(witness) => {
                    return Ok(LtrVerdict::Relevant { witness });
                }
                SearchOutcome::Exhausted => {}
                SearchOutcome::CapHit => cap_hit = true,
            }
        }
    }

    Ok(if cap_hit {
        LtrVerdict::Unknown
    } else {
        LtrVerdict::NotRelevant
    })
}

enum SearchOutcome {
    Found(AccessPath),
    Exhausted,
    CapHit,
}

/// Unifies an atom's terms at the given input positions with the binding
/// values; returns the forced partial assignment, or `None` when a constant
/// clashes.
fn unify_with_binding(
    atom: &Atom,
    input_positions: &[usize],
    binding: &Tuple,
) -> Option<Assignment> {
    let mut forced = Assignment::new();
    for (&position, value) in input_positions.iter().zip(binding.values()) {
        match atom.terms.get(position)? {
            Term::Const(c) => {
                if c != value {
                    return None;
                }
            }
            Term::Var(v) => {
                if let Some(existing) = forced.get(*v) {
                    if existing != value {
                        return None;
                    }
                }
                forced.insert(*v, *value);
            }
        }
    }
    Some(forced)
}

#[allow(clippy::too_many_arguments)]
fn search_assignments(
    schema: &AccessSchema,
    access: &Access,
    disjunct: &ConjunctiveQuery,
    critical_atom: usize,
    forced: &Assignment,
    query: &UnionOfCqs,
    initial: &Arc<Instance>,
    domain: &BTreeSet<Value>,
    options: &LtrOptions,
) -> Result<SearchOutcome> {
    let variables: Vec<VarId> = disjunct
        .body_variables()
        .into_iter()
        .filter(|v| !forced.contains_var(*v))
        .collect();

    // Candidate values: active domain of the initial instance, the binding
    // values, and one fresh value per remaining variable (fresh values are
    // interchangeable, so one per variable suffices for completeness).
    let mut candidates: Vec<Value> = domain.iter().copied().collect();
    candidates.extend(access.binding.values().iter().copied());
    for (i, _) in variables.iter().enumerate() {
        candidates.push(Value::str(format!("\u{2605}fresh{i}")));
    }
    candidates.sort();
    candidates.dedup();

    let total: u128 = (candidates.len() as u128)
        .checked_pow(variables.len() as u32)
        .unwrap_or(u128::MAX);
    let capped = total > options.max_assignments as u128;
    let limit = if capped {
        options.max_assignments
    } else {
        total as usize
    };

    let mut indices = vec![0usize; variables.len()];
    for iteration in 0..limit.max(1) {
        if !variables.is_empty() && iteration > 0 {
            // Advance the mixed-radix counter.
            let mut i = 0;
            loop {
                indices[i] += 1;
                if indices[i] < candidates.len() {
                    break;
                }
                indices[i] = 0;
                i += 1;
                if i == variables.len() {
                    return Ok(if capped {
                        SearchOutcome::CapHit
                    } else {
                        SearchOutcome::Exhausted
                    });
                }
            }
        }
        let mut assignment = forced.clone();
        for (var, &index) in variables.iter().zip(&indices) {
            assignment.insert(*var, candidates[index]);
        }
        if let Some(witness) = try_witness(
            schema,
            access,
            disjunct,
            critical_atom,
            &assignment,
            query,
            initial,
            domain,
            options,
        )? {
            return Ok(SearchOutcome::Found(witness));
        }
        if variables.is_empty() {
            break;
        }
    }
    Ok(if capped {
        SearchOutcome::CapHit
    } else {
        SearchOutcome::Exhausted
    })
}

/// Checks whether one concrete assignment yields a long-term-relevance
/// witness and, if so, constructs the witness path.
#[allow(clippy::too_many_arguments)]
fn try_witness(
    schema: &AccessSchema,
    access: &Access,
    disjunct: &ConjunctiveQuery,
    critical_atom: usize,
    assignment: &Assignment,
    query: &UnionOfCqs,
    initial: &Arc<Instance>,
    domain: &BTreeSet<Value>,
    options: &LtrOptions,
) -> Result<Option<AccessPath>> {
    // The image of the disjunct under the assignment.
    let facts: Vec<(RelId, Tuple)> = disjunct
        .atoms
        .iter()
        .map(|a| (a.predicate, ground_atom(a, assignment)))
        .collect();
    let critical = facts[critical_atom].clone();

    // The critical fact must be new (otherwise dropping the access loses
    // nothing) and must actually be a legal response to the access.
    if initial.contains(critical.0, &critical.1) {
        return Ok(None);
    }
    if !schema.tuple_matches_access(access, &critical.1) {
        return Ok(None);
    }

    // Q must fail when the critical fact is withheld.  The candidate
    // configuration is an overlay over the shared initial instance, so this
    // costs O(|disjunct|) per assignment instead of a full instance clone.
    let mut without_critical = InstanceOverlay::new(initial.clone());
    for (rel, tuple) in &facts {
        if (rel, tuple) != (&critical.0, &critical.1) {
            without_critical.push_fact(*rel, tuple.clone());
        }
    }
    // With an empty delta (single-atom disjuncts) evaluate on the plain
    // instance: same facts, cheaper iteration.
    let holds = if without_critical.delta().is_empty() {
        query.holds(initial.as_ref())
    } else {
        query.holds(&without_critical)
    };
    if holds {
        return Ok(None);
    }

    // The remaining new facts must be revealable by accesses.
    let remaining: Vec<(RelId, Tuple)> = facts
        .iter()
        .filter(|(rel, tuple)| {
            !(initial.contains(*rel, tuple) || (*rel == critical.0 && tuple == &critical.1))
        })
        .cloned()
        .collect();

    let ordered = if options.grounded {
        reveal_order_grounded(schema, access, &critical, &remaining, domain)
    } else {
        reveal_order_unrestricted(schema, &remaining)
    };
    let Some(ordered) = ordered else {
        return Ok(None);
    };

    // Assemble the witness path: the access under test first, then one access
    // per remaining fact.
    let mut witness = AccessPath::new();
    witness.push(access.clone(), Response::from([critical.1.clone()]));
    for (method_name, fact) in ordered {
        let method = schema.require_method(method_name)?;
        let binding = fact.project(method.input_positions());
        witness.push(Access::new(method_name, binding), Response::from([fact]));
    }
    Ok(Some(witness))
}

fn ground_atom(atom: &Atom, assignment: &Assignment) -> Tuple {
    atom.terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => *c,
            Term::Var(v) => assignment
                .get(*v)
                .copied()
                .expect("assignment covers all variables of the disjunct"),
        })
        .collect()
}

/// Under unrestricted accesses any binding may be guessed, so a fact is
/// revealable iff its relation has at least one access method.
fn reveal_order_unrestricted(
    schema: &AccessSchema,
    remaining: &[(RelId, Tuple)],
) -> Option<Vec<(Sym, Tuple)>> {
    let mut ordered = Vec::with_capacity(remaining.len());
    for (relation, tuple) in remaining {
        let method = schema.methods_for_relation(*relation).next()?;
        ordered.push((method.name_sym(), tuple.clone()));
    }
    Some(ordered)
}

/// Under grounded accesses, each access's binding values must already be
/// known; saturate over the remaining facts until all are revealed or no
/// progress is possible.
fn reveal_order_grounded(
    schema: &AccessSchema,
    access_under_test: &Access,
    critical: &(RelId, Tuple),
    remaining: &[(RelId, Tuple)],
    domain: &BTreeSet<Value>,
) -> Option<Vec<(Sym, Tuple)>> {
    // Values revealed on top of the (precomputed) initial active domain.
    let mut known: BTreeSet<Value> = access_under_test.binding.values().iter().copied().collect();
    known.extend(critical.1.values().iter().copied());

    let mut pending: BTreeMap<usize, (RelId, Tuple)> =
        remaining.iter().cloned().enumerate().collect();
    let mut ordered = Vec::with_capacity(remaining.len());

    while !pending.is_empty() {
        let mut progressed = None;
        'outer: for (&index, (relation, tuple)) in &pending {
            for method in schema.methods_for_relation(*relation) {
                let groundable = method.input_positions().iter().all(|&p| {
                    tuple
                        .get(p)
                        .is_some_and(|v| domain.contains(v) || known.contains(v))
                });
                if groundable {
                    progressed = Some((index, method.name_sym()));
                    break 'outer;
                }
            }
        }
        match progressed {
            Some((index, method_name)) => {
                let (_, tuple) = pending.remove(&index).expect("index taken from the map");
                known.extend(tuple.values().iter().copied());
                ordered.push((method_name, tuple));
            }
            None => return None,
        }
    }
    Some(ordered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{phone_directory_access_schema, AccessMethod};
    use crate::sanity::is_grounded;
    use accltl_relational::{atom, cq, tuple};

    fn jones_query() -> UnionOfCqs {
        // "Jones has an address entry".
        UnionOfCqs::single(cq!(<- atom!("Address"; s, p, @"Jones", h)))
    }

    #[test]
    fn address_access_is_relevant_to_the_jones_query() {
        let schema = phone_directory_access_schema();
        let access = Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]);
        let verdict = long_term_relevant(
            &schema,
            &access,
            &jones_query(),
            &Instance::new(),
            &LtrOptions::default(),
        )
        .unwrap();
        let LtrVerdict::Relevant { witness } = verdict else {
            panic!("expected the access to be relevant");
        };
        assert_eq!(witness.accesses().next().unwrap().method, "AcM2");
        // The witness really does flip the query.
        let with = witness.configuration(&schema, &Instance::new()).unwrap();
        let without = witness
            .without_first()
            .configuration(&schema, &Instance::new())
            .unwrap();
        assert!(jones_query().holds(&with));
        assert!(!jones_query().holds(&without));
    }

    #[test]
    fn mobile_access_is_not_relevant_to_the_jones_query() {
        // The query only mentions Address, so an access to Mobile# can never
        // be the step that reveals the witnessing fact.
        let schema = phone_directory_access_schema();
        let access = Access::new("AcM1", tuple!["Jones"]);
        let verdict = long_term_relevant(
            &schema,
            &access,
            &jones_query(),
            &Instance::new(),
            &LtrOptions::default(),
        )
        .unwrap();
        assert_eq!(verdict, LtrVerdict::NotRelevant);
    }

    #[test]
    fn already_known_facts_make_an_access_irrelevant() {
        let schema = phone_directory_access_schema();
        let mut initial = Instance::new();
        initial.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Jones", 16]);
        // Jones's address is already known: the access cannot newly reveal it,
        // and the query already holds without any access.
        let access = Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]);
        let verdict = long_term_relevant(
            &schema,
            &access,
            &jones_query(),
            &initial,
            &LtrOptions::default(),
        )
        .unwrap();
        assert_eq!(verdict, LtrVerdict::NotRelevant);
    }

    #[test]
    fn binding_mismatch_with_query_constant_is_not_relevant() {
        // An access asking about a different name cannot reveal a fact with
        // the constant "Jones" at the name position... but the name position
        // of AcM2 is not an input position, so this test uses a boolean-style
        // method on Address instead.
        let mut schema = phone_directory_access_schema();
        schema
            .add_method(AccessMethod::new("ByName", "Address", vec![2]))
            .unwrap();
        let access = Access::new("ByName", tuple!["Smith"]);
        let verdict = long_term_relevant(
            &schema,
            &access,
            &jones_query(),
            &Instance::new(),
            &LtrOptions::default(),
        )
        .unwrap();
        assert_eq!(verdict, LtrVerdict::NotRelevant);
    }

    #[test]
    fn join_query_requires_supporting_facts() {
        // Q: some name has both a mobile entry and an address entry.  An
        // access to Mobile# is relevant: its response supplies the Mobile#
        // half, and an Address access can supply the other half.
        let schema = phone_directory_access_schema();
        let q = UnionOfCqs::single(cq!(<-
            atom!("Mobile#"; n, p, s, ph),
            atom!("Address"; s2, p2, n, h)));
        let access = Access::new("AcM1", tuple!["Smith"]);
        let verdict = long_term_relevant(
            &schema,
            &access,
            &q,
            &Instance::new(),
            &LtrOptions::default(),
        )
        .unwrap();
        assert!(verdict.is_relevant());
        if let LtrVerdict::Relevant { witness } = verdict {
            // Witness has the Mobile# access first and then an Address access.
            assert_eq!(witness.len(), 2);
        }
    }

    #[test]
    fn grounded_relevance_requires_known_binding() {
        let schema = phone_directory_access_schema();
        let access = Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]);
        let grounded = LtrOptions {
            grounded: true,
            ..LtrOptions::default()
        };
        // Over the empty initial instance the binding values are unknown, so
        // no grounded witness path can start with this access.
        let verdict = long_term_relevant(
            &schema,
            &access,
            &jones_query(),
            &Instance::new(),
            &grounded,
        )
        .unwrap();
        assert_eq!(verdict, LtrVerdict::NotRelevant);

        // Once the street and postcode are known (say from a Mobile# fact for
        // a different person), the access becomes relevant even under
        // grounded semantics — this is exactly the iterative strategy from
        // the paper's introduction.
        let mut initial = Instance::new();
        initial.add_fact("Mobile#", tuple!["Smith", "OX13QD", "Parks Rd", 5551212]);
        let verdict =
            long_term_relevant(&schema, &access, &jones_query(), &initial, &grounded).unwrap();
        let LtrVerdict::Relevant { witness } = verdict else {
            panic!("expected relevance under grounded semantics");
        };
        assert!(is_grounded(&witness, &initial));
    }

    #[test]
    fn grounded_join_needs_a_dataflow_chain() {
        // Q: some name has both entries.  Under grounded semantics, an access
        // to Address with known street/postcode is relevant only if the
        // Mobile# half can be revealed afterwards with known values — which
        // works because the revealed Address fact supplies the name.
        let schema = phone_directory_access_schema();
        let q = UnionOfCqs::single(cq!(<-
            atom!("Mobile#"; n, p, s, ph),
            atom!("Address"; s2, p2, n, h)));
        let mut initial = Instance::new();
        initial.add_fact("Address", tuple!["Parks Rd", "OX13QD", "seed", 0]);
        let access = Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]);
        let grounded = LtrOptions {
            grounded: true,
            ..LtrOptions::default()
        };
        let verdict = long_term_relevant(&schema, &access, &q, &initial, &grounded).unwrap();
        let LtrVerdict::Relevant { witness } = verdict else {
            panic!("expected relevance");
        };
        assert!(is_grounded(&witness, &initial));
        // The Mobile# access must come after the Address access that reveals
        // the name.
        assert_eq!(witness.accesses().next().unwrap().method, "AcM2");
        assert!(witness.accesses().any(|a| a.method == "AcM1"));
    }

    #[test]
    fn relevance_for_union_queries_considers_every_disjunct() {
        let schema = phone_directory_access_schema();
        let q = UnionOfCqs::new(vec![
            cq!(<- atom!("Mobile#"; @"Zed", p, s, ph)),
            cq!(<- atom!("Address"; s, p, @"Jones", h)),
        ]);
        let access = Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]);
        let verdict = long_term_relevant(
            &schema,
            &access,
            &q,
            &Instance::new(),
            &LtrOptions::default(),
        )
        .unwrap();
        assert!(verdict.is_relevant());
    }

    #[test]
    fn tight_assignment_cap_reports_unknown() {
        let schema = phone_directory_access_schema();
        // The query already holds on the initial instance, so the access is in
        // truth not relevant — but with a cap far below the assignment space
        // the checker must say Unknown rather than silently NotRelevant.
        let mut initial = Instance::new();
        initial.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Jones", 16]);
        initial.add_fact("Address", tuple!["High St", "OX44GG", "Dole", 2]);
        let access = Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]);
        let options = LtrOptions {
            grounded: false,
            max_assignments: 5,
        };
        let verdict =
            long_term_relevant(&schema, &access, &jones_query(), &initial, &options).unwrap();
        assert_eq!(verdict, LtrVerdict::Unknown);
    }
}
