//! The shared bounded-frontier search engine behind the decision procedures.
//!
//! Both `accltl-logic`'s bounded satisfiability search and
//! `accltl-automata`'s A-automaton emptiness search explore the same witness
//! space: breadth-first over *configurations* drawn from a finite fact
//! universe, where a step performs one access and reveals a subset of the
//! universe facts compatible with the binding.  Historically each crate
//! carried its own copy of the universe/frontier/parent-map/reconstruction
//! machinery; this module is the single implementation, parameterized over a
//! [`StepOracle`] that supplies the domain-specific part — how a candidate
//! transition advances the logical state (progressing an `AccLTL` obligation,
//! or firing an automaton transition whose guard holds).
//!
//! # Batched multi-property search
//!
//! The paper's experimental suites check *many* properties against *one*
//! schema, and every property explores (a fragment of) the same
//! configuration space.  [`BatchEngine`] is the multi-query engine: one
//! instance interns all properties' fact universes into a shared table,
//! round-robins one frontier chunk per live property, and shares the
//! expensive per-configuration work — the before-overlay and the oracle's
//! prepared context ([`StepOracle::shares_ctx`]) — across every property
//! (and every logical state of one property) that reaches the same
//! configuration.  Each property keeps its own frontier, dedup set, budget
//! and verdict, so it early-exits independently, and per-property results
//! are **byte-identical** to running the properties one at a time:
//! candidate enumeration order, chunk structure, budget accounting and
//! witness choice only ever depend on the property's own universe and
//! config, never on its batch neighbours.
//!
//! [`FrontierEngine`] remains as the single-property front: it is a thin
//! wrapper that runs a one-property batch.
//!
//! Engine responsibilities:
//!
//! * **compact frontier states** — the revealed-fact component of a search
//!   state is a bitset over interned fact indices, so cloning, hashing and
//!   deduplicating states is a few word operations instead of a
//!   `BTreeSet<usize>` walk;
//! * **arena parent links** — discovered states live in a flat per-property
//!   arena and parents are plain indices, replacing the per-crate
//!   `HashMap<State, Option<(State, Access, Vec<usize>)>>` clones;
//! * **candidate-access enumeration** — grouping unrevealed facts by their
//!   projection onto a method's input positions, bounded response subsets,
//!   and bounded empty-response binding enumeration (with the grounded and
//!   0-ary variants both searches need);
//! * **parallel layer expansion** — every global round submits the union of
//!   all live properties' frontier chunks to one persistent work-stealing
//!   worker set ([`crate::pool`], spawned once per [`BatchEngine::run`]
//!   call, so small layers pay no per-layer spawn); expansion results are
//!   merged on the driving thread *in frontier order*, so verdicts, budget
//!   cutoffs and witness paths are identical for every thread count
//!   (single-thread determinism is part of the contract, not an accident of
//!   scheduling);
//! * **witness reconstruction** — walking the parent arena back to the root.
//!
//! Per candidate transition the engine never clones a configuration: the
//! *before* configuration is an [`InstanceOverlay`] over the shared initial
//! instance, and oracles receive the candidate's delta (fact indices) to
//! push onto their own per-state overlay — a step costs `O(|response|)`.
//!
//! Both production oracles additionally memoize guard verdicts through a
//! per-search `accltl_relational::GuardCache`: `prepare` size-gates
//! memoization per state and `step` consults the cache (sentence id ×
//! restricted content-addressed `StructureKey`) before any homomorphism
//! search.  In a batch every
//! property holds a [`accltl_relational::GuardCache::share`] handle of one
//! root cache, so
//! structurally-shared guards hit across the whole batch while each
//! property's consult counters stay its own.  Verdicts — and with them
//! witnesses and budget accounting, since [`StepOutcome::cost`] counts
//! guard *consults*, not evaluations — are byte-identical with the cache
//! disabled ([`EngineConfig::disable_guard_cache`]).  Hit/miss counters
//! surface through [`StepOracle::cache_stats`] / [`EngineReport::cache`];
//! note that with several workers (or batch neighbours) the hit/miss
//! *split* may vary run to run even though the total and every verdict stay
//! deterministic.
//!
//! Every `ACCLTL_*` environment variable has exactly one read site:
//! [`EngineConfig::from_env`] folds in the search/index/cache knobs (and
//! every front-end uses it for defaults), while the two subsystem ablation
//! flags live with their subsystems — `ACCLTL_DISABLE_LTS_OVERLAY` in
//! [`crate::lts::LtsOptions::from_env`] and
//! `ACCLTL_DISABLE_INCREMENTAL_CHASE` in
//! `accltl_relational::chase::ChaseConfig::from_env`.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use accltl_relational::{
    DataType, GuardCacheStats, Instance, InstanceOverlay, RelId, Tuple, Value,
    DISABLE_GUARD_CACHE_ENV_VAR, DISABLE_INDEXES_ENV_VAR, INDEX_CUTOFF,
};

use accltl_obs::{json::JsonObject, metrics, trace};

use crate::access::{Access, AccessMethod, AccessSchema};
use crate::path::{AccessPath, Response};
use crate::pool;

/// The environment variable consulted by [`EngineConfig::from_env`] for the
/// default worker count.
pub const THREADS_ENV_VAR: &str = "ACCLTL_SEARCH_THREADS";

/// The environment variable consulted by [`EngineConfig::from_env`] for the
/// default [`EngineConfig::index_cutoff`] (`0` is meaningful: index every
/// relation).
pub const INDEX_CUTOFF_ENV_VAR: &str = "ACCLTL_INDEX_CUTOFF";

/// The environment variable consulted by [`EngineConfig::from_env`] for the
/// default [`EngineConfig::steal_batch`].
pub const STEAL_BATCH_ENV_VAR: &str = "ACCLTL_STEAL_BATCH";

/// `ACCLTL_DISABLE_SESSION_REUSE=1` makes monitoring sessions re-run every
/// step from scratch instead of reusing the persistent session state (the
/// ablation behind the byte-identical-verdict contract of
/// [`SessionState`]).  Read once, by [`EngineConfig::from_env`].
pub const DISABLE_SESSION_REUSE_ENV_VAR: &str = "ACCLTL_DISABLE_SESSION_REUSE";

/// The finite fact universe a search draws its responses from.
#[derive(Debug, Clone, Default)]
pub struct FactUniverse {
    facts: Vec<(RelId, Tuple)>,
}

impl FactUniverse {
    /// Wraps an ordered list of `(relation, tuple)` facts.
    #[must_use]
    pub fn new(facts: Vec<(RelId, Tuple)>) -> Self {
        FactUniverse { facts }
    }

    /// The number of facts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True if the universe has no facts.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// The fact at a universe index.
    #[must_use]
    pub fn fact(&self, index: u32) -> (RelId, &Tuple) {
        let (rel, tuple) = &self.facts[index as usize];
        (*rel, tuple)
    }

    /// Iterates over `(index, relation, tuple)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, RelId, &Tuple)> {
        self.facts
            .iter()
            .enumerate()
            .map(|(i, (rel, tuple))| (i as u32, *rel, tuple))
    }

    /// Every value occurring in some universe fact.
    #[must_use]
    pub fn values(&self) -> BTreeSet<Value> {
        self.facts
            .iter()
            .flat_map(|(_, t)| t.values().iter().copied())
            .collect()
    }
}

/// One candidate transition handed to the [`StepOracle`].
#[derive(Debug, Clone, Copy)]
pub struct Candidate<'a> {
    /// The access method performing the transition.
    pub method: &'a AccessMethod,
    /// The binding of the access.
    pub binding: &'a Tuple,
    /// Universe indices of the facts revealed by the response.
    pub added: &'a [u32],
}

/// The oracle's verdict on one candidate transition from one state.
#[derive(Debug, Clone)]
pub struct StepOutcome<S> {
    /// Logical successor states reached by this transition (deduplicated
    /// against the frontier by the engine).  Empty when the transition is
    /// dead.
    pub successors: Vec<S>,
    /// True if this transition completes a witness: the path to the current
    /// state extended by this access is returned immediately.
    pub accept: bool,
    /// Abstract cost consumed (e.g. guard evaluations), accumulated by the
    /// engine in deterministic frontier order against
    /// [`EngineConfig::max_guard_checks`].
    pub cost: usize,
}

impl<S> StepOutcome<S> {
    /// A dead transition: no successors, no witness.
    #[must_use]
    pub fn dead(cost: usize) -> Self {
        StepOutcome {
            successors: Vec::new(),
            accept: false,
            cost,
        }
    }
}

/// The domain-specific half of a bounded frontier search.
///
/// The engine drives the frontier; the oracle says what a candidate
/// transition does to the *logical* component of a search state.  `prepare`
/// is called with the before-configuration (an overlay over the shared
/// initial instance) so implementations can precompute their per-state
/// transition-structure base; `step` is then called once per candidate and
/// must not clone the configuration — push the candidate's delta onto an
/// overlay instead.
///
/// `Send + Sync` because a batch's property runs (each owning its oracle)
/// sit behind the lock the [`pool`] workers read expansion
/// tasks through.
pub trait StepOracle: Send + Sync {
    /// The logical component of a search state (a progressed formula, an
    /// automaton state, ...).
    type State: Clone + Eq + Hash + Send + Sync;
    /// Per-configuration precomputation, built by [`StepOracle::prepare`]
    /// and handed back to every [`StepOracle::step`] call for a state at
    /// that configuration.  `Send + Sync` so a batch can share prepared
    /// contexts across worker threads and properties.
    type StateCtx: Send + Sync;
    /// Per-candidate precomputation, built by
    /// [`StepOracle::prepare_candidate`] and handed back to every
    /// [`StepOracle::step`] call for that candidate — typically the
    /// candidate's transition structure, which does not depend on the
    /// logical state being stepped.  Oracles with nothing to precompute
    /// use `()`.
    type CandidateCtx: Send + Sync;

    /// Precomputes whatever the oracle needs to evaluate candidates from a
    /// state whose configuration is `before`.
    fn prepare(&self, before: &InstanceOverlay) -> Self::StateCtx;

    /// Precomputes whatever the oracle derives from the (configuration,
    /// candidate) pair alone, independent of the logical state.  Under
    /// [`StepOracle::shares_ctx`] this must be a pure function of its
    /// arguments' content, so the engine builds each configuration's
    /// candidate contexts once and shares them across logical states and
    /// across batch properties.
    fn prepare_candidate(
        &self,
        ctx: &Self::StateCtx,
        candidate: &Candidate<'_>,
        universe: &FactUniverse,
    ) -> Self::CandidateCtx;

    /// Evaluates one candidate transition.
    fn step(
        &self,
        state: &Self::State,
        ctx: &Self::StateCtx,
        prepared: &Self::CandidateCtx,
        candidate: &Candidate<'_>,
        universe: &FactUniverse,
    ) -> StepOutcome<Self::State>;

    /// Hit/miss counters of the oracle's guard-verdict cache, when it has
    /// one (the default answers `None`).  Surfaced by
    /// [`EngineReport::cache`] for benchmarks and regression tests.
    fn cache_stats(&self) -> Option<GuardCacheStats> {
        None
    }

    /// True asserts that [`StepOracle::prepare`] is a pure function of the
    /// before-configuration (plus state shared by every oracle in the
    /// batch, such as one vocabulary and one root guard cache), so the
    /// engine may build the context once per distinct configuration and
    /// share it across logical states *and across batch properties*.  The
    /// default is `false` (always prepare per expansion).
    ///
    /// Sharing must not change verdicts, witnesses or budget accounting —
    /// only cache hit/miss splits may move.
    fn shares_ctx(&self) -> bool {
        false
    }
}

/// Borrowed oracles are oracles, so a caller can keep ownership while a
/// batch runs (the single-property [`FrontierEngine`] relies on this).
impl<O: StepOracle + ?Sized> StepOracle for &O {
    type State = O::State;
    type StateCtx = O::StateCtx;
    type CandidateCtx = O::CandidateCtx;

    fn prepare(&self, before: &InstanceOverlay) -> Self::StateCtx {
        (**self).prepare(before)
    }

    fn prepare_candidate(
        &self,
        ctx: &Self::StateCtx,
        candidate: &Candidate<'_>,
        universe: &FactUniverse,
    ) -> Self::CandidateCtx {
        (**self).prepare_candidate(ctx, candidate, universe)
    }

    fn step(
        &self,
        state: &Self::State,
        ctx: &Self::StateCtx,
        prepared: &Self::CandidateCtx,
        candidate: &Candidate<'_>,
        universe: &FactUniverse,
    ) -> StepOutcome<Self::State> {
        (**self).step(state, ctx, prepared, candidate, universe)
    }

    fn cache_stats(&self) -> Option<GuardCacheStats> {
        (**self).cache_stats()
    }

    fn shares_ctx(&self) -> bool {
        (**self).shares_ctx()
    }
}

/// How bindings for empty responses are enumerated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmptyBindingMode {
    /// One placeholder binding per method (the `Sch0−Acc` interpretation,
    /// where the binding carries no information).
    Placeholder,
    /// Bounded enumeration over universe values, search constants and a
    /// fresh placeholder (the full-binding interpretation).
    Enumerate,
}

/// Default for [`EngineConfig::max_response_group`]: the cap on the number
/// of same-binding unrevealed facts considered for one response subset
/// enumeration (subsets are masks over a `u32`, so effective values are
/// clamped to 31; response sizes beyond [`EngineConfig::max_response_size`]
/// are filtered anyway).  When any method's binding group exceeds the cap,
/// exhausting the frontier is reported as [`EngineOutcome::Truncated`]
/// instead of [`EngineOutcome::Exhausted`].
pub const MAX_RESPONSE_GROUP: usize = 12;

/// Configuration of the shared frontier engine.
///
/// Construct with [`EngineConfig::from_env`] (equivalently
/// `EngineConfig::default()`), which folds the `ACCLTL_*` environment
/// variables in as defaults — **the only place in the workspace they are
/// read** — then override individual knobs with the builder methods:
///
/// ```
/// use accltl_paths::engine::EngineConfig;
/// let config = EngineConfig::from_env().threads(4).max_guard_checks(10_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Maximum number of distinct search states (the start state counts).
    pub max_states: usize,
    /// Maximum number of tuples revealed by a single response.
    pub max_response_size: usize,
    /// Cap on candidate bindings enumerated per method for empty responses.
    pub max_empty_bindings: usize,
    /// Budget on accumulated [`StepOutcome::cost`] (guard-cache consults in
    /// both production oracles); exceeding it aborts the search with
    /// [`EngineOutcome::OutOfBudget`].
    pub max_guard_checks: usize,
    /// Per-binding response-group cap (see [`MAX_RESPONSE_GROUP`], the
    /// default).  Values above `31` are clamped: subsets are `u32` masks.
    pub max_response_group: usize,
    /// Restrict candidates to grounded accesses (every binding value must
    /// occur in the configuration).
    pub grounded: bool,
    /// Empty-response binding enumeration mode.
    pub empty_bindings: EmptyBindingMode,
    /// Worker threads for layer expansion (`0` is treated as 1).  Verdicts
    /// and witnesses do not depend on this value.
    pub threads: usize,
    /// Evaluate guards by scanning instead of through the per-position
    /// value indexes (the `ACCLTL_DISABLE_INDEXES=1` ablation, applied
    /// per-search by the oracles).  Guard caching is unaffected.
    pub disable_indexes: bool,
    /// Skip guard-verdict memoization (the `ACCLTL_DISABLE_GUARD_CACHE=1`
    /// ablation).  Verdicts, witnesses and budget accounting are
    /// byte-identical either way; only wall-clock moves.
    pub disable_guard_cache: bool,
    /// Per-relation size below which transition-structure relations are
    /// scanned rather than indexed (default
    /// [`accltl_relational::INDEX_CUTOFF`]; stamped by the oracles onto each
    /// state's base via `Instance::set_index_cutoff`).  A performance knob:
    /// never affects verdicts.
    pub index_cutoff: usize,
    /// Number of frontier tasks a pool worker claims (or steals) at a time
    /// (`0` is treated as 1).  Larger batches amortize deque locking on tiny
    /// tasks at the cost of coarser stealing.  Verdicts and witnesses do not
    /// depend on this value.
    pub steal_batch: usize,
    /// Re-run every monitoring-session step from scratch instead of reusing
    /// the persistent [`SessionState`] (the `ACCLTL_DISABLE_SESSION_REUSE=1`
    /// ablation).  Verdicts, witnesses, explored counts and consult totals
    /// are byte-identical either way; only wall-clock moves.
    pub disable_session_reuse: bool,
}

impl EngineConfig {
    /// The environment-independent baseline configuration.
    #[must_use]
    pub fn base() -> Self {
        EngineConfig {
            max_states: 200_000,
            max_response_size: 3,
            max_empty_bindings: 16,
            max_guard_checks: usize::MAX,
            max_response_group: MAX_RESPONSE_GROUP,
            grounded: false,
            empty_bindings: EmptyBindingMode::Enumerate,
            threads: 1,
            disable_indexes: false,
            disable_guard_cache: false,
            index_cutoff: INDEX_CUTOFF,
            steal_batch: 1,
            disable_session_reuse: false,
        }
    }

    /// [`EngineConfig::base`] with the `ACCLTL_*` environment variables
    /// folded in as defaults: [`THREADS_ENV_VAR`] seeds `threads`,
    /// [`INDEX_CUTOFF_ENV_VAR`] seeds `index_cutoff`,
    /// [`STEAL_BATCH_ENV_VAR`] seeds `steal_batch`, and
    /// `ACCLTL_DISABLE_INDEXES=1` / `ACCLTL_DISABLE_GUARD_CACHE=1` /
    /// `ACCLTL_DISABLE_SESSION_REUSE=1` set the
    /// corresponding ablation flags.  This is the single place the
    /// workspace reads those variables; every search front-end starts from
    /// it.  (The observability knobs `ACCLTL_TRACE` / `ACCLTL_STATS` follow
    /// the same read-once convention, in `accltl_obs::trace`.)
    #[must_use]
    pub fn from_env() -> Self {
        let mut config = EngineConfig::base();
        if let Some(n) = env_usize(THREADS_ENV_VAR) {
            config.threads = n;
        }
        if let Some(n) = env_usize(STEAL_BATCH_ENV_VAR) {
            config.steal_batch = n;
        }
        if let Some(n) = std::env::var(INDEX_CUTOFF_ENV_VAR)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            config.index_cutoff = n;
        }
        config.disable_indexes = env_flag(DISABLE_INDEXES_ENV_VAR);
        config.disable_guard_cache = env_flag(DISABLE_GUARD_CACHE_ENV_VAR);
        config.disable_session_reuse = env_flag(DISABLE_SESSION_REUSE_ENV_VAR);
        config
    }

    /// Sets the state budget.
    #[must_use]
    pub fn max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Sets the per-response size cap.
    #[must_use]
    pub fn max_response_size(mut self, max_response_size: usize) -> Self {
        self.max_response_size = max_response_size;
        self
    }

    /// Sets the empty-response binding cap.
    #[must_use]
    pub fn max_empty_bindings(mut self, max_empty_bindings: usize) -> Self {
        self.max_empty_bindings = max_empty_bindings;
        self
    }

    /// Sets the step-cost (guard-consult) budget.
    #[must_use]
    pub fn max_guard_checks(mut self, max_guard_checks: usize) -> Self {
        self.max_guard_checks = max_guard_checks;
        self
    }

    /// Sets the per-binding response-group cap (clamped to 31 at use).
    #[must_use]
    pub fn max_response_group(mut self, max_response_group: usize) -> Self {
        self.max_response_group = max_response_group;
        self
    }

    /// Restricts candidates to grounded accesses.
    #[must_use]
    pub fn grounded(mut self, grounded: bool) -> Self {
        self.grounded = grounded;
        self
    }

    /// Sets the empty-response binding enumeration mode.
    #[must_use]
    pub fn empty_bindings(mut self, empty_bindings: EmptyBindingMode) -> Self {
        self.empty_bindings = empty_bindings;
        self
    }

    /// Sets the worker-thread count (`0` is treated as 1).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Forces guard evaluation to scan instead of using value indexes.
    #[must_use]
    pub fn disable_indexes(mut self, disable_indexes: bool) -> Self {
        self.disable_indexes = disable_indexes;
        self
    }

    /// Disables guard-verdict memoization.
    #[must_use]
    pub fn disable_guard_cache(mut self, disable_guard_cache: bool) -> Self {
        self.disable_guard_cache = disable_guard_cache;
        self
    }

    /// Sets the per-relation indexing cutoff.
    #[must_use]
    pub fn index_cutoff(mut self, index_cutoff: usize) -> Self {
        self.index_cutoff = index_cutoff;
        self
    }

    /// Sets the pool steal-batch size (`0` is treated as 1).
    #[must_use]
    pub fn steal_batch(mut self, steal_batch: usize) -> Self {
        self.steal_batch = steal_batch;
        self
    }

    /// Makes monitoring sessions re-run every step from scratch.
    #[must_use]
    pub fn disable_session_reuse(mut self, disable_session_reuse: bool) -> Self {
        self.disable_session_reuse = disable_session_reuse;
        self
    }

    /// The effective response-group cap (masks are `u32`, so at most 31).
    fn group_cap(&self) -> usize {
        self.max_response_group.min(31)
    }
}

/// `EngineConfig::default()` is [`EngineConfig::from_env`].
impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::from_env()
    }
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).map(|v| v == "1").unwrap_or(false)
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Result of a frontier search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineOutcome {
    /// A witness access path was found (its final transition is the accepting
    /// one reported by the oracle).
    Witness {
        /// The witness path.
        witness: AccessPath,
    },
    /// The bounded witness space was exhausted without finding a witness.
    /// This is a *complete* enumeration of the witness space induced by the
    /// configured caps — callers may report a definitive negative verdict.
    Exhausted,
    /// The witness space was exhausted, but the per-binding response-group
    /// cap ([`EngineConfig::max_response_group`]) truncated it: some
    /// universe facts could never be revealed, so "no witness found" is not
    /// a completeness certificate.  Callers must report an indefinite
    /// verdict.
    Truncated {
        /// Number of states discovered.
        explored: usize,
    },
    /// The state budget was reached.
    OutOfStates {
        /// Number of states discovered before giving up.
        explored: usize,
    },
    /// The accumulated step cost exceeded [`EngineConfig::max_guard_checks`].
    OutOfBudget {
        /// Number of states discovered before giving up.
        explored: usize,
    },
}

/// Counters for the engine-level shared caches (prepared state contexts,
/// candidate enumerations and per-candidate contexts), summed over the
/// three maps.  Each map is size-capped: when an insert would grow a full
/// map, the map is cleared first and the dropped entries are counted as
/// evictions (generation eviction — constant-time bookkeeping, and a busy
/// engine promptly re-fills with its current working set).
///
/// These counters describe *work saved*, not the answer: the hit/miss
/// split varies with thread interleaving and batch composition, so the
/// field is deliberately excluded from [`EngineReport`] / [`SearchReport`]
/// equality.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCacheStats {
    /// Lookups answered from a shared cache.
    pub hits: u64,
    /// Lookups that had to compute (and then insert) their entry.
    pub misses: u64,
    /// Entries dropped by clear-on-full eviction.
    pub evictions: u64,
    /// Entries resident across the three maps when the snapshot was taken.
    pub entries: u64,
}

impl EngineCacheStats {
    /// Total lookups (`hits + misses`).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }
}

/// Per-property result of a [`BatchEngine`] run.
///
/// Equality ignores [`EngineReport::engine_cache`]: those counters are
/// engine-wide and scheduling-dependent, while every other field is
/// per-property and deterministic.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// The search outcome (witness embedded).
    pub outcome: EngineOutcome,
    /// Number of search states discovered (the start state counts).
    pub explored: usize,
    /// Accumulated [`StepOutcome::cost`], charged against
    /// [`EngineConfig::max_guard_checks`].
    pub cost: usize,
    /// The property oracle's guard-cache counters, when it keeps any.
    pub cache: Option<GuardCacheStats>,
    /// Engine-level shared-cache counters at the end of the run (the same
    /// snapshot on every report of one [`BatchEngine::run`] call).
    pub engine_cache: EngineCacheStats,
}

impl PartialEq for EngineReport {
    fn eq(&self, other: &Self) -> bool {
        self.outcome == other.outcome
            && self.explored == other.explored
            && self.cost == other.cost
            && self.cache == other.cache
    }
}

impl Eq for EngineReport {}

/// Per-property report of a search front-end (`logic::bounded`,
/// `automata::emptiness`): one value replacing the historical
/// `(result, stats)` pairs.
///
/// Equality ignores [`SearchReport::engine_cache`] for the same reason as
/// [`EngineReport`]: the engine-wide counters depend on scheduling and
/// batch composition, the per-property fields do not.
#[derive(Debug, Clone)]
pub struct SearchReport<V> {
    /// The front-end verdict; witnesses are embedded in it.
    pub verdict: V,
    /// Number of search states discovered (summed over sub-searches when
    /// the front-end decomposes the property, e.g. emptiness chains).
    pub explored: usize,
    /// Accumulated step cost (guard consults) charged against the budget.
    pub cost: usize,
    /// Guard-cache counters for this property's consults.  The hit/miss
    /// *split* may vary with threads and batch neighbours; the total
    /// (`hits + misses`) and the verdict are deterministic.
    pub cache: GuardCacheStats,
    /// Engine-level shared-cache counters for the run that produced this
    /// report (summed over waves when the front-end runs several batches).
    pub engine_cache: EngineCacheStats,
}

impl<V: PartialEq> PartialEq for SearchReport<V> {
    fn eq(&self, other: &Self) -> bool {
        self.verdict == other.verdict
            && self.explored == other.explored
            && self.cost == other.cost
            && self.cache == other.cache
    }
}

impl<V: Eq> Eq for SearchReport<V> {}

impl<V> SearchReport<V> {
    /// Maps the verdict, keeping the accounting.
    pub fn map<W>(self, f: impl FnOnce(V) -> W) -> SearchReport<W> {
        SearchReport {
            verdict: f(self.verdict),
            explored: self.explored,
            cost: self.cost,
            cache: self.cache,
            engine_cache: self.engine_cache,
        }
    }

    /// Renders the report's accounting as a single-line JSON object.
    /// Verdicts are front-end-specific, so the caller supplies the already
    /// rendered `verdict` string.
    #[must_use]
    pub fn to_json(&self, verdict: &str) -> String {
        JsonObject::new()
            .str("verdict", verdict)
            .num("explored", self.explored as u64)
            .num("cost", self.cost as u64)
            .raw(
                "guard_cache",
                JsonObject::new()
                    .num("hits", self.cache.hits)
                    .num("misses", self.cache.misses)
                    .build(),
            )
            .raw(
                "engine_cache",
                JsonObject::new()
                    .num("hits", self.engine_cache.hits)
                    .num("misses", self.engine_cache.misses)
                    .num("evictions", self.engine_cache.evictions)
                    .num("entries", self.engine_cache.entries)
                    .build(),
            )
            .build()
    }
}

/// One property of a batch: an oracle, its start state, the fact universe
/// it draws responses from, extra constants eligible as guessed binding
/// values, and its own engine configuration.
pub struct PropertySpec<O: StepOracle> {
    /// The property's step oracle.
    pub oracle: O,
    /// The logical start state.
    pub start: O::State,
    /// The property's fact universe.
    pub universe: FactUniverse,
    /// Extra values (formula or automaton constants) eligible as guessed
    /// binding values.
    pub constants: BTreeSet<Value>,
    /// The property's engine configuration.
    pub config: EngineConfig,
}

/// The placeholder value used for guessed binding positions (a value that can
/// never occur in real data or formula constants).
#[must_use]
pub fn placeholder_value() -> Value {
    Value::str("\u{2606}any")
}

/// Deterministic *type-appropriate* fresh guesses for a binding position of
/// the given declared type, none of which occur in `pool`: any witness
/// binding value outside the pool can be renamed to a fresh one, so a single
/// fresh representative per type keeps the bounded enumeration complete —
/// while staying a *valid* access value (an ill-typed guess could only ever
/// produce witnesses that fail `AccessSchema::validate_access`).
///
/// Text positions (and positions of unknown type) use [`placeholder_value`];
/// integer positions use one past the largest pool integer; boolean
/// positions enumerate both values (the domain is finite, so "fresh" may not
/// exist — completeness needs both).
fn fresh_guesses(expected: Option<DataType>, pool: &[Value]) -> Vec<Value> {
    match expected {
        None | Some(DataType::Text) => vec![placeholder_value()],
        Some(DataType::Integer) => {
            let next = pool
                .iter()
                .filter_map(|v| match v {
                    Value::Int(i) => Some(*i),
                    _ => None,
                })
                .max()
                .map_or(0, |max| max.saturating_add(1));
            vec![Value::Int(next)]
        }
        Some(DataType::Boolean) => vec![Value::Bool(false), Value::Bool(true)],
    }
}

/// A revealed-fact set: a fixed-width bitset over interned fact indices.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct FactSet {
    words: Vec<u64>,
}

impl FactSet {
    fn empty(universe_len: usize) -> Self {
        FactSet {
            words: vec![0; universe_len.div_ceil(64)],
        }
    }

    fn insert(&mut self, index: u32) {
        self.words[(index / 64) as usize] |= 1u64 << (index % 64);
    }

    fn contains(&self, index: u32) -> bool {
        (self.words[(index / 64) as usize] >> (index % 64)) & 1 == 1
    }

    /// Iterates over the set indices in ascending order.
    fn ones(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(word, &bits)| {
            std::iter::successors((bits != 0).then_some(bits), |&x| {
                let rest = x & (x - 1);
                (rest != 0).then_some(rest)
            })
            .map(move |x| (word as u32) * 64 + x.trailing_zeros())
        })
    }

    /// The same set with trailing zero words dropped: a width-independent
    /// key, so configurations reached in different batch waves (after the
    /// intern table has grown) still share one context-cache entry.
    fn trimmed(&self) -> FactSet {
        let mut words = self.words.clone();
        while words.last() == Some(&0) {
            words.pop();
        }
        FactSet { words }
    }
}

/// One discovered search state in a property's arena.
struct Node<S> {
    revealed: FactSet,
    state: S,
    /// Arena index of the parent (meaningless for the root).
    parent: u32,
    /// The access and response indices that produced this state (`None` for
    /// the root).
    step: Option<(Access, Vec<u32>)>,
}

/// A candidate transition owned by the expansion phase.
struct OwnedCandidate {
    method: usize,
    binding: Tuple,
    added: Vec<u32>,
}

/// Everything the candidate enumeration of [`BatchEngine::candidates`]
/// depends on besides the revealed set: properties with equal signatures
/// (same universe facts per method, same binding pool, same caps) produce
/// identical candidate lists at every configuration, so their enumerations
/// are shared through [`BatchEngine::candidate_cache`].
#[derive(PartialEq)]
struct CandidateClass {
    method_facts: Vec<Vec<u32>>,
    binding_pool: Vec<Value>,
    group_cap: usize,
    max_response_size: usize,
    max_empty_bindings: usize,
    empty_bindings: EmptyBindingMode,
    grounded: bool,
}

type Expansion<S> = (Arc<Vec<OwnedCandidate>>, Vec<StepOutcome<S>>);

/// Interns `(relation, tuple)` facts into one shared index space.  Indices
/// are stable for the lifetime of the engine, so overlays, revealed sets
/// and context-cache keys mean the same thing across properties and across
/// successive [`BatchEngine::run`] calls.
#[derive(Default)]
struct FactInterner {
    table: FactUniverse,
    ids: HashMap<(RelId, Tuple), u32>,
}

impl FactInterner {
    fn intern(&mut self, rel: RelId, tuple: &Tuple) -> u32 {
        if let Some(&id) = self.ids.get(&(rel, tuple.clone())) {
            return id;
        }
        let id = self.table.facts.len() as u32;
        self.table.facts.push((rel, tuple.clone()));
        self.ids.insert((rel, tuple.clone()), id);
        id
    }
}

/// The per-property half of a batch run: everything whose value may differ
/// between properties — frontier, arena, dedup set, budget, truncation
/// flag, binding pool — mirroring exactly the state a standalone
/// single-property search would keep.
struct PropertyRun<O: StepOracle> {
    oracle: O,
    start: O::State,
    /// The property's own universe (used for oracle `step` calls, candidate
    /// responses and witness reconstruction, so per-property behaviour never
    /// depends on batch neighbours' facts).
    universe: FactUniverse,
    /// Interned id → index in this property's universe.
    local_of: HashMap<u32, u32>,
    /// Per method: interned indices of its relation's universe facts, in
    /// universe order.
    method_facts: Vec<Vec<u32>>,
    truncated: bool,
    binding_pool: Vec<Value>,
    config: EngineConfig,
    chunk_len: usize,
    shares_ctx: bool,
    /// Index into the engine's candidate-class registry (properties with
    /// equal classes share candidate enumerations per configuration).
    candidate_class: usize,
    nodes: Vec<Node<O::State>>,
    seen: HashSet<(FactSet, O::State)>,
    frontier: Vec<u32>,
    cursor: usize,
    next: Vec<u32>,
    spent: usize,
    report: Option<EngineReport>,
}

impl<O: StepOracle> PropertyRun<O> {
    fn finish(&mut self, outcome: EngineOutcome) {
        // `engine_cache` is engine-wide; `BatchEngine::run` stamps the
        // final snapshot over this placeholder on every report it returns.
        self.report = Some(EngineReport {
            outcome,
            explored: self.nodes.len(),
            cost: self.spent,
            cache: self.oracle.cache_stats(),
            engine_cache: EngineCacheStats::default(),
        });
    }
}

/// A by-configuration cache shared across properties: entries are keyed by
/// (candidate class index, trimmed revealed set) and handed out behind an
/// `Arc` so concurrent frontier workers clone the handle, not the payload.
type SharedByConfig<T> = RwLock<HashMap<(usize, FactSet), Arc<Vec<T>>>>;

/// Resident-entry cap for each of the engine's three shared caches.  When
/// an insert would grow a full map, the map is cleared first (generation
/// eviction) and the dropped entries are counted in
/// [`EngineCacheStats::evictions`].  Configuration spaces that fit below
/// the cap — every workload in the test and bench suites — never evict;
/// the cap only bounds memory on adversarial reveal spaces, where the
/// configuration count is exponential in the universe.
const ENGINE_CACHE_CAP: usize = 8192;

/// The multi-property frontier engine: interns all properties' universes
/// into one fact table, shares per-configuration work (overlays, prepared
/// oracle contexts, and — through shared [`GuardCache`] handles inside the
/// oracles — guard verdicts) across properties, and drives each property's
/// own frontier to its own verdict.  See the module docs for the
/// determinism contract.
///
/// [`GuardCache`]: accltl_relational::GuardCache
pub struct BatchEngine<'a, O: StepOracle> {
    methods: Vec<&'a AccessMethod>,
    /// Per method: the declared column types of its input positions
    /// (`None` when the relation is unknown to the schema).  Empty-response
    /// binding enumeration only guesses type-correct values, so witnesses
    /// always pass `AccessSchema::validate_access` — an ill-typed binding
    /// could never be a real access.
    method_input_types: Vec<Option<Vec<DataType>>>,
    initial: Arc<Instance>,
    interner: FactInterner,
    /// Interned ids of facts assumed revealed at the root on top of the
    /// initial instance (a monitoring session's accumulated responses).  A
    /// run with assumed facts is configuration-for-configuration identical
    /// to a run whose initial instance contains them: the root reveals
    /// them, the candidate enumeration never re-reveals them, and the
    /// overlay materializes them — only the base/delta split differs, which
    /// the content-addressed caches are built to ignore.
    assumed: HashSet<u32>,
    /// Prepared oracle contexts keyed by trimmed revealed set, shared
    /// across properties and states when the oracle opts in
    /// ([`StepOracle::shares_ctx`]).
    ctx_cache: RwLock<HashMap<FactSet, Arc<O::StateCtx>>>,
    /// Registered candidate classes (see [`CandidateClass`]); indices are
    /// the cache key half carried by each [`PropertyRun`].
    candidate_classes: Vec<CandidateClass>,
    /// Candidate enumerations keyed by (candidate class, trimmed revealed
    /// set).  The enumeration is a pure function of that key, so sharing it
    /// across properties — and across obligation states of one property —
    /// changes no candidate list, only the time spent rebuilding it.
    candidate_cache: SharedByConfig<OwnedCandidate>,
    /// Prepared per-candidate oracle contexts (transition structures),
    /// indexed like the corresponding `candidate_cache` entry and shared
    /// under the same purity contract when the oracle opts in
    /// ([`StepOracle::shares_ctx`]).
    candidate_ctx_cache: SharedByConfig<O::CandidateCtx>,
    /// Shared-cache lookup counters, summed over the three maps (see
    /// [`EngineCacheStats`]); relaxed atomics, since they are counters
    /// rather than synchronization.
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    /// Cache-counter snapshot as of the last [`BatchEngine::run`] return —
    /// the counters are cumulative across runs (emptiness waves), so the
    /// process-wide metrics registry is fed per-run *deltas* to keep
    /// `engine.cache.*` reconcilable with the final report snapshot.
    reported_cache: EngineCacheStats,
}

impl<'a, O: StepOracle> BatchEngine<'a, O> {
    /// Creates a batch engine over a schema and shared initial instance.
    pub fn new(schema: &'a AccessSchema, initial: Arc<Instance>) -> Self {
        let methods: Vec<&AccessMethod> = schema.methods().collect();
        let method_input_types = methods
            .iter()
            .map(|method| {
                let relation = schema
                    .schema()
                    .require_relation_id(method.relation_id())
                    .ok()?;
                Some(
                    method
                        .input_positions()
                        .iter()
                        .map(|&position| relation.column_types()[position])
                        .collect(),
                )
            })
            .collect();
        BatchEngine {
            methods,
            method_input_types,
            initial,
            interner: FactInterner::default(),
            assumed: HashSet::new(),
            ctx_cache: RwLock::new(HashMap::new()),
            candidate_classes: Vec::new(),
            candidate_cache: RwLock::new(HashMap::new()),
            candidate_ctx_cache: RwLock::new(HashMap::new()),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_evictions: AtomicU64::new(0),
            reported_cache: EngineCacheStats::default(),
        }
    }

    /// Marks a fact as revealed at the root of every subsequent run, on top
    /// of the initial instance.  This is how a monitoring session extends
    /// `Conf(p, I0)` by an access's response without rebasing the engine:
    /// subsequent runs are byte-identical (verdicts, witnesses, explored
    /// counts, consult totals) to runs of a fresh engine whose initial
    /// instance additionally contains the assumed facts.
    pub fn assume_revealed(&mut self, rel: RelId, tuple: &Tuple) {
        let id = self.interner.intern(rel, tuple);
        self.assumed.insert(id);
    }

    /// A snapshot of the engine's shared-cache counters.  [`BatchEngine::run`]
    /// stamps this onto every report it returns; front-ends that drive
    /// several runs through one engine (emptiness waves) read it once at
    /// the end instead.
    #[must_use]
    pub fn engine_cache_stats(&self) -> EngineCacheStats {
        let entries = self.ctx_cache.read().expect("ctx cache poisoned").len()
            + self
                .candidate_cache
                .read()
                .expect("candidate cache poisoned")
                .len()
            + self
                .candidate_ctx_cache
                .read()
                .expect("candidate ctx cache poisoned")
                .len();
        EngineCacheStats {
            hits: self.cache_hits.load(Ordering::Relaxed),
            misses: self.cache_misses.load(Ordering::Relaxed),
            evictions: self.cache_evictions.load(Ordering::Relaxed),
            entries: entries as u64,
        }
    }

    /// First-insertion-wins insert into one of the shared cache maps,
    /// clearing the map first when the insert would grow it past
    /// [`ENGINE_CACHE_CAP`] (the cleared entries count as evictions).
    fn insert_capped<K: Eq + Hash, V: Clone>(
        &self,
        cache: &RwLock<HashMap<K, V>>,
        key: K,
        value: V,
    ) -> V {
        let mut map = cache.write().expect("engine cache poisoned");
        if map.len() >= ENGINE_CACHE_CAP && !map.contains_key(&key) {
            self.cache_evictions
                .fetch_add(map.len() as u64, Ordering::Relaxed);
            map.clear();
        }
        map.entry(key).or_insert(value).clone()
    }

    /// Runs every property to its own verdict, sharing configuration-space
    /// work, and returns one report per property in input order.
    ///
    /// May be called repeatedly on one engine: interned facts and shared
    /// contexts persist, so later calls (e.g. successive emptiness-chain
    /// waves) keep hitting earlier calls' work.
    pub fn run(&mut self, properties: Vec<PropertySpec<O>>) -> Vec<EngineReport> {
        let _run_span =
            trace::span_fields("engine.run", &[("properties", properties.len() as u64)]);
        let mut runs: Vec<PropertyRun<O>> = properties
            .into_iter()
            .map(|spec| self.register(spec))
            .collect();
        // The root revealed set spans the whole intern table: every interned
        // fact already present in the initial instance.  For any single
        // property this is its own "universe ∩ initial" root plus bits for
        // facts outside its universe — bits its candidate enumeration never
        // inspects and whose overlay pushes are no-ops (the base instance
        // already contains them), so per-property behaviour is unchanged
        // while all properties agree on what a configuration *is*.
        let mut root = FactSet::empty(self.interner.table.len());
        for (id, rel, tuple) in self.interner.table.iter() {
            if self.initial.contains(rel, tuple) || self.assumed.contains(&id) {
                root.insert(id);
            }
        }
        for run in &mut runs {
            let key = (root.clone(), run.start.clone());
            run.nodes.push(Node {
                revealed: key.0.clone(),
                state: key.1.clone(),
                parent: 0,
                step: None,
            });
            run.seen.insert(key);
            run.frontier.push(0);
        }
        // Round-robin one frontier chunk per live property per global
        // round: every property advances in BFS order exactly as it would
        // alone, while properties at similar depths reach shared
        // configurations close together in time (maximizing context- and
        // guard-cache reuse).  One persistent worker set (see
        // [`crate::pool`]) expands the union of all properties' chunks, so
        // idle workers steal across properties; results merge per property
        // in frontier order, so verdicts, witnesses, budget cutoffs and
        // consult totals are independent of `threads` and `steal_batch`.
        let threads = runs
            .iter()
            .map(|run| run.config.threads.max(1))
            .max()
            .unwrap_or(1);
        let steal_batch = runs
            .iter()
            .map(|run| run.config.steal_batch.max(1))
            .max()
            .unwrap_or(1);
        let this: &BatchEngine<'a, O> = self;
        let runs = RwLock::new(runs);
        pool::scoped(
            threads,
            steal_batch,
            |&(run_index, node_id): &(usize, u32)| {
                // EXPAND phase: read-locked, so any number of workers
                // expand concurrently; the write-locked SELECT/MERGE
                // phases never overlap with it.
                let runs = runs.read().expect("batch runs poisoned");
                this.expand(&runs[run_index], node_id)
            },
            |pool| loop {
                let _round_span = trace::span("engine.round");
                // SELECT: take one frontier chunk per live property.
                let select_span = trace::span("engine.select");
                let mut tasks: Vec<(usize, u32)> = Vec::new();
                let mut spans: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
                {
                    let mut runs = runs.write().expect("batch runs poisoned");
                    for (run_index, run) in runs.iter_mut().enumerate() {
                        if run.report.is_some() {
                            continue;
                        }
                        let begin = tasks.len();
                        let end = (run.cursor + run.chunk_len).min(run.frontier.len());
                        tasks.extend(
                            run.frontier[run.cursor..end]
                                .iter()
                                .map(|&node_id| (run_index, node_id)),
                        );
                        run.cursor = end;
                        spans.push((run_index, begin..tasks.len()));
                    }
                }
                drop(select_span);
                if spans.is_empty() {
                    break;
                }
                // EXPAND: all properties' tasks through one pool round.
                let expand_span =
                    trace::span_fields("engine.expand", &[("tasks", tasks.len() as u64)]);
                let node_ids: Vec<u32> = tasks.iter().map(|&(_, node_id)| node_id).collect();
                let mut expansions = pool.run(tasks).into_iter();
                drop(expand_span);
                // MERGE: per property, in frontier order.
                let _merge_span = trace::span("engine.merge");
                let mut runs = runs.write().expect("batch runs poisoned");
                for (run_index, span) in spans {
                    let chunk: Vec<_> = expansions.by_ref().take(span.len()).collect();
                    this.merge_chunk(&mut runs[run_index], &node_ids[span], chunk);
                }
            },
        );
        let stats = self.engine_cache_stats();
        let reports: Vec<EngineReport> = runs
            .into_inner()
            .expect("batch runs poisoned")
            .into_iter()
            .map(|run| {
                let mut report = run.report.expect("every finished run has a report");
                report.engine_cache = stats;
                report
            })
            .collect();
        self.reconcile_metrics(stats, &reports);
        reports
    }

    /// Feeds one run's aggregates into the process-wide metrics registry:
    /// per-report explored/cost totals plus the *delta* of the cumulative
    /// engine cache counters since the previous run (so `engine.cache.*`
    /// registry deltas reconcile exactly with report snapshots even when
    /// one engine serves many runs, as in emptiness waves).
    fn reconcile_metrics(&mut self, stats: EngineCacheStats, reports: &[EngineReport]) {
        metrics::add("engine.runs", 1);
        metrics::add("engine.properties", reports.len() as u64);
        for report in reports {
            metrics::add("engine.explored", report.explored as u64);
            metrics::add("engine.cost", report.cost as u64);
            trace::event(
                "engine.report",
                &[
                    ("explored", report.explored as u64),
                    ("cost", report.cost as u64),
                ],
            );
        }
        metrics::add(
            "engine.cache.hits",
            stats.hits.saturating_sub(self.reported_cache.hits),
        );
        metrics::add(
            "engine.cache.misses",
            stats.misses.saturating_sub(self.reported_cache.misses),
        );
        metrics::add(
            "engine.cache.evictions",
            stats
                .evictions
                .saturating_sub(self.reported_cache.evictions),
        );
        metrics::gauge("engine.cache.entries").max(stats.entries);
        self.reported_cache = stats;
    }

    /// Interns a property's universe and sets up its run state.
    fn register(&mut self, spec: PropertySpec<O>) -> PropertyRun<O> {
        let PropertySpec {
            oracle,
            start,
            universe,
            constants,
            config,
        } = spec;
        let fact_ids: Vec<u32> = universe
            .iter()
            .map(|(_, rel, tuple)| self.interner.intern(rel, tuple))
            .collect();
        let local_of: HashMap<u32, u32> = fact_ids
            .iter()
            .enumerate()
            .map(|(local, &id)| (id, local as u32))
            .collect();
        let group_cap = config.group_cap();
        let mut truncated = false;
        let method_facts: Vec<Vec<u32>> = self
            .methods
            .iter()
            .map(|method| {
                let ids: Vec<u32> = universe
                    .iter()
                    .zip(&fact_ids)
                    .filter(|((_, rel, _), _)| *rel == method.relation_id())
                    .map(|(_, &id)| id)
                    .collect();
                // Revealed sets only grow from the root's (the initial
                // instance's facts), so grouping the facts unrevealed *at the
                // root* bounds every per-state group the enumeration will
                // ever see.
                let mut groups: BTreeMap<Tuple, usize> = BTreeMap::new();
                for &id in &ids {
                    let (rel, tuple) = self.interner.table.fact(id);
                    if self.initial.contains(rel, tuple) || self.assumed.contains(&id) {
                        continue;
                    }
                    let projection = tuple.project(method.input_positions());
                    *groups.entry(projection).or_default() += 1;
                }
                truncated |= groups.values().any(|&size| size > group_cap);
                ids
            })
            .collect();
        let mut pool = universe.values();
        pool.extend(constants.iter().copied());
        let binding_pool: Vec<Value> = pool.into_iter().collect();
        let class = CandidateClass {
            method_facts: method_facts.clone(),
            binding_pool: binding_pool.clone(),
            group_cap,
            max_response_size: config.max_response_size,
            max_empty_bindings: config.max_empty_bindings,
            empty_bindings: config.empty_bindings,
            grounded: config.grounded,
        };
        let candidate_class = match self.candidate_classes.iter().position(|c| *c == class) {
            Some(index) => index,
            None => {
                self.candidate_classes.push(class);
                self.candidate_classes.len() - 1
            }
        };
        let threads = config.threads.max(1);
        let shares_ctx = oracle.shares_ctx();
        PropertyRun {
            oracle,
            start,
            universe,
            local_of,
            method_facts,
            truncated,
            binding_pool,
            config,
            // Small chunks bound the work wasted past a terminal verdict
            // while keeping every thread busy; chunk merging runs in
            // frontier order, so results are independent of the thread
            // count.
            chunk_len: if threads > 1 { threads * 4 } else { 1 },
            shares_ctx,
            candidate_class,
            nodes: Vec::new(),
            seen: HashSet::new(),
            frontier: Vec::new(),
            cursor: 0,
            next: Vec::new(),
            spent: 0,
            report: None,
        }
    }

    /// Merges one property's chunk of expansion results in frontier order,
    /// applying budget, witness and state-cap cutoffs exactly as a
    /// standalone search would, then swaps in the next BFS layer when the
    /// frontier is spent.  `node_ids` are the chunk's frontier nodes in
    /// selection order; `expansions` align with them positionally (the
    /// [`crate::pool`] contract).
    fn merge_chunk(
        &self,
        run: &mut PropertyRun<O>,
        node_ids: &[u32],
        expansions: Vec<Expansion<O::State>>,
    ) {
        for (&node_id, (candidates, outcomes)) in node_ids.iter().zip(expansions) {
            for (candidate, outcome) in candidates.iter().zip(outcomes) {
                run.spent = run.spent.saturating_add(outcome.cost);
                if run.spent > run.config.max_guard_checks {
                    let explored = run.nodes.len();
                    run.finish(EngineOutcome::OutOfBudget { explored });
                    return;
                }
                if !outcome.accept && outcome.successors.is_empty() {
                    continue;
                }
                let access = Access::new(
                    self.methods[candidate.method].name_sym(),
                    candidate.binding.clone(),
                );
                if outcome.accept {
                    let witness = self.reconstruct(run, node_id, access, &candidate.added);
                    run.finish(EngineOutcome::Witness { witness });
                    return;
                }
                for successor in outcome.successors {
                    let mut new_revealed = run.nodes[node_id as usize].revealed.clone();
                    for &index in &candidate.added {
                        new_revealed.insert(index);
                    }
                    let key = (new_revealed, successor);
                    if run.seen.contains(&key) {
                        continue;
                    }
                    run.seen.insert(key.clone());
                    run.nodes.push(Node {
                        revealed: key.0,
                        state: key.1,
                        parent: node_id,
                        step: Some((access.clone(), candidate.added.clone())),
                    });
                    if run.nodes.len() >= run.config.max_states {
                        let explored = run.nodes.len();
                        run.finish(EngineOutcome::OutOfStates { explored });
                        return;
                    }
                    run.next.push((run.nodes.len() - 1) as u32);
                }
            }
        }
        if run.cursor >= run.frontier.len() {
            run.frontier = std::mem::take(&mut run.next);
            run.cursor = 0;
            if run.frontier.is_empty() {
                let outcome = if run.truncated {
                    EngineOutcome::Truncated {
                        explored: run.nodes.len(),
                    }
                } else {
                    EngineOutcome::Exhausted
                };
                run.finish(outcome);
            }
        }
    }

    /// Materializes the before-configuration of a revealed set as an
    /// overlay over the shared initial instance.  Pushes run in ascending
    /// interned-index order; pushes of facts the base already contains are
    /// no-ops, so the result is exactly the configuration a standalone
    /// search would build.
    fn overlay_of(&self, revealed: &FactSet) -> InstanceOverlay {
        let mut before = InstanceOverlay::new(self.initial.clone());
        for index in revealed.ones() {
            let (rel, tuple) = self.interner.table.fact(index);
            before.push_fact(rel, tuple.clone());
        }
        before
    }

    /// Expands one node: obtains the oracle context for its configuration
    /// (shared across properties/states when the oracle allows), and
    /// evaluates every candidate transition.
    fn expand(&self, run: &PropertyRun<O>, node_id: u32) -> Expansion<O::State> {
        let node = &run.nodes[node_id as usize];
        enum Ctx<C> {
            Shared(Arc<C>),
            Owned(C),
        }
        let mut before: Option<InstanceOverlay> = None;
        let ctx = if run.shares_ctx {
            let key = node.revealed.trimmed();
            let cached = self
                .ctx_cache
                .read()
                .expect("ctx cache poisoned")
                .get(&key)
                .cloned();
            let shared = match cached {
                Some(ctx) => {
                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                    ctx
                }
                None => {
                    self.cache_misses.fetch_add(1, Ordering::Relaxed);
                    let overlay = self.overlay_of(&node.revealed);
                    let prepared = Arc::new(run.oracle.prepare(&overlay));
                    before = Some(overlay);
                    // A racing worker may have prepared the same
                    // configuration; keep the first insertion so every
                    // later expansion shares one context.
                    self.insert_capped(&self.ctx_cache, key, prepared)
                }
            };
            Ctx::Shared(shared)
        } else {
            let overlay = self.overlay_of(&node.revealed);
            let prepared = run.oracle.prepare(&overlay);
            before = Some(overlay);
            Ctx::Owned(prepared)
        };
        let known = run.config.grounded.then(|| {
            before
                .get_or_insert_with(|| self.overlay_of(&node.revealed))
                .active_domain()
        });
        let ctx_ref: &O::StateCtx = match &ctx {
            Ctx::Shared(arc) => arc,
            Ctx::Owned(owned) => owned,
        };
        let candidates = self.shared_candidates(run, &node.revealed, known.as_ref());
        let prepared = run
            .shares_ctx
            .then(|| self.shared_candidate_ctxs(run, ctx_ref, &candidates, &node.revealed));
        let mut local_added: Vec<u32> = Vec::new();
        let mut outcomes = Vec::with_capacity(candidates.len());
        for (index, candidate) in candidates.iter().enumerate() {
            local_added.clear();
            local_added.extend(candidate.added.iter().map(|id| run.local_of[id]));
            let borrowed = Candidate {
                method: self.methods[candidate.method],
                binding: &candidate.binding,
                added: &local_added,
            };
            let outcome = match &prepared {
                Some(ctxs) => {
                    run.oracle
                        .step(&node.state, ctx_ref, &ctxs[index], &borrowed, &run.universe)
                }
                None => {
                    let ctx = run
                        .oracle
                        .prepare_candidate(ctx_ref, &borrowed, &run.universe);
                    run.oracle
                        .step(&node.state, ctx_ref, &ctx, &borrowed, &run.universe)
                }
            };
            outcomes.push(outcome);
        }
        (candidates, outcomes)
    }

    /// The prepared per-candidate contexts of a configuration, indexed like
    /// its [`BatchEngine::shared_candidates`] list; computed once per
    /// (candidate class, configuration) and shared across properties and
    /// logical states.  Only called for oracles asserting
    /// [`StepOracle::shares_ctx`], whose candidate preparation is a pure
    /// function of the candidate's content; first insertion wins under a
    /// race, so every expansion sees one context vector.
    fn shared_candidate_ctxs(
        &self,
        run: &PropertyRun<O>,
        ctx: &O::StateCtx,
        candidates: &[OwnedCandidate],
        revealed: &FactSet,
    ) -> Arc<Vec<O::CandidateCtx>> {
        let key = (run.candidate_class, revealed.trimmed());
        let cached = self
            .candidate_ctx_cache
            .read()
            .expect("candidate ctx cache poisoned")
            .get(&key)
            .cloned();
        if let Some(ctxs) = cached {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return ctxs;
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let mut local_added: Vec<u32> = Vec::new();
        let mut built = Vec::with_capacity(candidates.len());
        for candidate in candidates {
            local_added.clear();
            local_added.extend(candidate.added.iter().map(|id| run.local_of[id]));
            built.push(run.oracle.prepare_candidate(
                ctx,
                &Candidate {
                    method: self.methods[candidate.method],
                    binding: &candidate.binding,
                    added: &local_added,
                },
                &run.universe,
            ));
        }
        self.insert_capped(&self.candidate_ctx_cache, key, Arc::new(built))
    }

    /// The candidate enumeration of a configuration, computed once per
    /// (candidate class, configuration) and shared across properties and
    /// obligation states ([`CandidateClass`]); first insertion wins under a
    /// race, so every expansion of the configuration sees one list.
    fn shared_candidates(
        &self,
        run: &PropertyRun<O>,
        revealed: &FactSet,
        known_values: Option<&BTreeSet<Value>>,
    ) -> Arc<Vec<OwnedCandidate>> {
        let key = (run.candidate_class, revealed.trimmed());
        let cached = self
            .candidate_cache
            .read()
            .expect("candidate cache poisoned")
            .get(&key)
            .cloned();
        match cached {
            Some(candidates) => {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                candidates
            }
            None => {
                self.cache_misses.fetch_add(1, Ordering::Relaxed);
                let computed = Arc::new(self.candidates(run, revealed, known_values));
                self.insert_capped(&self.candidate_cache, key, computed)
            }
        }
    }

    /// Enumerates the candidate transitions available from a state: per
    /// method, non-empty responses grouped by the binding they are compatible
    /// with (bounded subsets), then empty responses with guessed bindings.
    /// `added` holds *interned* indices.
    fn candidates(
        &self,
        run: &PropertyRun<O>,
        revealed: &FactSet,
        known_values: Option<&BTreeSet<Value>>,
    ) -> Vec<OwnedCandidate> {
        let mut candidates = Vec::new();
        for (method_index, method) in self.methods.iter().enumerate() {
            // Group this method's unrevealed facts (precomputed indices) by
            // their projection onto the input positions (a well-formed
            // response must agree with the binding on those positions).
            let mut groups: BTreeMap<Tuple, Vec<u32>> = BTreeMap::new();
            for &id in &run.method_facts[method_index] {
                if revealed.contains(id) {
                    continue;
                }
                let projection = self
                    .interner
                    .table
                    .fact(id)
                    .1
                    .project(method.input_positions());
                groups.entry(projection).or_default().push(id);
            }
            let group_cap = run.config.group_cap();
            for (binding, members) in &groups {
                if let Some(known) = known_values {
                    if !binding.values().iter().all(|v| known.contains(v)) {
                        continue;
                    }
                }
                // Enumerate non-empty subsets of the group up to the response
                // size cap.
                let size = members.len().min(group_cap);
                for mask in 1u32..(1u32 << size) {
                    if (mask.count_ones() as usize) > run.config.max_response_size {
                        continue;
                    }
                    candidates.push(OwnedCandidate {
                        method: method_index,
                        binding: binding.clone(),
                        added: (0..size)
                            .filter(|i| mask & (1 << i) != 0)
                            .map(|i| members[i])
                            .collect(),
                    });
                }
            }
            // Empty responses: the access is made but reveals nothing.
            match run.config.empty_bindings {
                EmptyBindingMode::Placeholder => candidates.push(OwnedCandidate {
                    method: method_index,
                    binding: self.placeholder_binding(run, method_index),
                    added: Vec::new(),
                }),
                EmptyBindingMode::Enumerate => {
                    for binding in self.empty_response_bindings(run, method_index, known_values) {
                        candidates.push(OwnedCandidate {
                            method: method_index,
                            binding,
                            added: Vec::new(),
                        });
                    }
                }
            }
        }
        candidates
    }

    /// Candidate bindings for empty responses: every universe value and
    /// search constant (any of them may flow into a binding via dataflow
    /// atoms) plus, when not grounded, fresh guesses; under grounded
    /// semantics only values of the configuration qualify.  Each input
    /// position only draws values of its declared column type (labelled
    /// nulls aside) — an ill-typed binding can never be a real access, so
    /// guessing one could only ever produce invalid witnesses — and the
    /// fresh guesses are type-appropriate too ([`fresh_guesses`]), keeping
    /// the enumeration complete for non-text positions.
    fn empty_response_bindings(
        &self,
        run: &PropertyRun<O>,
        method_index: usize,
        known_values: Option<&BTreeSet<Value>>,
    ) -> Vec<Tuple> {
        let method = self.methods[method_index];
        let input_types = self.method_input_types[method_index].as_deref();
        let base_pool: Vec<Value> = match known_values {
            Some(known) => run
                .binding_pool
                .iter()
                .filter(|v| known.contains(v))
                .copied()
                .collect(),
            None => run.binding_pool.clone(),
        };
        let mut bindings: Vec<Vec<Value>> = vec![Vec::new()];
        for slot in 0..method.input_positions().len() {
            let expected = input_types.map(|types| types[slot]);
            let mut slot_values: Vec<Value> = base_pool
                .iter()
                .filter(|v| !expected.is_some_and(|t| !v.is_labelled_null() && v.data_type() != t))
                .copied()
                .collect();
            if known_values.is_none() {
                for fresh in fresh_guesses(expected, &slot_values) {
                    if let Err(at) = slot_values.binary_search(&fresh) {
                        slot_values.insert(at, fresh);
                    }
                }
            }
            let mut next = Vec::new();
            for prefix in &bindings {
                for v in &slot_values {
                    if next.len() >= run.config.max_empty_bindings {
                        break;
                    }
                    let mut extended = prefix.clone();
                    extended.push(*v);
                    next.push(extended);
                }
            }
            bindings = next;
        }
        bindings.truncate(run.config.max_empty_bindings);
        bindings.into_iter().map(Tuple::new).collect()
    }

    /// The placeholder binding of a method under the `Sch0−Acc`
    /// interpretation: one type-appropriate fresh value per input position
    /// (the binding carries no information, but an ill-typed one would make
    /// every witness fail `AccessSchema::validate_access`).
    fn placeholder_binding(&self, run: &PropertyRun<O>, method_index: usize) -> Tuple {
        let method = self.methods[method_index];
        let input_types = self.method_input_types[method_index].as_deref();
        Tuple::new(
            (0..method.input_arity())
                .map(|slot| {
                    let expected = input_types.map(|types| types[slot]);
                    fresh_guesses(expected, &run.binding_pool)[0]
                })
                .collect(),
        )
    }

    /// Rebuilds the witness path from the parent arena, appending the final
    /// accepting transition.
    fn reconstruct(
        &self,
        run: &PropertyRun<O>,
        end: u32,
        final_access: Access,
        final_added: &[u32],
    ) -> AccessPath {
        let mut steps: Vec<(Access, Response)> = Vec::new();
        let mut cursor = end;
        while let Some((access, added)) = &run.nodes[cursor as usize].step {
            steps.push((access.clone(), self.response_of(added)));
            cursor = run.nodes[cursor as usize].parent;
        }
        steps.reverse();
        steps.push((final_access, self.response_of(final_added)));
        AccessPath::from_steps(steps)
    }

    fn response_of(&self, added: &[u32]) -> Response {
        added
            .iter()
            .map(|&id| self.interner.table.fact(id).1.clone())
            .collect()
    }
}

/// The single-property frontier engine: a thin front over a one-property
/// [`BatchEngine`].  See the module docs for the division of labour between
/// engine and [`StepOracle`].
pub struct FrontierEngine<'a, O: StepOracle> {
    schema: &'a AccessSchema,
    oracle: &'a O,
    universe: FactUniverse,
    initial: Arc<Instance>,
    constants: BTreeSet<Value>,
    config: EngineConfig,
}

impl<'a, O: StepOracle> FrontierEngine<'a, O> {
    /// Creates an engine over a schema, universe and initial instance.
    /// `constants` are extra values (formula or automaton constants) eligible
    /// as guessed binding values.
    pub fn new(
        schema: &'a AccessSchema,
        oracle: &'a O,
        universe: FactUniverse,
        initial: Arc<Instance>,
        constants: &BTreeSet<Value>,
        config: EngineConfig,
    ) -> Self {
        FrontierEngine {
            schema,
            oracle,
            universe,
            initial,
            constants: constants.clone(),
            config,
        }
    }

    /// The universe the engine searches over.
    #[must_use]
    pub fn universe(&self) -> &FactUniverse {
        &self.universe
    }

    /// The oracle's guard-verdict cache counters, if it keeps any
    /// (see [`StepOracle::cache_stats`]).
    #[must_use]
    pub fn cache_stats(&self) -> Option<GuardCacheStats> {
        self.oracle.cache_stats()
    }

    /// Runs the breadth-first search from the given logical start state.
    #[must_use]
    pub fn run(&self, start: O::State) -> EngineOutcome {
        self.report(start).outcome
    }

    /// Runs the search and returns the full [`EngineReport`] (outcome plus
    /// budget and cache accounting).
    #[must_use]
    pub fn report(&self, start: O::State) -> EngineReport {
        let mut batch: BatchEngine<'_, &O> = BatchEngine::new(self.schema, self.initial.clone());
        batch
            .run(vec![PropertySpec {
                oracle: self.oracle,
                start,
                universe: self.universe.clone(),
                constants: self.constants.clone(),
                config: self.config,
            }])
            .pop()
            .expect("one property in, one report out")
    }
}

/// The resumable engine state behind a monitoring session: one persistent
/// [`BatchEngine`] whose interned fact table, prepared-context cache,
/// candidate enumerations and per-candidate contexts survive across steps,
/// plus the bookkeeping that turns the engine's cumulative cache counters
/// into per-step reuse deltas.
///
/// A session extends `Conf(p, I0)` by an access's response through
/// [`SessionState::assume_revealed`]: the facts stay *outside* the engine's
/// base instance but are revealed at the root of every subsequent run, so
/// each step's configurations are content-identical to the configurations a
/// from-scratch search over the grown instance would build — which is what
/// lets content-addressed cache entries (trimmed revealed bitsets here,
/// restricted `StructureKey`s in the oracles' guard caches) keep hitting
/// after a perturbation.  Only entries whose key content actually mentions
/// the perturbed facts miss; everything else is reused.  Frontier bitsets
/// and the node arena are rebuilt per step *by contract*: explored counts
/// are part of the byte-identical-verdict guarantee
/// ([`EngineConfig::disable_session_reuse`]), so a step must visit exactly
/// the states a from-scratch run would.
pub struct SessionState<'a, O: StepOracle> {
    engine: BatchEngine<'a, O>,
    /// Engine-cache snapshot as of the previous step, so each step reports
    /// its own delta.
    reported: EngineCacheStats,
}

impl<'a, O: StepOracle> SessionState<'a, O> {
    /// Opens session state over a schema and the fixed base instance `I0`.
    #[must_use]
    pub fn new(schema: &'a AccessSchema, initial: Arc<Instance>) -> Self {
        SessionState {
            engine: BatchEngine::new(schema, initial),
            reported: EngineCacheStats::default(),
        }
    }

    /// Marks a response fact as revealed at the root of every subsequent
    /// step (see [`BatchEngine::assume_revealed`]).
    pub fn assume_revealed(&mut self, rel: RelId, tuple: &Tuple) {
        self.engine.assume_revealed(rel, tuple);
    }

    /// Runs one step's property batch on the persistent engine.  Returns
    /// the per-property reports plus the step's engine-cache *delta*: the
    /// delta's `hits` are lookups answered by state surviving from earlier
    /// steps ("reused"), its `misses` are contexts and candidate lists that
    /// had to be recomputed because their configuration content changed —
    /// the per-step reuse/recompute split the logic layer's session report
    /// surfaces.
    pub fn run_step(
        &mut self,
        specs: Vec<PropertySpec<O>>,
    ) -> (Vec<EngineReport>, EngineCacheStats) {
        let reports = self.engine.run(specs);
        let now = self.engine.engine_cache_stats();
        let delta = EngineCacheStats {
            hits: now.hits.saturating_sub(self.reported.hits),
            misses: now.misses.saturating_sub(self.reported.misses),
            evictions: now.evictions.saturating_sub(self.reported.evictions),
            entries: now.entries,
        };
        self.reported = now;
        (reports, delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::phone_directory_access_schema;
    use accltl_relational::tuple;

    /// A trivial oracle: the logical state counts remaining steps; a step
    /// that reveals at least one fact decrements it, and reaching zero
    /// accepts.  Enough to exercise frontier, dedup, parents and
    /// reconstruction without the logic/automata layers.
    struct CountdownOracle;

    impl StepOracle for CountdownOracle {
        type State = u8;
        type StateCtx = ();
        type CandidateCtx = ();

        fn prepare(&self, _before: &InstanceOverlay) {}

        fn prepare_candidate(
            &self,
            _ctx: &(),
            _candidate: &Candidate<'_>,
            _universe: &FactUniverse,
        ) {
        }

        fn step(
            &self,
            state: &u8,
            _ctx: &(),
            _prepared: &(),
            candidate: &Candidate<'_>,
            _universe: &FactUniverse,
        ) -> StepOutcome<u8> {
            if candidate.added.is_empty() {
                return StepOutcome::dead(1);
            }
            if *state == 1 {
                return StepOutcome {
                    successors: Vec::new(),
                    accept: true,
                    cost: 1,
                };
            }
            StepOutcome {
                successors: vec![state - 1],
                accept: false,
                cost: 1,
            }
        }
    }

    fn universe() -> FactUniverse {
        FactUniverse::new(vec![
            (
                RelId::new("Mobile#"),
                tuple!["Smith", "OX13QD", "Parks Rd", 5551212],
            ),
            (
                RelId::new("Address"),
                tuple!["Parks Rd", "OX13QD", "Jones", 16],
            ),
        ])
    }

    fn engine_outcome(config: EngineConfig, start: u8) -> EngineOutcome {
        let schema = phone_directory_access_schema();
        let oracle = CountdownOracle;
        let engine = FrontierEngine::new(
            &schema,
            &oracle,
            universe(),
            Arc::new(Instance::new()),
            &BTreeSet::new(),
            config,
        );
        engine.run(start)
    }

    /// Registers a one-property batch and returns the candidates of its
    /// root-like revealed set (nothing revealed): the enumeration unit the
    /// binding-guess tests below inspect.
    fn root_candidates(
        schema: &AccessSchema,
        universe: FactUniverse,
        config: EngineConfig,
    ) -> Vec<OwnedCandidate> {
        let oracle = CountdownOracle;
        let mut batch: BatchEngine<'_, &CountdownOracle> =
            BatchEngine::new(schema, Arc::new(Instance::new()));
        let run = batch.register(PropertySpec {
            oracle: &oracle,
            start: 1u8,
            universe,
            constants: BTreeSet::new(),
            config,
        });
        let revealed = FactSet::empty(batch.interner.table.len());
        batch.candidates(&run, &revealed, None)
    }

    #[test]
    fn finds_a_minimal_witness_and_reconstructs_it() {
        let outcome = engine_outcome(EngineConfig::default(), 2);
        let EngineOutcome::Witness { witness } = outcome else {
            panic!("expected a witness, got {outcome:?}");
        };
        assert_eq!(witness.len(), 2);
        let schema = phone_directory_access_schema();
        assert!(witness.validate(&schema).is_ok());
    }

    #[test]
    fn exhausts_when_the_universe_is_too_small() {
        // Three revealing steps needed, but only two facts exist and each can
        // be revealed once.
        assert_eq!(
            engine_outcome(EngineConfig::default(), 3),
            EngineOutcome::Exhausted
        );
    }

    #[test]
    fn state_budget_aborts_the_search() {
        let config = EngineConfig {
            max_states: 1,
            ..EngineConfig::default()
        };
        assert!(matches!(
            engine_outcome(config, 2),
            EngineOutcome::OutOfStates { .. }
        ));
    }

    #[test]
    fn cost_budget_aborts_the_search() {
        let config = EngineConfig::base().max_guard_checks(3);
        assert!(matches!(
            engine_outcome(config, 2),
            EngineOutcome::OutOfBudget { .. }
        ));
    }

    #[test]
    fn verdicts_and_witnesses_are_thread_count_independent() {
        for start in [1u8, 2, 3] {
            let single = engine_outcome(EngineConfig::base().threads(1), start);
            let quad = engine_outcome(EngineConfig::base().threads(4), start);
            assert_eq!(single, quad);
        }
    }

    #[test]
    fn batched_runs_match_standalone_runs_per_property() {
        // One batch carrying three countdown properties over the same
        // universe must reproduce each standalone outcome and report.
        let schema = phone_directory_access_schema();
        let oracle = CountdownOracle;
        let spec = |start: u8| PropertySpec {
            oracle: &oracle,
            start,
            universe: universe(),
            constants: BTreeSet::new(),
            config: EngineConfig::base(),
        };
        let mut batch: BatchEngine<'_, &CountdownOracle> =
            BatchEngine::new(&schema, Arc::new(Instance::new()));
        let batched = batch.run(vec![spec(1), spec(2), spec(3)]);
        for (start, report) in [1u8, 2, 3].into_iter().zip(&batched) {
            let standalone = FrontierEngine::new(
                &schema,
                &oracle,
                universe(),
                Arc::new(Instance::new()),
                &BTreeSet::new(),
                EngineConfig::base(),
            )
            .report(start);
            assert_eq!(report, &standalone, "property with start {start} diverged");
        }
    }

    #[test]
    fn per_property_budgets_cut_off_independently() {
        let schema = phone_directory_access_schema();
        let oracle = CountdownOracle;
        let mut batch: BatchEngine<'_, &CountdownOracle> =
            BatchEngine::new(&schema, Arc::new(Instance::new()));
        let reports = batch.run(vec![
            PropertySpec {
                oracle: &oracle,
                start: 2u8,
                universe: universe(),
                constants: BTreeSet::new(),
                config: EngineConfig::base().max_guard_checks(3),
            },
            PropertySpec {
                oracle: &oracle,
                start: 2u8,
                universe: universe(),
                constants: BTreeSet::new(),
                config: EngineConfig::base(),
            },
        ]);
        assert!(matches!(
            reports[0].outcome,
            EngineOutcome::OutOfBudget { .. }
        ));
        assert!(matches!(reports[1].outcome, EngineOutcome::Witness { .. }));
    }

    #[test]
    fn over_wide_response_groups_downgrade_exhaustion_to_truncated() {
        // An oracle for which every transition is dead: the frontier
        // exhausts right after the root.
        struct DeadOracle;
        impl StepOracle for DeadOracle {
            type State = u8;
            type StateCtx = ();
            type CandidateCtx = ();
            fn prepare(&self, _before: &InstanceOverlay) {}
            fn prepare_candidate(
                &self,
                _ctx: &(),
                _candidate: &Candidate<'_>,
                _universe: &FactUniverse,
            ) {
            }
            fn step(
                &self,
                _state: &u8,
                _ctx: &(),
                _prepared: &(),
                _candidate: &Candidate<'_>,
                _universe: &FactUniverse,
            ) -> StepOutcome<u8> {
                StepOutcome::dead(1)
            }
        }

        let schema = phone_directory_access_schema();
        let run_with = |fact_count: i64, config: EngineConfig| {
            // `fact_count` Mobile# facts all share the binding "Same".
            let facts: Vec<(RelId, Tuple)> = (0..fact_count)
                .map(|i| {
                    (
                        RelId::new("Mobile#"),
                        tuple!["Same", "OX13QD", "Parks Rd", 5_551_000 + i],
                    )
                })
                .collect();
            let oracle = DeadOracle;
            FrontierEngine::new(
                &schema,
                &oracle,
                FactUniverse::new(facts),
                Arc::new(Instance::new()),
                &BTreeSet::new(),
                config,
            )
            .run(0)
        };
        // Within the group cap, exhaustion is a completeness certificate...
        assert_eq!(run_with(12, EngineConfig::base()), EngineOutcome::Exhausted);
        // ...beyond it (13th same-binding fact can never be revealed) the
        // engine must not certify anything.
        assert!(matches!(
            run_with(13, EngineConfig::base()),
            EngineOutcome::Truncated { .. }
        ));
        // The cap is a config knob now: raising it restores the certificate,
        // lowering it withdraws one.
        assert_eq!(
            run_with(13, EngineConfig::base().max_response_group(13)),
            EngineOutcome::Exhausted
        );
        assert!(matches!(
            run_with(12, EngineConfig::base().max_response_group(11)),
            EngineOutcome::Truncated { .. }
        ));

        // Facts already in the initial instance are revealed at the root and
        // never enumerated, so they must not count towards truncation.
        let facts: Vec<(RelId, Tuple)> = (0..13)
            .map(|i| {
                (
                    RelId::new("Mobile#"),
                    tuple!["Same", "OX13QD", "Parks Rd", 5_551_000 + i],
                )
            })
            .collect();
        let mut initial = Instance::new();
        for (rel, tuple) in &facts {
            initial.add_fact(*rel, tuple.clone());
        }
        let oracle = DeadOracle;
        let outcome = FrontierEngine::new(
            &schema,
            &oracle,
            FactUniverse::new(facts),
            Arc::new(initial),
            &BTreeSet::new(),
            EngineConfig::base(),
        )
        .run(0);
        assert_eq!(outcome, EngineOutcome::Exhausted);
    }

    #[test]
    fn grounded_mode_filters_unknown_binding_values() {
        let config = EngineConfig::base().grounded(true);
        // Over the empty initial instance no binding value is known, so no
        // revealing access is ever possible.
        assert_eq!(engine_outcome(config, 1), EngineOutcome::Exhausted);
    }

    #[test]
    fn empty_binding_guesses_respect_declared_column_types() {
        use accltl_relational::{DataType, RelationSchema, Schema};

        // `NumRel(int, text)` accessed by binding the *integer* position:
        // the binding pool mixes text and int values, but only the ints (and
        // never the text placeholder) may be guessed for empty responses.
        let schema = Schema::from_relations([RelationSchema::new(
            "NumRel",
            vec![DataType::Integer, DataType::Text],
        )])
        .unwrap();
        let access = crate::access::AccessSchema::new(schema)
            .with_method(AccessMethod::new("AcNum", "NumRel", vec![0]))
            .unwrap();
        let universe = FactUniverse::new(vec![
            (RelId::new("NumRel"), tuple![7, "seven"]),
            (RelId::new("NumRel"), tuple![9, "nine"]),
        ]);
        let empty_bindings: Vec<_> = root_candidates(&access, universe, EngineConfig::base())
            .into_iter()
            .filter(|c| c.added.is_empty())
            .collect();
        assert!(!empty_bindings.is_empty());
        for candidate in &empty_bindings {
            for value in candidate.binding.values() {
                assert_eq!(
                    value.data_type(),
                    accltl_relational::DataType::Integer,
                    "ill-typed empty-binding guess {value} can never be a valid access"
                );
            }
            let access_obj = Access::new("AcNum", candidate.binding.clone());
            assert!(access.validate_access(&access_obj).is_ok());
        }
    }

    #[test]
    fn fresh_guesses_keep_non_text_positions_complete() {
        use accltl_relational::{DataType, RelationSchema, Schema};

        // The pool holds no integer at all: the enumeration must still guess
        // a fresh *integer* for the int-typed input position (dropping the
        // text placeholder without a typed replacement would make
        // "Exhausted" a wrong completeness certificate).
        let schema = Schema::from_relations([
            RelationSchema::new("NumRel", vec![DataType::Integer, DataType::Text]),
            RelationSchema::new("TxtRel", vec![DataType::Text]),
        ])
        .unwrap();
        let access = crate::access::AccessSchema::new(schema)
            .with_method(AccessMethod::new("AcNum", "NumRel", vec![0]))
            .unwrap();
        let universe = FactUniverse::new(vec![(RelId::new("TxtRel"), tuple!["only-text"])]);
        let empty_bindings: Vec<_> = root_candidates(&access, universe, EngineConfig::base())
            .into_iter()
            .filter(|c| c.added.is_empty())
            .collect();
        assert!(
            empty_bindings
                .iter()
                .any(|c| matches!(c.binding.values(), [Value::Int(_)])),
            "no fresh integer guess for the int-typed input position"
        );
    }

    #[test]
    fn placeholder_bindings_are_type_correct() {
        use accltl_relational::{DataType, RelationSchema, Schema};

        let schema = Schema::from_relations([RelationSchema::new(
            "NumRel",
            vec![DataType::Integer, DataType::Text],
        )])
        .unwrap();
        let access = crate::access::AccessSchema::new(schema)
            .with_method(AccessMethod::new("AcNum", "NumRel", vec![0, 1]))
            .unwrap();
        let candidates = root_candidates(
            &access,
            FactUniverse::default(),
            EngineConfig::base().empty_bindings(EmptyBindingMode::Placeholder),
        );
        assert_eq!(candidates.len(), 1);
        let access_obj = Access::new("AcNum", candidates[0].binding.clone());
        assert!(
            access.validate_access(&access_obj).is_ok(),
            "Sch0−Acc placeholder binding must be a valid access: {:?}",
            candidates[0].binding
        );
    }

    #[test]
    fn placeholder_mode_emits_one_empty_binding_per_method() {
        let schema = phone_directory_access_schema();
        let candidates = root_candidates(
            &schema,
            FactUniverse::default(),
            EngineConfig::base().empty_bindings(EmptyBindingMode::Placeholder),
        );
        assert_eq!(candidates.len(), schema.method_count());
        assert!(candidates.iter().all(|c| c.added.is_empty()));
    }

    #[test]
    fn from_env_is_the_single_env_read_site() {
        // Nothing else in the workspace may call std::env::var for the
        // ACCLTL_* knobs; this test pins the defaults when the variables
        // are unset (the harness does not set them).
        let config = EngineConfig::base();
        assert_eq!(config.threads, 1);
        assert!(!config.disable_indexes);
        assert!(!config.disable_guard_cache);
        assert_eq!(config.max_response_group, MAX_RESPONSE_GROUP);
        assert_eq!(config.max_guard_checks, usize::MAX);
        assert_eq!(config.index_cutoff, INDEX_CUTOFF);
        assert_eq!(config.steal_batch, 1);
        assert!(!config.disable_session_reuse);
    }
}
