//! The shared bounded-frontier search engine behind the decision procedures.
//!
//! Both `accltl-logic`'s bounded satisfiability search and
//! `accltl-automata`'s A-automaton emptiness search explore the same witness
//! space: breadth-first over *configurations* drawn from a finite fact
//! universe, where a step performs one access and reveals a subset of the
//! universe facts compatible with the binding.  Historically each crate
//! carried its own copy of the universe/frontier/parent-map/reconstruction
//! machinery; this module is the single implementation, parameterized over a
//! [`StepOracle`] that supplies the domain-specific part — how a candidate
//! transition advances the logical state (progressing an `AccLTL` obligation,
//! or firing an automaton transition whose guard holds).
//!
//! Engine responsibilities:
//!
//! * **compact frontier states** — the revealed-fact component of a search
//!   state is a bitset over universe indices, so cloning, hashing and
//!   deduplicating states is a few word operations instead of a
//!   `BTreeSet<usize>` walk;
//! * **arena parent links** — discovered states live in a flat arena and
//!   parents are plain indices, replacing the per-crate
//!   `HashMap<State, Option<(State, Access, Vec<usize>)>>` clones;
//! * **candidate-access enumeration** — grouping unrevealed facts by their
//!   projection onto a method's input positions, bounded response subsets,
//!   and bounded empty-response binding enumeration (with the grounded and
//!   0-ary variants both searches need);
//! * **parallel layer expansion** — each BFS layer is sharded across worker
//!   threads (`std::thread::scope`); expansion results are merged on the
//!   driving thread *in frontier order*, so verdicts, budget cutoffs and
//!   witness paths are identical for every thread count (single-thread
//!   determinism is part of the contract, not an accident of scheduling);
//! * **witness reconstruction** — walking the parent arena back to the root.
//!
//! Per candidate transition the engine never clones a configuration: the
//! *before* configuration is an [`InstanceOverlay`] over the shared initial
//! instance, and oracles receive the candidate's delta (universe indices) to
//! push onto their own per-state overlay — a step costs `O(|response|)`.
//!
//! Both production oracles additionally memoize guard verdicts through a
//! per-search `accltl_relational::GuardCache`: `prepare` pins the per-state
//! base `Arc` and `step` consults the cache (sentence id × restricted
//! `StructureKey`) before any homomorphism search.  The cache is shared by
//! all worker threads; verdicts — and with them witnesses and budget
//! accounting, since [`StepOutcome::cost`] counts guard *consults*, not
//! evaluations — are byte-identical with the cache disabled
//! (`ACCLTL_DISABLE_GUARD_CACHE=1`).  Hit/miss counters surface through
//! [`StepOracle::cache_stats`] / [`FrontierEngine::cache_stats`]; note that
//! with several workers the hit/miss *split* may vary run to run (racing
//! workers can evaluate the same key twice) even though the total and every
//! verdict stay deterministic.
//!
//! The worker count comes from the per-search config, falling back to the
//! `ACCLTL_SEARCH_THREADS` environment variable (default: 1).

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::hash::Hash;
use std::sync::Arc;
use std::thread;

use accltl_relational::{
    DataType, GuardCacheStats, Instance, InstanceOverlay, RelId, Tuple, Value,
};

use crate::access::{Access, AccessMethod, AccessSchema};
use crate::path::{AccessPath, Response};

/// The environment variable consulted for the default worker count.
pub const THREADS_ENV_VAR: &str = "ACCLTL_SEARCH_THREADS";

/// The finite fact universe a search draws its responses from.
#[derive(Debug, Clone, Default)]
pub struct FactUniverse {
    facts: Vec<(RelId, Tuple)>,
}

impl FactUniverse {
    /// Wraps an ordered list of `(relation, tuple)` facts.
    #[must_use]
    pub fn new(facts: Vec<(RelId, Tuple)>) -> Self {
        FactUniverse { facts }
    }

    /// The number of facts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True if the universe has no facts.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// The fact at a universe index.
    #[must_use]
    pub fn fact(&self, index: u32) -> (RelId, &Tuple) {
        let (rel, tuple) = &self.facts[index as usize];
        (*rel, tuple)
    }

    /// Iterates over `(index, relation, tuple)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, RelId, &Tuple)> {
        self.facts
            .iter()
            .enumerate()
            .map(|(i, (rel, tuple))| (i as u32, *rel, tuple))
    }

    /// Every value occurring in some universe fact.
    #[must_use]
    pub fn values(&self) -> BTreeSet<Value> {
        self.facts
            .iter()
            .flat_map(|(_, t)| t.values().iter().copied())
            .collect()
    }
}

/// One candidate transition handed to the [`StepOracle`].
#[derive(Debug, Clone, Copy)]
pub struct Candidate<'a> {
    /// The access method performing the transition.
    pub method: &'a AccessMethod,
    /// The binding of the access.
    pub binding: &'a Tuple,
    /// Universe indices of the facts revealed by the response.
    pub added: &'a [u32],
}

/// The oracle's verdict on one candidate transition from one state.
#[derive(Debug, Clone)]
pub struct StepOutcome<S> {
    /// Logical successor states reached by this transition (deduplicated
    /// against the frontier by the engine).  Empty when the transition is
    /// dead.
    pub successors: Vec<S>,
    /// True if this transition completes a witness: the path to the current
    /// state extended by this access is returned immediately.
    pub accept: bool,
    /// Abstract cost consumed (e.g. guard evaluations), accumulated by the
    /// engine in deterministic frontier order against
    /// [`EngineConfig::max_step_cost`].
    pub cost: usize,
}

impl<S> StepOutcome<S> {
    /// A dead transition: no successors, no witness.
    #[must_use]
    pub fn dead(cost: usize) -> Self {
        StepOutcome {
            successors: Vec::new(),
            accept: false,
            cost,
        }
    }
}

/// The domain-specific half of a bounded frontier search.
///
/// The engine drives the frontier; the oracle says what a candidate
/// transition does to the *logical* component of a search state.  `prepare`
/// is called once per expanded state with the before-configuration (an
/// overlay over the shared initial instance) so implementations can
/// precompute their per-state transition-structure base; `step` is then
/// called once per candidate and must not clone the configuration — push the
/// candidate's delta onto an overlay instead.
pub trait StepOracle: Sync {
    /// The logical component of a search state (a progressed formula, an
    /// automaton state, ...).
    type State: Clone + Eq + Hash + Send + Sync;
    /// Per-expanded-state precomputation, built by [`StepOracle::prepare`]
    /// and handed back to every [`StepOracle::step`] call for that state.
    type StateCtx;

    /// Precomputes whatever the oracle needs to evaluate candidates from a
    /// state whose configuration is `before`.
    fn prepare(&self, before: &InstanceOverlay) -> Self::StateCtx;

    /// Evaluates one candidate transition.
    fn step(
        &self,
        state: &Self::State,
        ctx: &Self::StateCtx,
        candidate: &Candidate<'_>,
        universe: &FactUniverse,
    ) -> StepOutcome<Self::State>;

    /// Hit/miss counters of the oracle's guard-verdict cache, when it has
    /// one (the default answers `None`).  Surfaced by
    /// [`FrontierEngine::cache_stats`] for benchmarks and regression tests.
    fn cache_stats(&self) -> Option<GuardCacheStats> {
        None
    }
}

/// How bindings for empty responses are enumerated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmptyBindingMode {
    /// One placeholder binding per method (the `Sch0−Acc` interpretation,
    /// where the binding carries no information).
    Placeholder,
    /// Bounded enumeration over universe values, search constants and a
    /// fresh placeholder (the full-binding interpretation).
    Enumerate,
}

/// Configuration of the shared frontier engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Maximum number of distinct search states (the start state counts).
    pub max_states: usize,
    /// Maximum number of tuples revealed by a single response.
    pub max_response_size: usize,
    /// Cap on candidate bindings enumerated per method for empty responses.
    pub max_empty_bindings: usize,
    /// Budget on accumulated [`StepOutcome::cost`]; exceeding it aborts the
    /// search with [`EngineOutcome::OutOfBudget`].
    pub max_step_cost: usize,
    /// Restrict candidates to grounded accesses (every binding value must
    /// occur in the configuration).
    pub grounded: bool,
    /// Empty-response binding enumeration mode.
    pub empty_bindings: EmptyBindingMode,
    /// Worker threads for layer expansion; `0` means "read
    /// [`THREADS_ENV_VAR`], default 1".  Verdicts and witnesses do not
    /// depend on this value.
    pub threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_states: 200_000,
            max_response_size: 3,
            max_empty_bindings: 16,
            max_step_cost: usize::MAX,
            grounded: false,
            empty_bindings: EmptyBindingMode::Enumerate,
            threads: 0,
        }
    }
}

/// Result of a frontier search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineOutcome {
    /// A witness access path was found (its final transition is the accepting
    /// one reported by the oracle).
    Witness {
        /// The witness path.
        witness: AccessPath,
    },
    /// The bounded witness space was exhausted without finding a witness.
    /// This is a *complete* enumeration of the witness space induced by the
    /// configured caps — callers may report a definitive negative verdict.
    Exhausted,
    /// The witness space was exhausted, but the per-binding response-group
    /// cap ([`MAX_RESPONSE_GROUP`]) truncated it: some universe facts could
    /// never be revealed, so "no witness found" is not a completeness
    /// certificate.  Callers must report an indefinite verdict.
    Truncated {
        /// Number of states discovered.
        explored: usize,
    },
    /// The state budget was reached.
    OutOfStates {
        /// Number of states discovered before giving up.
        explored: usize,
    },
    /// The accumulated step cost exceeded [`EngineConfig::max_step_cost`].
    OutOfBudget {
        /// Number of states discovered before giving up.
        explored: usize,
    },
}

/// Cap on the number of same-binding unrevealed facts considered for one
/// response subset enumeration (subsets are masks over a `u32`, and response
/// sizes beyond [`EngineConfig::max_response_size`] are filtered anyway).
/// When any method's binding group exceeds this, exhausting the frontier is
/// reported as [`EngineOutcome::Truncated`] instead of
/// [`EngineOutcome::Exhausted`].
pub const MAX_RESPONSE_GROUP: usize = 12;

/// Resolves a configured worker count: explicit values win, `0` falls back to
/// the [`THREADS_ENV_VAR`] environment variable, default 1.
#[must_use]
pub fn resolve_threads(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    std::env::var(THREADS_ENV_VAR)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// The placeholder value used for guessed binding positions (a value that can
/// never occur in real data or formula constants).
#[must_use]
pub fn placeholder_value() -> Value {
    Value::str("\u{2606}any")
}

/// Deterministic *type-appropriate* fresh guesses for a binding position of
/// the given declared type, none of which occur in `pool`: any witness
/// binding value outside the pool can be renamed to a fresh one, so a single
/// fresh representative per type keeps the bounded enumeration complete —
/// while staying a *valid* access value (an ill-typed guess could only ever
/// produce witnesses that fail `AccessSchema::validate_access`).
///
/// Text positions (and positions of unknown type) use [`placeholder_value`];
/// integer positions use one past the largest pool integer; boolean
/// positions enumerate both values (the domain is finite, so "fresh" may not
/// exist — completeness needs both).
fn fresh_guesses(expected: Option<DataType>, pool: &[Value]) -> Vec<Value> {
    match expected {
        None | Some(DataType::Text) => vec![placeholder_value()],
        Some(DataType::Integer) => {
            let next = pool
                .iter()
                .filter_map(|v| match v {
                    Value::Int(i) => Some(*i),
                    _ => None,
                })
                .max()
                .map_or(0, |max| max.saturating_add(1));
            vec![Value::Int(next)]
        }
        Some(DataType::Boolean) => vec![Value::Bool(false), Value::Bool(true)],
    }
}

/// A revealed-fact set: a fixed-width bitset over universe indices.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct FactSet {
    words: Vec<u64>,
}

impl FactSet {
    fn empty(universe_len: usize) -> Self {
        FactSet {
            words: vec![0; universe_len.div_ceil(64)],
        }
    }

    fn insert(&mut self, index: u32) {
        self.words[(index / 64) as usize] |= 1u64 << (index % 64);
    }

    fn contains(&self, index: u32) -> bool {
        (self.words[(index / 64) as usize] >> (index % 64)) & 1 == 1
    }

    /// Iterates over the set indices in ascending order.
    fn ones(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(word, &bits)| {
            std::iter::successors((bits != 0).then_some(bits), |&x| {
                let rest = x & (x - 1);
                (rest != 0).then_some(rest)
            })
            .map(move |x| (word as u32) * 64 + x.trailing_zeros())
        })
    }
}

/// One discovered search state in the arena.
struct Node<S> {
    revealed: FactSet,
    state: S,
    /// Arena index of the parent (meaningless for the root).
    parent: u32,
    /// The access and response indices that produced this state (`None` for
    /// the root).
    step: Option<(Access, Vec<u32>)>,
}

/// A candidate transition owned by the expansion phase.
struct OwnedCandidate {
    method: usize,
    binding: Tuple,
    added: Vec<u32>,
}

type Expansion<S> = Vec<(OwnedCandidate, StepOutcome<S>)>;

/// The shared frontier search engine.  See the module docs for the division
/// of labour between engine and [`StepOracle`].
pub struct FrontierEngine<'a, O: StepOracle> {
    oracle: &'a O,
    universe: FactUniverse,
    initial: Arc<Instance>,
    methods: Vec<&'a AccessMethod>,
    /// Per method (same order as `methods`): the universe indices of its
    /// relation's facts — candidate enumeration per state only walks these.
    method_facts: Vec<Vec<u32>>,
    /// Per method: the declared column types of its input positions
    /// (`None` when the relation is unknown to the schema).  Empty-response
    /// binding enumeration only guesses type-correct values, so witnesses
    /// always pass `AccessSchema::validate_access` — an ill-typed binding
    /// could never be a real access.
    method_input_types: Vec<Option<Vec<DataType>>>,
    /// True if some method has more than [`MAX_RESPONSE_GROUP`] universe
    /// facts sharing one binding, i.e. the subset enumeration is truncated
    /// and exhausting the frontier proves nothing.
    truncated: bool,
    /// Sorted candidate values for empty-response bindings: universe values
    /// plus search constants.
    binding_pool: Vec<Value>,
    config: EngineConfig,
}

impl<'a, O: StepOracle> FrontierEngine<'a, O> {
    /// Creates an engine over a schema, universe and initial instance.
    /// `constants` are extra values (formula or automaton constants) eligible
    /// as guessed binding values.
    pub fn new(
        schema: &'a AccessSchema,
        oracle: &'a O,
        universe: FactUniverse,
        initial: Arc<Instance>,
        constants: &BTreeSet<Value>,
        config: EngineConfig,
    ) -> Self {
        let mut pool = universe.values();
        pool.extend(constants.iter().copied());
        let methods: Vec<&AccessMethod> = schema.methods().collect();
        let mut truncated = false;
        let method_facts: Vec<Vec<u32>> = methods
            .iter()
            .map(|method| {
                let indices: Vec<u32> = universe
                    .iter()
                    .filter(|(_, rel, _)| *rel == method.relation_id())
                    .map(|(index, _, _)| index)
                    .collect();
                // Revealed sets only grow from the root's (the initial
                // instance's facts), so grouping the facts unrevealed *at the
                // root* bounds every per-state group the enumeration will
                // ever see.
                let mut groups: BTreeMap<Tuple, usize> = BTreeMap::new();
                for &index in &indices {
                    let (rel, tuple) = universe.fact(index);
                    if initial.contains(rel, tuple) {
                        continue;
                    }
                    let projection = tuple.project(method.input_positions());
                    *groups.entry(projection).or_default() += 1;
                }
                truncated |= groups.values().any(|&size| size > MAX_RESPONSE_GROUP);
                indices
            })
            .collect();
        let method_input_types = methods
            .iter()
            .map(|method| {
                let relation = schema
                    .schema()
                    .require_relation_id(method.relation_id())
                    .ok()?;
                Some(
                    method
                        .input_positions()
                        .iter()
                        .map(|&position| relation.column_types()[position])
                        .collect(),
                )
            })
            .collect();
        FrontierEngine {
            oracle,
            methods,
            method_facts,
            method_input_types,
            truncated,
            universe,
            initial,
            binding_pool: pool.into_iter().collect(),
            config,
        }
    }

    /// The universe the engine searches over.
    #[must_use]
    pub fn universe(&self) -> &FactUniverse {
        &self.universe
    }

    /// The oracle's guard-verdict cache counters, if it keeps any
    /// (see [`StepOracle::cache_stats`]).
    #[must_use]
    pub fn cache_stats(&self) -> Option<GuardCacheStats> {
        self.oracle.cache_stats()
    }

    /// Runs the breadth-first search from the given logical start state.
    #[must_use]
    pub fn run(&self, start: O::State) -> EngineOutcome {
        let threads = resolve_threads(self.config.threads);
        let mut revealed = FactSet::empty(self.universe.len());
        for (index, rel, tuple) in self.universe.iter() {
            if self.initial.contains(rel, tuple) {
                revealed.insert(index);
            }
        }

        let mut nodes: Vec<Node<O::State>> = vec![Node {
            revealed: revealed.clone(),
            state: start.clone(),
            parent: 0,
            step: None,
        }];
        let mut seen: HashSet<(FactSet, O::State)> = HashSet::new();
        seen.insert((revealed, start));
        let mut frontier: Vec<u32> = vec![0];
        let mut spent = 0usize;
        // Small chunks bound the work wasted past a terminal verdict while
        // keeping every thread busy; chunk merging runs in frontier order, so
        // results are independent of the thread count.
        let chunk_len = if threads > 1 { threads * 4 } else { 1 };

        while !frontier.is_empty() {
            let mut next: Vec<u32> = Vec::new();
            for chunk in frontier.chunks(chunk_len) {
                let expansions = self.expand_many(chunk, &nodes, threads);
                for (&node_id, expansion) in chunk.iter().zip(expansions) {
                    for (candidate, outcome) in expansion {
                        spent = spent.saturating_add(outcome.cost);
                        if spent > self.config.max_step_cost {
                            return EngineOutcome::OutOfBudget {
                                explored: nodes.len(),
                            };
                        }
                        let access = Access::new(
                            self.methods[candidate.method].name_sym(),
                            candidate.binding,
                        );
                        if outcome.accept {
                            return EngineOutcome::Witness {
                                witness: self.reconstruct(
                                    &nodes,
                                    node_id,
                                    access,
                                    &candidate.added,
                                ),
                            };
                        }
                        for successor in outcome.successors {
                            let mut new_revealed = nodes[node_id as usize].revealed.clone();
                            for &index in &candidate.added {
                                new_revealed.insert(index);
                            }
                            let key = (new_revealed, successor);
                            if seen.contains(&key) {
                                continue;
                            }
                            seen.insert(key.clone());
                            nodes.push(Node {
                                revealed: key.0,
                                state: key.1,
                                parent: node_id,
                                step: Some((access.clone(), candidate.added.clone())),
                            });
                            if nodes.len() >= self.config.max_states {
                                return EngineOutcome::OutOfStates {
                                    explored: nodes.len(),
                                };
                            }
                            next.push((nodes.len() - 1) as u32);
                        }
                    }
                }
            }
            frontier = next;
        }
        if self.truncated {
            EngineOutcome::Truncated {
                explored: nodes.len(),
            }
        } else {
            EngineOutcome::Exhausted
        }
    }

    /// Expands a chunk of frontier nodes, across worker threads when
    /// configured.  Results come back in chunk order.
    fn expand_many(
        &self,
        ids: &[u32],
        nodes: &[Node<O::State>],
        threads: usize,
    ) -> Vec<Expansion<O::State>> {
        if threads <= 1 || ids.len() <= 1 {
            return ids
                .iter()
                .map(|&id| self.expand(&nodes[id as usize]))
                .collect();
        }
        let share = ids.len().div_ceil(threads);
        thread::scope(|scope| {
            let handles: Vec<_> = ids
                .chunks(share)
                .map(|slice| {
                    scope.spawn(move || {
                        slice
                            .iter()
                            .map(|&id| self.expand(&nodes[id as usize]))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|handle| handle.join().expect("search worker panicked"))
                .collect()
        })
    }

    /// Expands one node: builds the before-overlay, lets the oracle prepare,
    /// and evaluates every candidate transition.
    fn expand(&self, node: &Node<O::State>) -> Expansion<O::State> {
        let mut before = InstanceOverlay::new(self.initial.clone());
        for index in node.revealed.ones() {
            let (rel, tuple) = self.universe.fact(index);
            before.push_fact(rel, tuple.clone());
        }
        let ctx = self.oracle.prepare(&before);
        let known = self.config.grounded.then(|| before.active_domain());
        let candidates = self.candidates(&node.revealed, known.as_ref());
        candidates
            .into_iter()
            .map(|candidate| {
                let outcome = self.oracle.step(
                    &node.state,
                    &ctx,
                    &Candidate {
                        method: self.methods[candidate.method],
                        binding: &candidate.binding,
                        added: &candidate.added,
                    },
                    &self.universe,
                );
                (candidate, outcome)
            })
            .collect()
    }

    /// Enumerates the candidate transitions available from a state: per
    /// method, non-empty responses grouped by the binding they are compatible
    /// with (bounded subsets), then empty responses with guessed bindings.
    fn candidates(
        &self,
        revealed: &FactSet,
        known_values: Option<&BTreeSet<Value>>,
    ) -> Vec<OwnedCandidate> {
        let mut candidates = Vec::new();
        for (method_index, method) in self.methods.iter().enumerate() {
            // Group this method's unrevealed facts (precomputed indices) by
            // their projection onto the input positions (a well-formed
            // response must agree with the binding on those positions).
            let mut groups: BTreeMap<Tuple, Vec<u32>> = BTreeMap::new();
            for &index in &self.method_facts[method_index] {
                if revealed.contains(index) {
                    continue;
                }
                let projection = self
                    .universe
                    .fact(index)
                    .1
                    .project(method.input_positions());
                groups.entry(projection).or_default().push(index);
            }
            for (binding, members) in &groups {
                if let Some(known) = known_values {
                    if !binding.values().iter().all(|v| known.contains(v)) {
                        continue;
                    }
                }
                // Enumerate non-empty subsets of the group up to the response
                // size cap.
                let size = members.len().min(MAX_RESPONSE_GROUP);
                for mask in 1u32..(1u32 << size) {
                    if (mask.count_ones() as usize) > self.config.max_response_size {
                        continue;
                    }
                    candidates.push(OwnedCandidate {
                        method: method_index,
                        binding: binding.clone(),
                        added: (0..size)
                            .filter(|i| mask & (1 << i) != 0)
                            .map(|i| members[i])
                            .collect(),
                    });
                }
            }
            // Empty responses: the access is made but reveals nothing.
            match self.config.empty_bindings {
                EmptyBindingMode::Placeholder => candidates.push(OwnedCandidate {
                    method: method_index,
                    binding: self.placeholder_binding(method_index),
                    added: Vec::new(),
                }),
                EmptyBindingMode::Enumerate => {
                    for binding in self.empty_response_bindings(method_index, known_values) {
                        candidates.push(OwnedCandidate {
                            method: method_index,
                            binding,
                            added: Vec::new(),
                        });
                    }
                }
            }
        }
        candidates
    }

    /// Candidate bindings for empty responses: every universe value and
    /// search constant (any of them may flow into a binding via dataflow
    /// atoms) plus, when not grounded, fresh guesses; under grounded
    /// semantics only values of the configuration qualify.  Each input
    /// position only draws values of its declared column type (labelled
    /// nulls aside) — an ill-typed binding can never be a real access, so
    /// guessing one could only ever produce invalid witnesses — and the
    /// fresh guesses are type-appropriate too ([`fresh_guesses`]), keeping
    /// the enumeration complete for non-text positions.
    fn empty_response_bindings(
        &self,
        method_index: usize,
        known_values: Option<&BTreeSet<Value>>,
    ) -> Vec<Tuple> {
        let method = self.methods[method_index];
        let input_types = self.method_input_types[method_index].as_deref();
        let base_pool: Vec<Value> = match known_values {
            Some(known) => self
                .binding_pool
                .iter()
                .filter(|v| known.contains(v))
                .copied()
                .collect(),
            None => self.binding_pool.clone(),
        };
        let mut bindings: Vec<Vec<Value>> = vec![Vec::new()];
        for slot in 0..method.input_positions().len() {
            let expected = input_types.map(|types| types[slot]);
            let mut slot_values: Vec<Value> = base_pool
                .iter()
                .filter(|v| !expected.is_some_and(|t| !v.is_labelled_null() && v.data_type() != t))
                .copied()
                .collect();
            if known_values.is_none() {
                for fresh in fresh_guesses(expected, &slot_values) {
                    if let Err(at) = slot_values.binary_search(&fresh) {
                        slot_values.insert(at, fresh);
                    }
                }
            }
            let mut next = Vec::new();
            for prefix in &bindings {
                for v in &slot_values {
                    if next.len() >= self.config.max_empty_bindings {
                        break;
                    }
                    let mut extended = prefix.clone();
                    extended.push(*v);
                    next.push(extended);
                }
            }
            bindings = next;
        }
        bindings.truncate(self.config.max_empty_bindings);
        bindings.into_iter().map(Tuple::new).collect()
    }

    /// The placeholder binding of a method under the `Sch0−Acc`
    /// interpretation: one type-appropriate fresh value per input position
    /// (the binding carries no information, but an ill-typed one would make
    /// every witness fail `AccessSchema::validate_access`).
    fn placeholder_binding(&self, method_index: usize) -> Tuple {
        let method = self.methods[method_index];
        let input_types = self.method_input_types[method_index].as_deref();
        Tuple::new(
            (0..method.input_arity())
                .map(|slot| {
                    let expected = input_types.map(|types| types[slot]);
                    fresh_guesses(expected, &self.binding_pool)[0]
                })
                .collect(),
        )
    }

    /// Rebuilds the witness path from the parent arena, appending the final
    /// accepting transition.
    fn reconstruct(
        &self,
        nodes: &[Node<O::State>],
        end: u32,
        final_access: Access,
        final_added: &[u32],
    ) -> AccessPath {
        let mut steps: Vec<(Access, Response)> = Vec::new();
        let mut cursor = end;
        while let Some((access, added)) = &nodes[cursor as usize].step {
            steps.push((access.clone(), self.response_of(added)));
            cursor = nodes[cursor as usize].parent;
        }
        steps.reverse();
        steps.push((final_access, self.response_of(final_added)));
        AccessPath::from_steps(steps)
    }

    fn response_of(&self, added: &[u32]) -> Response {
        added
            .iter()
            .map(|&index| self.universe.fact(index).1.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::phone_directory_access_schema;
    use accltl_relational::tuple;

    /// A trivial oracle: the logical state counts remaining steps; a step
    /// that reveals at least one fact decrements it, and reaching zero
    /// accepts.  Enough to exercise frontier, dedup, parents and
    /// reconstruction without the logic/automata layers.
    struct CountdownOracle;

    impl StepOracle for CountdownOracle {
        type State = u8;
        type StateCtx = ();

        fn prepare(&self, _before: &InstanceOverlay) {}

        fn step(
            &self,
            state: &u8,
            _ctx: &(),
            candidate: &Candidate<'_>,
            _universe: &FactUniverse,
        ) -> StepOutcome<u8> {
            if candidate.added.is_empty() {
                return StepOutcome::dead(1);
            }
            if *state == 1 {
                return StepOutcome {
                    successors: Vec::new(),
                    accept: true,
                    cost: 1,
                };
            }
            StepOutcome {
                successors: vec![state - 1],
                accept: false,
                cost: 1,
            }
        }
    }

    fn universe() -> FactUniverse {
        FactUniverse::new(vec![
            (
                RelId::new("Mobile#"),
                tuple!["Smith", "OX13QD", "Parks Rd", 5551212],
            ),
            (
                RelId::new("Address"),
                tuple!["Parks Rd", "OX13QD", "Jones", 16],
            ),
        ])
    }

    fn engine_outcome(config: EngineConfig, start: u8) -> EngineOutcome {
        let schema = phone_directory_access_schema();
        let oracle = CountdownOracle;
        let engine = FrontierEngine::new(
            &schema,
            &oracle,
            universe(),
            Arc::new(Instance::new()),
            &BTreeSet::new(),
            config,
        );
        engine.run(start)
    }

    #[test]
    fn finds_a_minimal_witness_and_reconstructs_it() {
        let outcome = engine_outcome(EngineConfig::default(), 2);
        let EngineOutcome::Witness { witness } = outcome else {
            panic!("expected a witness, got {outcome:?}");
        };
        assert_eq!(witness.len(), 2);
        let schema = phone_directory_access_schema();
        assert!(witness.validate(&schema).is_ok());
    }

    #[test]
    fn exhausts_when_the_universe_is_too_small() {
        // Three revealing steps needed, but only two facts exist and each can
        // be revealed once.
        assert_eq!(
            engine_outcome(EngineConfig::default(), 3),
            EngineOutcome::Exhausted
        );
    }

    #[test]
    fn state_budget_aborts_the_search() {
        let config = EngineConfig {
            max_states: 1,
            ..EngineConfig::default()
        };
        assert!(matches!(
            engine_outcome(config, 2),
            EngineOutcome::OutOfStates { .. }
        ));
    }

    #[test]
    fn cost_budget_aborts_the_search() {
        let config = EngineConfig {
            max_step_cost: 3,
            ..EngineConfig::default()
        };
        assert!(matches!(
            engine_outcome(config, 2),
            EngineOutcome::OutOfBudget { .. }
        ));
    }

    #[test]
    fn verdicts_and_witnesses_are_thread_count_independent() {
        for start in [1u8, 2, 3] {
            let single = engine_outcome(
                EngineConfig {
                    threads: 1,
                    ..EngineConfig::default()
                },
                start,
            );
            let quad = engine_outcome(
                EngineConfig {
                    threads: 4,
                    ..EngineConfig::default()
                },
                start,
            );
            assert_eq!(single, quad);
        }
    }

    #[test]
    fn over_wide_response_groups_downgrade_exhaustion_to_truncated() {
        // An oracle for which every transition is dead: the frontier
        // exhausts right after the root.
        struct DeadOracle;
        impl StepOracle for DeadOracle {
            type State = u8;
            type StateCtx = ();
            fn prepare(&self, _before: &InstanceOverlay) {}
            fn step(
                &self,
                _state: &u8,
                _ctx: &(),
                _candidate: &Candidate<'_>,
                _universe: &FactUniverse,
            ) -> StepOutcome<u8> {
                StepOutcome::dead(1)
            }
        }

        let schema = phone_directory_access_schema();
        let run_with = |fact_count: i64| {
            // `fact_count` Mobile# facts all share the binding "Same".
            let facts: Vec<(RelId, Tuple)> = (0..fact_count)
                .map(|i| {
                    (
                        RelId::new("Mobile#"),
                        tuple!["Same", "OX13QD", "Parks Rd", 5_551_000 + i],
                    )
                })
                .collect();
            let oracle = DeadOracle;
            FrontierEngine::new(
                &schema,
                &oracle,
                FactUniverse::new(facts),
                Arc::new(Instance::new()),
                &BTreeSet::new(),
                EngineConfig::default(),
            )
            .run(0)
        };
        // Within the group cap, exhaustion is a completeness certificate...
        assert_eq!(run_with(12), EngineOutcome::Exhausted);
        // ...beyond it (13th same-binding fact can never be revealed) the
        // engine must not certify anything.
        assert!(matches!(run_with(13), EngineOutcome::Truncated { .. }));

        // Facts already in the initial instance are revealed at the root and
        // never enumerated, so they must not count towards truncation.
        let facts: Vec<(RelId, Tuple)> = (0..13)
            .map(|i| {
                (
                    RelId::new("Mobile#"),
                    tuple!["Same", "OX13QD", "Parks Rd", 5_551_000 + i],
                )
            })
            .collect();
        let mut initial = Instance::new();
        for (rel, tuple) in &facts {
            initial.add_fact(*rel, tuple.clone());
        }
        let oracle = DeadOracle;
        let outcome = FrontierEngine::new(
            &schema,
            &oracle,
            FactUniverse::new(facts),
            Arc::new(initial),
            &BTreeSet::new(),
            EngineConfig::default(),
        )
        .run(0);
        assert_eq!(outcome, EngineOutcome::Exhausted);
    }

    #[test]
    fn grounded_mode_filters_unknown_binding_values() {
        let config = EngineConfig {
            grounded: true,
            ..EngineConfig::default()
        };
        // Over the empty initial instance no binding value is known, so no
        // revealing access is ever possible.
        assert_eq!(engine_outcome(config, 1), EngineOutcome::Exhausted);
    }

    #[test]
    fn empty_binding_guesses_respect_declared_column_types() {
        use accltl_relational::{DataType, RelationSchema, Schema};

        // `NumRel(int, text)` accessed by binding the *integer* position:
        // the binding pool mixes text and int values, but only the ints (and
        // never the text placeholder) may be guessed for empty responses.
        let schema = Schema::from_relations([RelationSchema::new(
            "NumRel",
            vec![DataType::Integer, DataType::Text],
        )])
        .unwrap();
        let access = crate::access::AccessSchema::new(schema)
            .with_method(AccessMethod::new("AcNum", "NumRel", vec![0]))
            .unwrap();
        let universe = FactUniverse::new(vec![
            (RelId::new("NumRel"), tuple![7, "seven"]),
            (RelId::new("NumRel"), tuple![9, "nine"]),
        ]);
        let oracle = CountdownOracle;
        let engine = FrontierEngine::new(
            &access,
            &oracle,
            universe,
            Arc::new(Instance::new()),
            &BTreeSet::new(),
            EngineConfig::default(),
        );
        let empty_bindings: Vec<_> = engine
            .candidates(&FactSet::empty(2), None)
            .into_iter()
            .filter(|c| c.added.is_empty())
            .collect();
        assert!(!empty_bindings.is_empty());
        for candidate in &empty_bindings {
            for value in candidate.binding.values() {
                assert_eq!(
                    value.data_type(),
                    accltl_relational::DataType::Integer,
                    "ill-typed empty-binding guess {value} can never be a valid access"
                );
            }
            let access_obj = Access::new("AcNum", candidate.binding.clone());
            assert!(access.validate_access(&access_obj).is_ok());
        }
    }

    #[test]
    fn fresh_guesses_keep_non_text_positions_complete() {
        use accltl_relational::{DataType, RelationSchema, Schema};

        // The pool holds no integer at all: the enumeration must still guess
        // a fresh *integer* for the int-typed input position (dropping the
        // text placeholder without a typed replacement would make
        // "Exhausted" a wrong completeness certificate).
        let schema = Schema::from_relations([
            RelationSchema::new("NumRel", vec![DataType::Integer, DataType::Text]),
            RelationSchema::new("TxtRel", vec![DataType::Text]),
        ])
        .unwrap();
        let access = crate::access::AccessSchema::new(schema)
            .with_method(AccessMethod::new("AcNum", "NumRel", vec![0]))
            .unwrap();
        let universe = FactUniverse::new(vec![(RelId::new("TxtRel"), tuple!["only-text"])]);
        let oracle = CountdownOracle;
        let engine = FrontierEngine::new(
            &access,
            &oracle,
            universe,
            Arc::new(Instance::new()),
            &BTreeSet::new(),
            EngineConfig::default(),
        );
        let empty_bindings: Vec<_> = engine
            .candidates(&FactSet::empty(1), None)
            .into_iter()
            .filter(|c| c.added.is_empty())
            .collect();
        assert!(
            empty_bindings
                .iter()
                .any(|c| matches!(c.binding.values(), [Value::Int(_)])),
            "no fresh integer guess for the int-typed input position"
        );
    }

    #[test]
    fn placeholder_bindings_are_type_correct() {
        use accltl_relational::{DataType, RelationSchema, Schema};

        let schema = Schema::from_relations([RelationSchema::new(
            "NumRel",
            vec![DataType::Integer, DataType::Text],
        )])
        .unwrap();
        let access = crate::access::AccessSchema::new(schema)
            .with_method(AccessMethod::new("AcNum", "NumRel", vec![0, 1]))
            .unwrap();
        let oracle = CountdownOracle;
        let engine = FrontierEngine::new(
            &access,
            &oracle,
            FactUniverse::default(),
            Arc::new(Instance::new()),
            &BTreeSet::new(),
            EngineConfig {
                empty_bindings: EmptyBindingMode::Placeholder,
                ..EngineConfig::default()
            },
        );
        let candidates = engine.candidates(&FactSet::empty(0), None);
        assert_eq!(candidates.len(), 1);
        let access_obj = Access::new("AcNum", candidates[0].binding.clone());
        assert!(
            access.validate_access(&access_obj).is_ok(),
            "Sch0−Acc placeholder binding must be a valid access: {:?}",
            candidates[0].binding
        );
    }

    #[test]
    fn placeholder_mode_emits_one_empty_binding_per_method() {
        let schema = phone_directory_access_schema();
        let oracle = CountdownOracle;
        let engine = FrontierEngine::new(
            &schema,
            &oracle,
            FactUniverse::default(),
            Arc::new(Instance::new()),
            &BTreeSet::new(),
            EngineConfig {
                empty_bindings: EmptyBindingMode::Placeholder,
                ..EngineConfig::default()
            },
        );
        let candidates = engine.candidates(&FactSet::empty(0), None);
        assert_eq!(candidates.len(), schema.method_count());
        assert!(candidates.iter().all(|c| c.added.is_empty()));
    }
}
