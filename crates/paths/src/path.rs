//! Access paths: sequences of accesses and well-formed responses, and the
//! configurations (revealed instances) they induce.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use accltl_relational::{Instance, InstanceOverlay, Tuple};

use crate::access::{Access, AccessSchema};
use crate::Result;

/// A response to an access: a set of tuples of the accessed relation that are
/// compatible with the binding.
pub type Response = BTreeSet<Tuple>;

/// One transition of the LTS induced by an access path: the instance before
/// the access, the access itself, its response, and the instance afterwards.
///
/// This is exactly the object the paper's transition formulas (`FO∃+Acc`) are
/// evaluated on: `(Iᵢ, (AcMᵢ, b̄ᵢ), Iᵢ₊₁)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// The instance before the access (`Iᵢ`).
    pub before: Instance,
    /// The access performed.
    pub access: Access,
    /// The response returned.
    pub response: Response,
    /// The instance after the access (`Iᵢ₊₁`).
    pub after: Instance,
}

/// An access path: a sequence of accesses and their responses.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AccessPath {
    steps: Vec<(Access, Response)>,
}

impl AccessPath {
    /// The empty access path.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a path from a sequence of steps.
    #[must_use]
    pub fn from_steps(steps: Vec<(Access, Response)>) -> Self {
        AccessPath { steps }
    }

    /// Appends an access and its response.
    pub fn push(&mut self, access: Access, response: Response) {
        self.steps.push((access, response));
    }

    /// Builder-style variant of [`AccessPath::push`].
    #[must_use]
    pub fn with_step(mut self, access: Access, response: Response) -> Self {
        self.push(access, response);
        self
    }

    /// The number of accesses in the path.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if the path contains no accesses.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The steps of the path.
    #[must_use]
    pub fn steps(&self) -> &[(Access, Response)] {
        &self.steps
    }

    /// Iterates over the accesses of the path, in order.
    pub fn accesses(&self) -> impl Iterator<Item = &Access> {
        self.steps.iter().map(|(a, _)| a)
    }

    /// The path with its first access dropped (used by the long-term
    /// relevance definition, Example 2.3).
    #[must_use]
    pub fn without_first(&self) -> AccessPath {
        AccessPath {
            steps: self.steps.iter().skip(1).cloned().collect(),
        }
    }

    /// The prefix of the path with the given number of steps.
    #[must_use]
    pub fn prefix(&self, len: usize) -> AccessPath {
        AccessPath {
            steps: self.steps.iter().take(len).cloned().collect(),
        }
    }

    /// Validates every access and response of the path against the schema.
    pub fn validate(&self, schema: &AccessSchema) -> Result<()> {
        for (access, response) in &self.steps {
            schema.validate_access(access)?;
            let tuples: Vec<Tuple> = response.iter().cloned().collect();
            schema.validate_response(access, &tuples)?;
        }
        Ok(())
    }

    /// The sequence of configurations `I0 = Conf(ε), Conf(p[..1]), ...,
    /// Conf(p)` induced by the path over the initial instance `I0`, as
    /// copy-on-write overlays sharing `base`.
    ///
    /// `Conf(p, I0)` unions `I0` with every tuple returned by an access, added
    /// to the relation of that access's method (paper, Section 2).  Each step
    /// costs `O(|response|)` on top of the accumulated delta; materialize an
    /// overlay only where a standalone [`Instance`] is genuinely needed.
    pub fn overlay_configurations(
        &self,
        schema: &AccessSchema,
        base: &Arc<Instance>,
    ) -> Result<Vec<InstanceOverlay>> {
        let mut configs = Vec::with_capacity(self.steps.len() + 1);
        let mut current = InstanceOverlay::new(base.clone());
        configs.push(current.clone());
        for (access, response) in &self.steps {
            let relation = schema.require_method(access.method)?.relation_id();
            for tuple in response {
                current.push_fact(relation, tuple.clone());
            }
            configs.push(current.clone());
        }
        Ok(configs)
    }

    /// The configuration sequence as eagerly materialized instances (one
    /// full instance per step; prefer [`AccessPath::overlay_configurations`]
    /// on hot paths).
    pub fn configurations(
        &self,
        schema: &AccessSchema,
        initial: &Instance,
    ) -> Result<Vec<Instance>> {
        let base = Arc::new(initial.clone());
        Ok(self
            .overlay_configurations(schema, &base)?
            .iter()
            .map(InstanceOverlay::materialize)
            .collect())
    }

    /// The final configuration `Conf(p, I0)`, computed directly — one clone
    /// of the initial instance plus one insert per response tuple, never
    /// materializing the intermediate configurations.
    pub fn configuration(&self, schema: &AccessSchema, initial: &Instance) -> Result<Instance> {
        let mut current = initial.clone();
        for (access, response) in &self.steps {
            let relation = schema.require_method(access.method)?.relation_id();
            for tuple in response {
                current.add_fact(relation, tuple.clone());
            }
        }
        Ok(current)
    }

    /// The transitions of the path (before/access/response/after), the
    /// structures on which transition formulas are evaluated.
    pub fn transitions(
        &self,
        schema: &AccessSchema,
        initial: &Instance,
    ) -> Result<Vec<Transition>> {
        let base = Arc::new(initial.clone());
        let configs = self.overlay_configurations(schema, &base)?;
        Ok(self
            .steps
            .iter()
            .enumerate()
            .map(|(i, (access, response))| Transition {
                before: configs[i].materialize(),
                access: access.clone(),
                response: response.clone(),
                after: configs[i + 1].materialize(),
            })
            .collect())
    }
}

impl fmt::Display for AccessPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            return write!(f, "ε");
        }
        for (i, (access, response)) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, " ; ")?;
            }
            write!(f, "{access} ⇒ {{")?;
            for (j, t) in response.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

/// Builds a [`Response`] from an iterator of tuples.
#[must_use]
pub fn response(tuples: impl IntoIterator<Item = Tuple>) -> Response {
    tuples.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::phone_directory_access_schema;
    use accltl_relational::tuple;

    fn smith() -> Tuple {
        tuple!["Smith", "OX13QD", "Parks Rd", 5551212]
    }

    fn smith_address() -> Tuple {
        tuple!["Parks Rd", "OX13QD", "Smith", 13]
    }

    fn jones_address() -> Tuple {
        tuple!["Parks Rd", "OX13QD", "Jones", 16]
    }

    /// The path from Figure 1: an access to Mobile# with "Smith" revealing
    /// Smith's tuple, then an access to Address with the discovered street and
    /// postcode revealing two address tuples.
    fn figure1_path() -> AccessPath {
        AccessPath::new()
            .with_step(Access::new("AcM1", tuple!["Smith"]), response([smith()]))
            .with_step(
                Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]),
                response([smith_address(), jones_address()]),
            )
    }

    #[test]
    fn path_accessors() {
        let p = figure1_path();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.accesses().count(), 2);
        assert_eq!(p.prefix(1).len(), 1);
        assert_eq!(p.without_first().len(), 1);
        assert_eq!(p.without_first().accesses().next().unwrap().method, "AcM2");
    }

    #[test]
    fn path_validates_against_schema() {
        let schema = phone_directory_access_schema();
        assert!(figure1_path().validate(&schema).is_ok());

        let bad = AccessPath::new().with_step(
            Access::new("AcM1", tuple!["Smith"]),
            response([jones_address()]),
        );
        assert!(bad.validate(&schema).is_err());
    }

    #[test]
    fn configurations_accumulate_facts() {
        let schema = phone_directory_access_schema();
        let p = figure1_path();
        let configs = p.configurations(&schema, &Instance::new()).unwrap();
        assert_eq!(configs.len(), 3);
        assert!(configs[0].is_empty());
        assert_eq!(configs[1].fact_count(), 1);
        assert!(configs[1].contains("Mobile#", &smith()));
        assert_eq!(configs[2].fact_count(), 3);
        assert!(configs[2].contains("Address", &jones_address()));

        let final_config = p.configuration(&schema, &Instance::new()).unwrap();
        assert_eq!(final_config, configs[2]);
    }

    #[test]
    fn configurations_respect_initial_instance() {
        let schema = phone_directory_access_schema();
        let mut initial = Instance::new();
        initial.add_fact("Address", tuple!["High St", "OX26NN", "Doe", 1]);
        let configs = figure1_path().configurations(&schema, &initial).unwrap();
        assert!(configs
            .iter()
            .all(|c| c.contains("Address", &tuple!["High St", "OX26NN", "Doe", 1])));
        assert_eq!(configs[2].fact_count(), 4);
    }

    #[test]
    fn transitions_expose_before_and_after() {
        let schema = phone_directory_access_schema();
        let transitions = figure1_path()
            .transitions(&schema, &Instance::new())
            .unwrap();
        assert_eq!(transitions.len(), 2);
        assert!(transitions[0].before.is_empty());
        assert_eq!(transitions[0].after.fact_count(), 1);
        assert_eq!(transitions[1].before, transitions[0].after);
        assert_eq!(transitions[1].access.method, "AcM2");
        assert_eq!(transitions[1].response.len(), 2);
    }

    #[test]
    fn empty_response_still_advances_the_path() {
        let schema = phone_directory_access_schema();
        let p = AccessPath::new().with_step(Access::new("AcM1", tuple!["Nobody"]), Response::new());
        let configs = p.configurations(&schema, &Instance::new()).unwrap();
        assert_eq!(configs.len(), 2);
        assert!(configs[1].is_empty());
    }

    #[test]
    fn unknown_method_in_path_is_an_error() {
        let schema = phone_directory_access_schema();
        let p = AccessPath::new().with_step(Access::new("Nope", tuple!["x"]), Response::new());
        assert!(p.configurations(&schema, &Instance::new()).is_err());
    }

    #[test]
    fn display_shows_steps() {
        assert_eq!(AccessPath::new().to_string(), "ε");
        let p = figure1_path();
        let s = p.to_string();
        assert!(s.contains("AcM1"));
        assert!(s.contains("⇒"));
    }
}
