//! Access methods, accesses and schemas with access restrictions.

use std::collections::BTreeMap;
use std::fmt;

use accltl_relational::schema::phone_directory_schema;
use accltl_relational::symbols::{RelKey, SymKey};
use accltl_relational::{Instance, RelId, Schema, Sym, SymbolTable, Tuple, Value};

use crate::error::PathError;
use crate::Result;

/// An access method: a relation plus a set of input positions (0-based), with
/// optional exactness / idempotence markers prescribed by the schema
/// (Section 2 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AccessMethod {
    name: Sym,
    relation: RelId,
    input_positions: Vec<usize>,
    exact: bool,
    idempotent: bool,
}

impl AccessMethod {
    /// Creates an access method.  Input positions are sorted and deduplicated.
    #[must_use]
    pub fn new(
        name: impl Into<Sym>,
        relation: impl Into<RelId>,
        mut input_positions: Vec<usize>,
    ) -> Self {
        input_positions.sort_unstable();
        input_positions.dedup();
        AccessMethod {
            name: name.into(),
            relation: relation.into(),
            input_positions,
            exact: false,
            idempotent: false,
        }
    }

    /// Creates a boolean access method: every position of the relation is an
    /// input position, so an access is a membership test.
    #[must_use]
    pub fn boolean(name: impl Into<Sym>, relation: impl Into<RelId>, arity: usize) -> Self {
        AccessMethod::new(name, relation, (0..arity).collect())
    }

    /// Creates an input-free access method (no input positions); an access
    /// simply asks for tuples of the relation.
    #[must_use]
    pub fn free(name: impl Into<Sym>, relation: impl Into<RelId>) -> Self {
        AccessMethod::new(name, relation, Vec::new())
    }

    /// Marks the method as exact (its responses are complete views of the
    /// underlying data).
    #[must_use]
    pub fn exact(mut self) -> Self {
        self.exact = true;
        self
    }

    /// Marks the method as idempotent (repeating the same access yields the
    /// same response).
    #[must_use]
    pub fn idempotent(mut self) -> Self {
        self.idempotent = true;
        self
    }

    /// The method name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name.as_str()
    }

    /// The method name as an interned symbol.
    #[must_use]
    pub fn name_sym(&self) -> Sym {
        self.name
    }

    /// The relation accessed by the method.
    #[must_use]
    pub fn relation(&self) -> &'static str {
        self.relation.as_str()
    }

    /// The accessed relation's interned id.
    #[must_use]
    pub fn relation_id(&self) -> RelId {
        self.relation
    }

    /// The input positions (0-based, sorted).
    #[must_use]
    pub fn input_positions(&self) -> &[usize] {
        &self.input_positions
    }

    /// The number of input positions (the arity of bindings).
    #[must_use]
    pub fn input_arity(&self) -> usize {
        self.input_positions.len()
    }

    /// True if the schema declares this method exact.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// True if the schema declares this method idempotent.  Exact methods are
    /// idempotent by definition.
    #[must_use]
    pub fn is_idempotent(&self) -> bool {
        self.idempotent || self.exact
    }
}

impl fmt::Display for AccessMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inputs: Vec<String> = self
            .input_positions
            .iter()
            .map(|p| (p + 1).to_string())
            .collect();
        write!(
            f,
            "{} on {}[{}]{}{}",
            self.name,
            self.relation,
            inputs.join(","),
            if self.exact { " (exact)" } else { "" },
            if self.idempotent { " (idempotent)" } else { "" }
        )
    }
}

/// An access: an access method plus a binding for its input positions.
///
/// The binding's `i`-th value is the value for the method's `i`-th input
/// position (in sorted position order).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Access {
    /// The access method name (interned).
    pub method: Sym,
    /// The binding: one value per input position of the method.
    pub binding: Tuple,
}

impl Access {
    /// Creates an access.
    #[must_use]
    pub fn new(method: impl Into<Sym>, binding: Tuple) -> Self {
        Access {
            method: method.into(),
            binding,
        }
    }

    /// Creates an access from raw values.
    #[must_use]
    pub fn with_values(method: impl Into<Sym>, values: Vec<Value>) -> Self {
        Access::new(method, Tuple::new(values))
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.method, self.binding)
    }
}

/// A schema extended with access methods: the central object of the paper.
#[derive(Debug, Clone, Default)]
pub struct AccessSchema {
    schema: Schema,
    methods: BTreeMap<Sym, AccessMethod>,
    symbols: SymbolTable,
}

/// Access schemas are equal when their schemas and methods are; the symbol
/// table's registration order is bookkeeping, not identity.
impl PartialEq for AccessSchema {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.methods == other.methods
    }
}

impl Eq for AccessSchema {}

impl AccessSchema {
    /// Creates an access schema over the given relational schema, with no
    /// access methods yet.
    #[must_use]
    pub fn new(schema: Schema) -> Self {
        let symbols = schema.symbols().clone();
        AccessSchema {
            schema,
            methods: BTreeMap::new(),
            symbols,
        }
    }

    /// Adds an access method.
    ///
    /// # Errors
    /// Fails if the method's relation is unknown, an input position is out of
    /// range, or the method name is already taken.
    pub fn add_method(&mut self, method: AccessMethod) -> Result<()> {
        let relation = self.schema.require_relation_id(method.relation_id())?;
        for &p in method.input_positions() {
            if p >= relation.arity() {
                return Err(PathError::InputPositionOutOfRange {
                    method: method.name().to_owned(),
                    position: p + 1,
                });
            }
        }
        if self.methods.contains_key(&method.name_sym()) {
            return Err(PathError::DuplicateAccessMethod(method.name().to_owned()));
        }
        self.symbols.add_method(method.name_sym());
        self.methods.insert(method.name_sym(), method);
        Ok(())
    }

    /// Builder-style variant of [`AccessSchema::add_method`].
    ///
    /// # Errors
    /// Same as [`AccessSchema::add_method`].
    pub fn with_method(mut self, method: AccessMethod) -> Result<Self> {
        self.add_method(method)?;
        Ok(self)
    }

    /// The underlying relational schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The schema's symbol table, extended with this access schema's method
    /// names (both resolved at build time).
    #[must_use]
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Looks up an access method by name.  String keys resolve without
    /// growing the intern pool (unknown names answer `None`).
    #[must_use]
    pub fn method(&self, name: impl SymKey) -> Option<&AccessMethod> {
        name.resolve_sym().and_then(|sym| self.methods.get(&sym))
    }

    /// Looks up an access method by name, failing when absent.  Like
    /// [`AccessSchema::method`], unknown string names are reported without
    /// being interned.
    pub fn require_method(&self, name: impl SymKey + std::fmt::Display) -> Result<&AccessMethod> {
        name.resolve_sym()
            .and_then(|sym| self.methods.get(&sym))
            .ok_or_else(|| PathError::UnknownAccessMethod(name.to_string()))
    }

    /// Iterates over the access methods in name order.
    pub fn methods(&self) -> impl Iterator<Item = &AccessMethod> {
        self.methods.values()
    }

    /// The access methods on a given relation.
    pub fn methods_for_relation(
        &self,
        relation: impl RelKey,
    ) -> impl Iterator<Item = &AccessMethod> {
        let relation = relation.resolve_rel();
        self.methods
            .values()
            .filter(move |m| Some(m.relation_id()) == relation)
    }

    /// Number of access methods.
    #[must_use]
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Validates an access: the method must exist and the binding must have
    /// one value per input position, with types matching the relation's
    /// declared column types.
    pub fn validate_access(&self, access: &Access) -> Result<()> {
        let method = self.require_method(access.method)?;
        if access.binding.arity() != method.input_arity() {
            return Err(PathError::InvalidBinding {
                method: access.method.as_str().to_owned(),
                reason: format!(
                    "expected {} value(s), got {}",
                    method.input_arity(),
                    access.binding.arity()
                ),
            });
        }
        let relation = self.schema.require_relation_id(method.relation_id())?;
        for (value, &position) in access.binding.values().iter().zip(method.input_positions()) {
            let expected = relation.column_types()[position];
            if !value.is_labelled_null() && value.data_type() != expected {
                return Err(PathError::InvalidBinding {
                    method: access.method.as_str().to_owned(),
                    reason: format!(
                        "value {value} at input position {} should have type {expected}",
                        position + 1
                    ),
                });
            }
        }
        Ok(())
    }

    /// True if a tuple of the accessed relation is compatible with the
    /// access's binding (agrees with it on every input position).
    #[must_use]
    pub fn tuple_matches_access(&self, access: &Access, tuple: &Tuple) -> bool {
        let Some(method) = self.method(access.method) else {
            return false;
        };
        method
            .input_positions()
            .iter()
            .zip(access.binding.values())
            .all(|(&p, bound)| tuple.get(p) == Some(bound))
    }

    /// The exact response to an access on a (hidden) instance: all tuples of
    /// the accessed relation that agree with the binding.
    #[must_use]
    pub fn exact_response(
        &self,
        access: &Access,
        hidden: &Instance,
    ) -> std::collections::BTreeSet<Tuple> {
        let Some(method) = self.method(access.method) else {
            return std::collections::BTreeSet::new();
        };
        hidden
            .tuples(method.relation_id())
            .filter(|t| self.tuple_matches_access(access, t))
            .cloned()
            .collect()
    }

    /// Checks that a response is well formed for an access: every tuple has
    /// the relation's arity and agrees with the binding on the input
    /// positions.
    pub fn validate_response(&self, access: &Access, response: &[Tuple]) -> Result<()> {
        let method = self.require_method(access.method)?;
        let relation = self.schema.require_relation_id(method.relation_id())?;
        for tuple in response {
            if tuple.arity() != relation.arity() {
                return Err(PathError::MalformedResponse {
                    method: access.method.as_str().to_owned(),
                    reason: format!(
                        "tuple {tuple} has arity {}, relation {} has arity {}",
                        tuple.arity(),
                        method.relation(),
                        relation.arity()
                    ),
                });
            }
            if !self.tuple_matches_access(access, tuple) {
                return Err(PathError::MalformedResponse {
                    method: access.method.as_str().to_owned(),
                    reason: format!("tuple {tuple} disagrees with binding {}", access.binding),
                });
            }
        }
        Ok(())
    }
}

/// The paper's running example: the phone-directory schema with access method
/// `AcM1` on `Mobile#` (input: name) and `AcM2` on `Address` (inputs: street
/// and postcode).
#[must_use]
pub fn phone_directory_access_schema() -> AccessSchema {
    let mut schema = AccessSchema::new(phone_directory_schema());
    schema
        .add_method(AccessMethod::new("AcM1", "Mobile#", vec![0]))
        .expect("AcM1 is well-formed");
    schema
        .add_method(AccessMethod::new("AcM2", "Address", vec![0, 1]))
        .expect("AcM2 is well-formed");
    schema
}

#[cfg(test)]
mod tests {
    use super::*;
    use accltl_relational::tuple;

    #[test]
    fn method_constructors_normalise_positions() {
        let m = AccessMethod::new("A", "R", vec![2, 0, 2]);
        assert_eq!(m.input_positions(), &[0, 2]);
        assert_eq!(m.input_arity(), 2);
        let b = AccessMethod::boolean("B", "R", 3);
        assert_eq!(b.input_positions(), &[0, 1, 2]);
        let f = AccessMethod::free("F", "R");
        assert_eq!(f.input_arity(), 0);
    }

    #[test]
    fn exactness_implies_idempotence() {
        let m = AccessMethod::new("A", "R", vec![0]).exact();
        assert!(m.is_exact());
        assert!(m.is_idempotent());
        let i = AccessMethod::new("B", "R", vec![0]).idempotent();
        assert!(!i.is_exact());
        assert!(i.is_idempotent());
    }

    #[test]
    fn phone_directory_schema_has_paper_methods() {
        let schema = phone_directory_access_schema();
        assert_eq!(schema.method_count(), 2);
        assert_eq!(schema.require_method("AcM1").unwrap().relation(), "Mobile#");
        assert_eq!(
            schema.require_method("AcM2").unwrap().input_positions(),
            &[0, 1]
        );
        assert_eq!(schema.methods_for_relation("Address").count(), 1);
    }

    #[test]
    fn add_method_validates_relation_and_positions() {
        let mut schema = AccessSchema::new(phone_directory_schema());
        assert!(matches!(
            schema.add_method(AccessMethod::new("A", "Nope", vec![0])),
            Err(PathError::Relational(_))
        ));
        assert!(matches!(
            schema.add_method(AccessMethod::new("A", "Address", vec![7])),
            Err(PathError::InputPositionOutOfRange { .. })
        ));
        schema
            .add_method(AccessMethod::new("A", "Address", vec![0]))
            .unwrap();
        assert!(matches!(
            schema.add_method(AccessMethod::new("A", "Mobile#", vec![0])),
            Err(PathError::DuplicateAccessMethod(_))
        ));
    }

    #[test]
    fn access_validation_checks_binding_arity_and_types() {
        let schema = phone_directory_access_schema();
        assert!(schema
            .validate_access(&Access::new("AcM1", tuple!["Smith"]))
            .is_ok());
        assert!(matches!(
            schema.validate_access(&Access::new("AcM1", tuple!["Smith", "extra"])),
            Err(PathError::InvalidBinding { .. })
        ));
        assert!(matches!(
            schema.validate_access(&Access::new("AcM1", tuple![42])),
            Err(PathError::InvalidBinding { .. })
        ));
        assert!(matches!(
            schema.validate_access(&Access::new("Nope", tuple!["Smith"])),
            Err(PathError::UnknownAccessMethod(_))
        ));
    }

    #[test]
    fn matching_and_exact_responses() {
        let schema = phone_directory_access_schema();
        let access = Access::new("AcM1", tuple!["Smith"]);
        let smith = tuple!["Smith", "OX13QD", "Parks Rd", 5551212];
        let jones = tuple!["Jones", "OX13QD", "Parks Rd", 5550000];
        assert!(schema.tuple_matches_access(&access, &smith));
        assert!(!schema.tuple_matches_access(&access, &jones));

        let mut hidden = Instance::new();
        hidden.add_fact("Mobile#", smith.clone());
        hidden.add_fact("Mobile#", jones);
        let response = schema.exact_response(&access, &hidden);
        assert_eq!(response.len(), 1);
        assert!(response.contains(&smith));
    }

    #[test]
    fn response_validation_rejects_incompatible_tuples() {
        let schema = phone_directory_access_schema();
        let access = Access::new("AcM1", tuple!["Smith"]);
        let ok = vec![tuple!["Smith", "OX13QD", "Parks Rd", 5551212]];
        assert!(schema.validate_response(&access, &ok).is_ok());
        let wrong_binding = vec![tuple!["Jones", "OX13QD", "Parks Rd", 5551212]];
        assert!(matches!(
            schema.validate_response(&access, &wrong_binding),
            Err(PathError::MalformedResponse { .. })
        ));
        let wrong_arity = vec![tuple!["Smith", "OX13QD"]];
        assert!(matches!(
            schema.validate_response(&access, &wrong_arity),
            Err(PathError::MalformedResponse { .. })
        ));
    }

    #[test]
    fn displays_are_compact() {
        let m = AccessMethod::new("AcM1", "Mobile#", vec![0]).exact();
        assert_eq!(m.to_string(), "AcM1 on Mobile#[1] (exact)");
        let a = Access::new("AcM1", tuple!["Smith"]);
        assert_eq!(a.to_string(), "AcM1(\"Smith\")");
    }
}
