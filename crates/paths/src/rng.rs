//! A small seeded pseudo-random generator for the workload generators.
//!
//! The container builds offline, so the crate carries its own splitmix64
//! generator instead of depending on `rand`.  This also makes workloads
//! stable across dependency upgrades: the byte stream is fixed by this file,
//! not by whichever `rand` version is resolved.

/// A deterministic splitmix64 generator.
#[derive(Debug, Clone)]
pub struct SeededRng {
    state: u64,
}

impl SeededRng {
    /// A generator with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SeededRng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..bound` (`0` when `bound == 0`).
    pub fn usize_below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// A uniform value in `0..=max`.
    pub fn usize_up_to(&mut self, max: usize) -> usize {
        self.usize_below(max + 1)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bool_with(&mut self, p: f64) -> bool {
        let threshold = (p.clamp(0.0, 1.0) * (u64::MAX as f64)) as u64;
        self.next_u64() <= threshold
    }

    /// An unbiased Fisher–Yates shuffle of `items`.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.usize_below(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SeededRng::new(7);
        for bound in 1..20 {
            for _ in 0..50 {
                assert!(rng.usize_below(bound) < bound);
            }
        }
        assert_eq!(rng.usize_below(0), 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SeededRng::new(3);
        let mut items: Vec<usize> = (0..10).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }
}
