//! Shared helpers for the benchmark harness that regenerates the paper's
//! tables and figures.
//!
//! Each bench target prints the rows/series it reproduces (in addition to the
//! Criterion measurements), so that `cargo bench` output can be compared
//! side-by-side with the paper — see `EXPERIMENTS.md` at the workspace root.

use accltl_core::prelude::*;

/// The per-fragment workloads used by the Table 1 complexity sweep: for a
/// requested "size" (number of chained obligations) build a representative
/// satisfiable formula of each fragment over the phone-directory schema.
#[must_use]
pub fn table1_formula(fragment: Fragment, size: usize) -> AccLtl {
    let jones_post = PosFormula::exists(
        vec!["s", "p", "h"],
        post_atom(
            "Address",
            vec![
                Term::var("s"),
                Term::var("p"),
                Term::constant("Jones"),
                Term::var("h"),
            ],
        ),
    );
    let mobile_pre = PosFormula::exists(
        vec!["n", "p", "s", "ph"],
        pre_atom(
            "Mobile#",
            vec![
                Term::var("n"),
                Term::var("p"),
                Term::var("s"),
                Term::var("ph"),
            ],
        ),
    );
    let acm1_bound = PosFormula::exists(vec!["n"], isbind_atom("AcM1", vec![Term::var("n")]));
    match fragment {
        Fragment::XZeroAry => {
            // Nested X obligations ending in a data requirement.
            let mut f = AccLtl::atom(jones_post);
            for _ in 0..size {
                f = AccLtl::next(f);
            }
            f
        }
        Fragment::ZeroAry => {
            // A conjunction of eventualities (the standard PSPACE stress shape).
            AccLtl::and(
                (0..size)
                    .map(|i| {
                        if i % 2 == 0 {
                            AccLtl::finally(AccLtl::atom(jones_post.clone()))
                        } else {
                            AccLtl::finally(AccLtl::atom(mobile_pre.clone()))
                        }
                    })
                    .collect(),
            )
        }
        Fragment::ZeroAryWithInequalities => {
            let schema = phone_directory_access_schema();
            let fd = properties::functional_dependency_formula(
                &schema,
                &FunctionalDependency::new("Mobile#", vec![0], 3),
            );
            AccLtl::and(
                std::iter::once(fd)
                    .chain((0..size).map(|_| AccLtl::finally(AccLtl::atom(mobile_pre.clone()))))
                    .collect(),
            )
        }
        Fragment::BindingPositive => AccLtl::and(
            (0..size)
                .map(|i| {
                    if i % 2 == 0 {
                        AccLtl::finally(AccLtl::atom(acm1_bound.clone()))
                    } else {
                        AccLtl::finally(AccLtl::atom(jones_post.clone()))
                    }
                })
                .collect(),
        ),
        Fragment::Full | Fragment::FullWithInequalities => AccLtl::and(
            std::iter::once(AccLtl::globally(AccLtl::not(AccLtl::atom(acm1_bound))))
                .chain((0..size).map(|_| AccLtl::finally(AccLtl::atom(jones_post.clone()))))
                .collect(),
        ),
    }
}

/// The six Table 1 rows in display order.
#[must_use]
pub fn table1_rows() -> Vec<Fragment> {
    vec![
        Fragment::FullWithInequalities,
        Fragment::Full,
        Fragment::BindingPositive,
        Fragment::ZeroAry,
        Fragment::ZeroAryWithInequalities,
        Fragment::XZeroAry,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_formulas_land_in_their_rows() {
        for fragment in [
            Fragment::XZeroAry,
            Fragment::ZeroAry,
            Fragment::ZeroAryWithInequalities,
            Fragment::BindingPositive,
            Fragment::Full,
        ] {
            let f = table1_formula(fragment, 2);
            assert!(
                accltl_core::logic::fragment::belongs_to(&f, fragment),
                "{fragment}: {f}"
            );
        }
    }

    #[test]
    fn table1_formulas_grow_with_size() {
        for fragment in table1_rows() {
            assert!(table1_formula(fragment, 4).size() > table1_formula(fragment, 1).size());
        }
    }
}
