//! Frontier-pool benchmark: persistent work-stealing workers
//! (`paths::pool`) against a fresh `thread::scope` per round — the regime
//! the pool exists for is *small-layer-heavy* search, where per-round spawn
//! and join overhead used to dominate — plus the end-to-end layered search
//! on the Figure-1 workload at ×1/×4/×16 scale and 1/2/4 worker threads,
//! and cached-vs-uncached guard checks under the content-addressed
//! `StructureKey`s.  Medians are recorded in `CHANGES.md`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use accltl_core::logic::bounded::BoundedSearcher;
use accltl_core::paths::pool;
use accltl_core::prelude::*;
use accltl_core::relational::set_guard_cache_enabled;

/// A stand-in for one node expansion: a few microseconds of pure compute,
/// so the round benchmarks measure coordination overhead against realistic
/// (small) task grains.
fn expansion_grain(seed: u64) -> u64 {
    let mut x = seed | 1;
    for _ in 0..2_000 {
        x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17) ^ seed;
    }
    x
}

/// The per-layer-spawn baseline the engine used before the pool: one
/// `std::thread::scope` per round, tasks dealt to `threads` chunks.
fn spawn_per_round(rounds: usize, tasks_per_round: usize, threads: usize) -> u64 {
    let mut acc = 0u64;
    for round in 0..rounds {
        let tasks: Vec<u64> = (0..tasks_per_round)
            .map(|t| (round * tasks_per_round + t) as u64)
            .collect();
        let chunk = tasks.len().div_ceil(threads);
        let mut results = vec![0u64; tasks.len()];
        std::thread::scope(|scope| {
            for (tasks, results) in tasks.chunks(chunk).zip(results.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (task, slot) in tasks.iter().zip(results.iter_mut()) {
                        *slot = expansion_grain(*task);
                    }
                });
            }
        });
        acc = results.iter().fold(acc, |a, r| a.wrapping_add(*r));
    }
    acc
}

/// The same rounds through one persistent worker set.
fn pooled_rounds(rounds: usize, tasks_per_round: usize, threads: usize) -> u64 {
    pool::scoped(
        threads,
        1,
        |&task: &u64| expansion_grain(task),
        |pool| {
            let mut acc = 0u64;
            for round in 0..rounds {
                let tasks: Vec<u64> = (0..tasks_per_round)
                    .map(|t| (round * tasks_per_round + t) as u64)
                    .collect();
                acc = pool.run(tasks).iter().fold(acc, |a, r| a.wrapping_add(*r));
            }
            acc
        },
    )
}

/// The Figure-1-shaped hidden instance at the given scale (same shape as
/// the `overlay` and `guard_cache` bench workloads).
fn scaled_initial(scale: usize) -> Instance {
    let mut hidden = Instance::new();
    for s in 0..scale {
        let street = format!("Street{s}");
        let postcode = format!("OX{s}QD");
        hidden.add_fact(
            "Mobile#",
            tuple![
                format!("Resident{s}_0").as_str(),
                postcode.as_str(),
                street.as_str(),
                5_551_000 + s as i64
            ],
        );
        for h in 0..4usize {
            hidden.add_fact(
                "Address",
                tuple![
                    street.as_str(),
                    postcode.as_str(),
                    format!("Resident{s}_{h}").as_str(),
                    h as i64
                ],
            );
        }
    }
    hidden
}

/// The running dataflow sentence: an AcM1 access bound to a name already
/// revealed in `Address^pre`.
fn dataflow_atom() -> PosFormula {
    PosFormula::exists(
        vec!["n"],
        PosFormula::and(vec![
            isbind_atom("AcM1", vec![Term::var("n")]),
            PosFormula::exists(
                vec!["s", "p", "h"],
                pre_atom(
                    "Address",
                    vec![
                        Term::var("s"),
                        Term::var("p"),
                        Term::var("n"),
                        Term::var("h"),
                    ],
                ),
            ),
        ]),
    )
}

/// The searched formula: the street→postcode FD must keep holding while
/// the dataflow eventuality is pursued (expensive guards, layered
/// frontier — the `guard_cache` bench workload).
fn search_formula(schema: &AccessSchema) -> AccLtl {
    let fd = properties::functional_dependency_formula(
        schema,
        &FunctionalDependency::new("Address", vec![0], 1),
    );
    AccLtl::and(vec![fd, AccLtl::finally(AccLtl::atom(dataflow_atom()))])
}

fn bench_pool(c: &mut Criterion) {
    // Coordination overhead: many small rounds, as in small-layer-heavy
    // search frontiers.
    let mut rounds = c.benchmark_group("pool_rounds");
    rounds.sample_size(10);
    for threads in [2usize, 4] {
        rounds.bench_with_input(
            BenchmarkId::new("spawn_per_round", threads),
            &threads,
            |b, &threads| b.iter(|| spawn_per_round(64, 8, threads)),
        );
        rounds.bench_with_input(
            BenchmarkId::new("persistent_pool", threads),
            &threads,
            |b, &threads| b.iter(|| pooled_rounds(64, 8, threads)),
        );
    }
    rounds.finish();

    // End-to-end layered search through the pool-driven engine.
    let schema = phone_directory_access_schema();
    let formula = search_formula(&schema);
    let mut search = c.benchmark_group("pool_search");
    search.sample_size(10);
    for scale in [1usize, 4, 16] {
        let initial = scaled_initial(scale);
        for threads in [1usize, 2, 4] {
            search.bench_with_input(
                BenchmarkId::new(format!("fig1_x{scale}"), threads),
                &threads,
                |b, &threads| {
                    let config = EngineConfig::base().threads(threads);
                    b.iter(|| {
                        BoundedSearcher::with_engine_config(&schema, &initial, false, config)
                            .search(&formula)
                            .is_satisfiable()
                    });
                },
            );
        }
    }
    search.finish();

    // Guard checks under content-addressed keys: cached vs uncached.
    let mut keys = c.benchmark_group("content_keys");
    keys.sample_size(10);
    let initial = scaled_initial(4);
    for (label, cached) in [("cached", true), ("uncached", false)] {
        keys.bench_with_input(BenchmarkId::new(label, 4), &cached, |b, &cached| {
            set_guard_cache_enabled(cached);
            let config = EngineConfig::base().threads(1);
            b.iter(|| {
                BoundedSearcher::with_engine_config(&schema, &initial, false, config)
                    .search(&formula)
                    .is_satisfiable()
            });
            set_guard_cache_enabled(true);
        });
    }
    keys.finish();
}

criterion_group!(benches, bench_pool);
criterion_main!(benches);
