//! Copy-on-write configuration benchmark: configuration-sequence
//! construction (overlay vs eager materialization) and the engine-backed
//! bounded search, on the Figure 1 (phone-directory) schema with the
//! workload scaled 1×/4×/16× and the search run on 1/2/4 worker threads.
//!
//! These are the paths rebuilt by the overlay/engine refactor: `Conf(p, I0)`
//! as `Arc`-shared base + per-step delta (a step costs O(|response|)), and
//! the shared frontier engine whose layer expansion shards across threads
//! with thread-count-independent verdicts.  Before/after medians are
//! recorded in `CHANGES.md`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use accltl_core::logic::solver::sat_binding_positive_bounded;
use accltl_core::prelude::*;

/// A Figure-1-shaped access path with `scale` rounds of the two accesses:
/// each round looks up one resident's mobile entry, then opens the street's
/// address page revealing four tuples.
fn scaled_path(scale: usize) -> (AccessPath, Instance) {
    let mut path = AccessPath::new();
    let mut hidden = Instance::new();
    for s in 0..scale {
        let street = format!("Street{s}");
        let postcode = format!("OX{s}QD");
        let name = format!("Resident{s}_0");
        let mobile = tuple![
            name.as_str(),
            postcode.as_str(),
            street.as_str(),
            5_551_000 + s as i64
        ];
        hidden.add_fact("Mobile#", mobile.clone());
        path.push(
            Access::new("AcM1", tuple![name.as_str()]),
            [mobile].into_iter().collect(),
        );
        let mut response = std::collections::BTreeSet::new();
        for h in 0..4usize {
            let resident = format!("Resident{s}_{h}");
            let address = tuple![
                street.as_str(),
                postcode.as_str(),
                resident.as_str(),
                h as i64
            ];
            hidden.add_fact("Address", address.clone());
            response.insert(address);
        }
        path.push(
            Access::new("AcM2", tuple![street.as_str(), postcode.as_str()]),
            response,
        );
    }
    (path, hidden)
}

/// The searched formula: the Figure 1 property "eventually an AcM1 access is
/// made with a name already revealed in Address^pre" conjoined with an
/// eventually-Jones data goal — a binding-positive formula whose witness
/// needs a dataflow chain, scaled only through the initial instance.
fn search_formula() -> AccLtl {
    let dataflow = PosFormula::exists(
        vec!["n"],
        PosFormula::and(vec![
            isbind_atom("AcM1", vec![Term::var("n")]),
            PosFormula::exists(
                vec!["s", "p", "h"],
                pre_atom(
                    "Address",
                    vec![
                        Term::var("s"),
                        Term::var("p"),
                        Term::var("n"),
                        Term::var("h"),
                    ],
                ),
            ),
        ]),
    );
    AccLtl::finally(AccLtl::atom(dataflow))
}

fn bench_overlay(c: &mut Criterion) {
    let schema = phone_directory_access_schema();
    let mut group = c.benchmark_group("overlay");
    group.sample_size(10);
    for scale in [1usize, 4, 16] {
        let (path, _) = scaled_path(scale);
        let base = Arc::new(Instance::new());
        group.bench_with_input(BenchmarkId::new("config_seq", scale), &scale, |b, _| {
            b.iter(|| {
                path.overlay_configurations(&schema, &base)
                    .unwrap()
                    .last()
                    .unwrap()
                    .fact_count()
            });
        });
        group.bench_with_input(
            BenchmarkId::new("config_seq_eager", scale),
            &scale,
            |b, _| {
                b.iter(|| {
                    path.configurations(&schema, &Instance::new())
                        .unwrap()
                        .last()
                        .unwrap()
                        .fact_count()
                });
            },
        );

        // Bounded search over an initial instance that grows with the scale:
        // the universe (and with it every frontier layer) widens, which is
        // what the worker threads shard.
        let (_, initial) = scaled_path(scale);
        let formula = search_formula();
        for threads in [1usize, 2, 4] {
            let config = BoundedSearchConfig {
                threads,
                ..BoundedSearchConfig::default()
            };
            group.bench_with_input(
                BenchmarkId::new(format!("search_t{threads}"), scale),
                &scale,
                |b, _| {
                    b.iter(|| {
                        sat_binding_positive_bounded(&formula, &schema, &initial, &config)
                            .expect("binding-positive formula")
                            .is_satisfiable()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_overlay);
criterion_main!(benches);
