//! Figure 2: the inclusion diagram between the language classes.
//!
//! Prints the inclusion matrix (✓ for every edge of Figure 2, verified by the
//! fragment lattice) and measures the two executable conversions that realise
//! the non-trivial edges: the 0-ary → AccLTL+ lifting and the AccLTL+ →
//! A-automaton translation (Lemma 4.5).

use criterion::{criterion_group, criterion_main, Criterion};

use accltl_bench::{table1_formula, table1_rows};
use accltl_core::automata::accltl_plus_to_automaton;
use accltl_core::logic::fragment::lift_zero_ary_to_binding_positive;
use accltl_core::prelude::*;

fn print_inclusion_matrix() {
    println!("\n=== Figure 2: inclusions between language classes ===");
    let rows = table1_rows();
    print!("{:28}", "");
    for f in &rows {
        print!("{:>14}", short(*f));
    }
    println!();
    for smaller in &rows {
        print!("{:28}", smaller.to_string());
        for larger in &rows {
            let included = smaller == larger || smaller.included_in().contains(larger);
            print!("{:>14}", if included { "⊆" } else { "·" });
        }
        println!();
    }
    println!("(rows ⊆ columns; matches the edges of Figure 2 plus reflexivity)");
}

fn short(fragment: Fragment) -> &'static str {
    match fragment {
        Fragment::XZeroAry => "X,0-ary,≠",
        Fragment::ZeroAry => "0-ary",
        Fragment::ZeroAryWithInequalities => "0-ary,≠",
        Fragment::BindingPositive => "AccLTL+",
        Fragment::Full => "full",
        Fragment::FullWithInequalities => "full,≠",
    }
}

fn bench_conversions(c: &mut Criterion) {
    print_inclusion_matrix();
    let schema = phone_directory_access_schema();
    let zero_formula = AccLtl::until(
        AccLtl::not(AccLtl::atom(isbind_prop("AcM1"))),
        AccLtl::atom(isbind_prop("AcM2")),
    );
    let plus_formula = table1_formula(Fragment::BindingPositive, 2);

    let mut group = c.benchmark_group("fig2_inclusions");
    group.sample_size(20);
    group.bench_function("lift_zero_ary_to_accltl_plus", |b| {
        b.iter(|| lift_zero_ary_to_binding_positive(&zero_formula, &schema));
    });
    group.bench_function("translate_accltl_plus_to_a_automaton", |b| {
        b.iter(|| accltl_plus_to_automaton(&plus_formula).state_count);
    });
    group.finish();
}

criterion_group!(benches, bench_conversions);
criterion_main!(benches);
