//! Guard-verdict cache benchmark: the layered-frontier searches (bounded
//! satisfiability and A-automaton emptiness) on the Figure 1 phone-directory
//! schema with the hidden workload scaled 1×/4×/16×, cache on vs off
//! (`relational::guard_cache`).
//!
//! The searched property conjoins a data-integrity obligation — `G ¬[FD
//! violation in Address^pre]`, whose inequality join grows quadratically
//! with the scaled relation — with the running dataflow eventuality.  The
//! FD sentence mentions only *pre* relations, and a candidate's delta only
//! ever holds *post* and `IsBind` facts, so its restricted `StructureKey` is
//! identical for every candidate out of one state: the cache evaluates the
//! expensive join once per state instead of once per candidate.  The printed
//! table reports hit/miss counters per scale (an uncached run records every
//! consult as a miss; totals match by contract).  Before/after medians are
//! recorded in `CHANGES.md`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use accltl_core::automata::{bounded_emptiness, bounded_emptiness_with_stats, EmptinessConfig};
use accltl_core::logic::bounded::BoundedSearcher;
use accltl_core::prelude::*;
use accltl_core::relational::set_guard_cache_enabled;

/// The Figure-1-shaped hidden instance at the given scale: per round, one
/// looked-up mobile entry and an address page with four residents (the same
/// shape as the `overlay` bench workload).
fn scaled_initial(scale: usize) -> Instance {
    let mut hidden = Instance::new();
    for s in 0..scale {
        let street = format!("Street{s}");
        let postcode = format!("OX{s}QD");
        hidden.add_fact(
            "Mobile#",
            tuple![
                format!("Resident{s}_0").as_str(),
                postcode.as_str(),
                street.as_str(),
                5_551_000 + s as i64
            ],
        );
        for h in 0..4usize {
            hidden.add_fact(
                "Address",
                tuple![
                    street.as_str(),
                    postcode.as_str(),
                    format!("Resident{s}_{h}").as_str(),
                    h as i64
                ],
            );
        }
    }
    hidden
}

/// The running dataflow sentence: an AcM1 access bound to a name already
/// revealed in `Address^pre`.
fn dataflow_atom() -> PosFormula {
    PosFormula::exists(
        vec!["n"],
        PosFormula::and(vec![
            isbind_atom("AcM1", vec![Term::var("n")]),
            PosFormula::exists(
                vec!["s", "p", "h"],
                pre_atom(
                    "Address",
                    vec![
                        Term::var("s"),
                        Term::var("p"),
                        Term::var("n"),
                        Term::var("h"),
                    ],
                ),
            ),
        ]),
    )
}

/// The searched formula: the street→postcode FD must keep holding while the
/// dataflow eventuality is pursued.
fn search_formula(schema: &AccessSchema) -> AccLtl {
    let fd = properties::functional_dependency_formula(
        schema,
        &FunctionalDependency::new("Address", vec![0], 1),
    );
    AccLtl::and(vec![fd, AccLtl::finally(AccLtl::atom(dataflow_atom()))])
}

/// The same property as a hand-built two-state A-automaton: self-loop while
/// no FD violation is visible, accept on a violation-free dataflow access.
fn search_automaton(schema: &AccessSchema) -> AAutomaton {
    let violation = properties::functional_dependency_formula(
        schema,
        &FunctionalDependency::new("Address", vec![0], 1),
    )
    .atom_sentences()
    .into_iter()
    .next()
    .expect("the FD formula has exactly one atom sentence");
    let mut automaton = AAutomaton::new(2, 0);
    automaton.add_transition(
        0,
        Guard {
            negated: vec![violation.clone()],
            positive: PosFormula::True,
        },
        0,
    );
    automaton.add_transition(
        0,
        Guard {
            negated: vec![violation],
            positive: dataflow_atom(),
        },
        1,
    );
    automaton.mark_accepting(1);
    automaton
}

fn print_hit_rates() {
    let schema = phone_directory_access_schema();
    let formula = search_formula(&schema);
    let automaton = search_automaton(&schema);
    println!("\n=== guard-verdict cache hit rates (Fig-1 FD + dataflow workload) ===");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "scale", "search hits", "search miss", "empt. hits", "empt. miss", "rate"
    );
    for scale in [1usize, 4, 16] {
        let initial = scaled_initial(scale);
        let searcher = BoundedSearcher::new(
            &schema,
            &initial,
            false,
            BoundedSearchConfig {
                threads: 1,
                ..BoundedSearchConfig::default()
            },
        );
        let (_, search) = searcher.search_with_stats(&formula);
        let (_, emptiness) = bounded_emptiness_with_stats(
            &automaton,
            &schema,
            &initial,
            &EmptinessConfig {
                threads: 1,
                ..EmptinessConfig::default()
            },
        );
        #[allow(clippy::cast_precision_loss)]
        let rate = search.hits as f64 / (search.total().max(1)) as f64;
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>12} {:>7.1}%",
            scale,
            search.hits,
            search.misses,
            emptiness.hits,
            emptiness.misses,
            rate * 100.0
        );
    }
}

fn bench_guard_cache(c: &mut Criterion) {
    print_hit_rates();
    let schema = phone_directory_access_schema();
    let formula = search_formula(&schema);
    let automaton = search_automaton(&schema);
    let mut group = c.benchmark_group("guard_cache");
    group.sample_size(10);
    for scale in [1usize, 4, 16] {
        let initial = scaled_initial(scale);
        let config = BoundedSearchConfig {
            threads: 1,
            ..BoundedSearchConfig::default()
        };
        let emptiness_config = EmptinessConfig {
            threads: 1,
            ..EmptinessConfig::default()
        };
        for (label, cached) in [("cached", true), ("uncached", false)] {
            group.bench_with_input(
                BenchmarkId::new(format!("search_{label}"), scale),
                &scale,
                |b, _| {
                    set_guard_cache_enabled(cached);
                    b.iter(|| {
                        BoundedSearcher::new(&schema, &initial, false, config)
                            .search(&formula)
                            .is_satisfiable()
                    });
                    set_guard_cache_enabled(true);
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("emptiness_{label}"), scale),
                &scale,
                |b, _| {
                    set_guard_cache_enabled(cached);
                    b.iter(|| {
                        bounded_emptiness(&automaton, &schema, &initial, &emptiness_config)
                            .is_nonempty()
                    });
                    set_guard_cache_enabled(true);
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_guard_cache);
criterion_main!(benches);
