//! Long-term relevance (Example 2.3, Section 4.2): cost of deciding LTR under
//! independent (unrestricted) and dependent (grounded) access semantics, and
//! the fraction of accesses pruned on a synthetic workload.
//!
//! The paper's point is that LTR over all accesses only needs
//! polynomial-length witnesses (it sits in the X fragment), while the
//! grounded variant is harder; the bench shows the measured gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use accltl_core::prelude::*;

fn print_pruning_summary() {
    println!("\n=== Long-term relevance: pruning summary (Example 2.3) ===");
    for seed in [3u64, 7, 13] {
        let workload = generate_workload(&WorkloadConfig {
            relations: 3,
            arity: 3,
            methods: 3,
            max_inputs: 1,
            domain_size: 6,
            facts_per_relation: 6,
            query_atoms: 2,
            seed,
        });
        let analyzer = AccessAnalyzer::new(workload.schema.clone());
        let query = UnionOfCqs::single(workload.queries[0].clone());
        let total = workload.accesses.len();
        let relevant = workload
            .accesses
            .iter()
            .filter(|a| analyzer.long_term_relevant(a, &query, false).is_relevant())
            .count();
        let grounded_relevant = workload
            .accesses
            .iter()
            .filter(|a| analyzer.long_term_relevant(a, &query, true).is_relevant())
            .count();
        println!(
            "  seed {seed:2}: {total} candidate accesses, {relevant} LTR (independent), {grounded_relevant} LTR (grounded)"
        );
    }
    println!("(grounded relevance is never larger than independent relevance — dependent\n accesses need a dataflow chain, as in the paper's introduction)");
}

fn bench_ltr(c: &mut Criterion) {
    print_pruning_summary();
    let mut group = c.benchmark_group("ltr");
    group.sample_size(10);
    for query_atoms in [1usize, 2, 3] {
        let workload = generate_workload(&WorkloadConfig {
            relations: 3,
            arity: 3,
            methods: 3,
            max_inputs: 1,
            domain_size: 6,
            facts_per_relation: 6,
            query_atoms,
            seed: 5,
        });
        let analyzer = AccessAnalyzer::new(workload.schema.clone());
        let query = UnionOfCqs::single(workload.queries[0].clone());
        let access = workload.accesses[0].clone();
        group.bench_with_input(
            BenchmarkId::new("independent", query_atoms),
            &query_atoms,
            |b, _| b.iter(|| analyzer.long_term_relevant(&access, &query, false)),
        );
        group.bench_with_input(
            BenchmarkId::new("grounded", query_atoms),
            &query_atoms,
            |b, _| b.iter(|| analyzer.long_term_relevant(&access, &query, true)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ltr);
criterion_main!(benches);
