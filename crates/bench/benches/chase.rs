//! Chase microbench: scan-based vs incremental violation discovery on the
//! phone-directory schema scaled 1×/4×/16×.
//!
//! Three workloads cover the chase's cost regimes: `satisfied` (pure
//! re-verification, no repairs), `ind_repair` (one inclusion repair per
//! mobile entry — the scan baseline re-walks source and target every pass),
//! and `fd_merge` (null-postcode merges — the scan baseline rebuilds the
//! whole instance per merge, the incremental chase rewrites only the facts
//! mentioning the merged null and keeps the per-position index alive).
//! Before/after medians for the incremental rewrite are recorded in
//! `CHANGES.md`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use accltl_core::prelude::*;
use accltl_core::relational::{
    chase, ChaseConfig, Constraint, FunctionalDependency, InclusionDependency,
};

fn constraints() -> Vec<Constraint> {
    vec![
        Constraint::Ind(InclusionDependency::new(
            "Mobile#",
            vec![2, 1],
            "Address",
            vec![0, 1],
        )),
        Constraint::Fd(FunctionalDependency::new("Address", vec![0], 1)),
    ]
}

/// `scale` streets with eight address rows and four mobile entries each;
/// satisfies both constraints as built.
fn satisfied_instance(scale: usize) -> Instance {
    let mut inst = Instance::new();
    for s in 0..scale {
        let street = format!("Street{s}");
        let postcode = format!("OX{s}QD");
        for h in 0..8usize {
            let name = format!("Resident{s}_{h}");
            inst.add_fact(
                "Address",
                tuple![street.as_str(), postcode.as_str(), name.as_str(), h as i64],
            );
            if h % 2 == 0 {
                inst.add_fact(
                    "Mobile#",
                    tuple![
                        name.as_str(),
                        postcode.as_str(),
                        street.as_str(),
                        5_551_000 + (s * 4 + h) as i64
                    ],
                );
            }
        }
    }
    inst
}

/// Mobile entries with no address rows at all: every entry needs an
/// inclusion repair, one per chase pass.
fn ind_repair_instance(scale: usize) -> Instance {
    let mut inst = Instance::new();
    for s in 0..scale {
        let street = format!("Street{s}");
        let postcode = format!("OX{s}QD");
        for h in 0..8usize {
            let name = format!("Resident{s}_{h}");
            inst.add_fact(
                "Mobile#",
                tuple![
                    name.as_str(),
                    postcode.as_str(),
                    street.as_str(),
                    5_551_000 + (s * 4 + h) as i64
                ],
            );
        }
    }
    inst
}

/// Address rows whose postcodes are distinct labelled nulls: the FD
/// `street → postcode` forces seven null merges per street.
fn fd_merge_instance(scale: usize) -> Instance {
    let mut inst = Instance::new();
    let mut null_id = 0u64;
    for s in 0..scale {
        let street = format!("Street{s}");
        for h in 0..8usize {
            null_id += 1;
            let name = format!("Resident{s}_{h}");
            inst.add_fact(
                "Address",
                Tuple::new(vec![
                    Value::str(street.as_str()),
                    Value::labelled_null(null_id),
                    Value::str(name.as_str()),
                    Value::Int(h as i64),
                ]),
            );
        }
    }
    inst
}

fn bench_chase(c: &mut Criterion) {
    let cs = constraints();
    let incremental = ChaseConfig {
        max_steps: 100_000,
        incremental: true,
    };
    let scan = ChaseConfig {
        max_steps: 100_000,
        incremental: false,
    };
    // The two modes must reach identical outcomes on every workload.
    for scale in [1usize, 4, 16] {
        for inst in [
            satisfied_instance(scale),
            ind_repair_instance(scale),
            fd_merge_instance(scale),
        ] {
            assert_eq!(chase(&inst, &cs, &incremental), chase(&inst, &cs, &scan));
        }
    }

    let mut group = c.benchmark_group("chase");
    group.sample_size(10);
    for scale in [1usize, 4, 16] {
        for (label, inst) in [
            ("satisfied", satisfied_instance(scale)),
            ("ind_repair", ind_repair_instance(scale)),
            ("fd_merge", fd_merge_instance(scale)),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{label}/incremental"), scale),
                &scale,
                |b, _| b.iter(|| chase(&inst, &cs, &incremental)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{label}/scan"), scale),
                &scale,
                |b, _| b.iter(|| chase(&inst, &cs, &scan)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_chase);
criterion_main!(benches);
