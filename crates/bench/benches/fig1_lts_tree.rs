//! Figure 1: the tree of possible access paths of the phone-directory schema.
//!
//! Prints the node/edge counts per depth (the shape of Figure 1) and measures
//! the cost of materialising the LTS fragment as the depth and the response
//! policy vary.  The `scaled` group compares overlay-backed exploration
//! against per-node materialisation on a hidden instance scaled 1×/4×/16×
//! (×16 is the headline acceptance scale); before/after medians are recorded
//! in `CHANGES.md`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use accltl_core::prelude::*;

fn explore(depth: usize, partial_responses: bool) -> accltl_core::paths::LtsTree {
    let schema = phone_directory_access_schema();
    let hidden = phone_directory_hidden_instance();
    let options = LtsOptions {
        max_depth: depth,
        grounded_only: false,
        response_policy: if partial_responses {
            ResponsePolicy::SubsetsOfHidden {
                max_response_size: 2,
            }
        } else {
            ResponsePolicy::ExactFromHidden
        },
        max_bindings_per_method: 6,
        max_nodes: 20_000,
        ..LtsOptions::default()
    };
    LtsExplorer::new(&schema, &hidden, options)
        .explore(&Instance::new())
        .expect("phone-directory schema is well-formed")
}

/// A phone-directory-shaped hidden instance scaled by `scale`: `scale`
/// streets, four houses per street, one mobile entry per even house.
fn scaled_hidden(scale: usize) -> Instance {
    let mut inst = Instance::new();
    for s in 0..scale {
        let street = format!("Street{s}");
        let postcode = format!("OX{s}QD");
        for h in 0..4usize {
            let name = format!("Resident{s}_{h}");
            inst.add_fact(
                "Address",
                tuple![street.as_str(), postcode.as_str(), name.as_str(), h as i64],
            );
            if h % 2 == 0 {
                inst.add_fact(
                    "Mobile#",
                    tuple![
                        name.as_str(),
                        postcode.as_str(),
                        street.as_str(),
                        5_551_000 + (s * 4 + h) as i64
                    ],
                );
            }
        }
    }
    inst
}

/// Exploration at the scaled setting: every address row is already revealed
/// (a large configuration at the root), depth-2 exact responses.  Overlay
/// nodes share the root instance and hoist the binding domain; materialised
/// nodes clone and rescan it.
fn explore_scaled(scale: usize, use_overlays: bool) -> accltl_core::paths::LtsTree {
    let schema = phone_directory_access_schema();
    let hidden = scaled_hidden(scale);
    let mut initial = Instance::new();
    for tuple in hidden.tuples("Address") {
        initial.add_fact("Address", tuple.clone());
    }
    let options = LtsOptions {
        max_depth: 2,
        max_bindings_per_method: 6,
        max_nodes: 20_000,
        use_overlays,
        ..LtsOptions::base()
    };
    LtsExplorer::new(&schema, &hidden, options)
        .explore(&initial)
        .expect("phone-directory schema is well-formed")
}

fn print_figure1_shape() {
    println!("\n=== Figure 1: tree of possible access paths (phone-directory schema) ===");
    for (label, partial) in [
        ("exact responses", false),
        ("partial responses (Figure 1)", true),
    ] {
        for depth in 1..=3 {
            let tree = explore(depth, partial);
            println!(
                "  {label:30} depth {depth}: {:6} nodes, {:6} transitions, per depth {:?}{}",
                tree.node_count(),
                tree.edge_count(),
                tree.nodes_per_depth(),
                if tree.truncated { " (truncated)" } else { "" }
            );
        }
    }
    let tree = explore(2, true);
    println!("\nRendered fragment (cf. Figure 1):\n{}", tree.render(24));
}

fn bench_lts(c: &mut Criterion) {
    print_figure1_shape();
    // Overlay-backed and materialising exploration must build one tree.
    for scale in [1usize, 4, 16] {
        assert_eq!(explore_scaled(scale, true), explore_scaled(scale, false));
    }

    let mut group = c.benchmark_group("fig1_lts_tree");
    group.sample_size(10);
    for depth in 1..=3usize {
        group.bench_with_input(BenchmarkId::new("exact", depth), &depth, |b, &d| {
            b.iter(|| explore(d, false).node_count());
        });
        group.bench_with_input(BenchmarkId::new("partial", depth), &depth, |b, &d| {
            b.iter(|| explore(d, true).node_count());
        });
    }
    for scale in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("scaled/overlay", scale),
            &scale,
            |b, &s| b.iter(|| explore_scaled(s, true).node_count()),
        );
        group.bench_with_input(
            BenchmarkId::new("scaled/materialized", scale),
            &scale,
            |b, &s| b.iter(|| explore_scaled(s, false).node_count()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lts);
criterion_main!(benches);
