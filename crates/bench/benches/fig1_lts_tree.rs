//! Figure 1: the tree of possible access paths of the phone-directory schema.
//!
//! Prints the node/edge counts per depth (the shape of Figure 1) and measures
//! the cost of materialising the LTS fragment as the depth and the response
//! policy vary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use accltl_core::prelude::*;

fn explore(depth: usize, partial_responses: bool) -> accltl_core::paths::LtsTree {
    let schema = phone_directory_access_schema();
    let hidden = phone_directory_hidden_instance();
    let options = LtsOptions {
        max_depth: depth,
        grounded_only: false,
        response_policy: if partial_responses {
            ResponsePolicy::SubsetsOfHidden {
                max_response_size: 2,
            }
        } else {
            ResponsePolicy::ExactFromHidden
        },
        max_bindings_per_method: 6,
        max_nodes: 20_000,
    };
    LtsExplorer::new(&schema, &hidden, options)
        .explore(&Instance::new())
        .expect("phone-directory schema is well-formed")
}

fn print_figure1_shape() {
    println!("\n=== Figure 1: tree of possible access paths (phone-directory schema) ===");
    for (label, partial) in [
        ("exact responses", false),
        ("partial responses (Figure 1)", true),
    ] {
        for depth in 1..=3 {
            let tree = explore(depth, partial);
            println!(
                "  {label:30} depth {depth}: {:6} nodes, {:6} transitions, per depth {:?}{}",
                tree.node_count(),
                tree.edge_count(),
                tree.nodes_per_depth(),
                if tree.truncated { " (truncated)" } else { "" }
            );
        }
    }
    let tree = explore(2, true);
    println!("\nRendered fragment (cf. Figure 1):\n{}", tree.render(24));
}

fn bench_lts(c: &mut Criterion) {
    print_figure1_shape();
    let mut group = c.benchmark_group("fig1_lts_tree");
    group.sample_size(10);
    for depth in 1..=3usize {
        group.bench_with_input(BenchmarkId::new("exact", depth), &depth, |b, &d| {
            b.iter(|| explore(d, false).node_count());
        });
        group.bench_with_input(BenchmarkId::new("partial", depth), &depth, |b, &d| {
            b.iter(|| explore(d, true).node_count());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lts);
criterion_main!(benches);
