//! Per-position value-index microbench: homomorphism search and Datalog
//! fixpoints on the Figure 1 (phone-directory) schema, indexed vs scan, with
//! the hidden-instance tuple count scaled 1×/4×/16×.
//!
//! The `*_indexed` arms run the default configuration (posting lists built
//! lazily and maintained incrementally); the `*_scan` arms force the
//! scanning fallback — via `ScanView` for the search, via
//! `set_indexing_enabled` for the fixpoint, whose internal instances cannot
//! be wrapped.  Both modes produce byte-identical results by contract, so
//! the ratio is pure evaluation-strategy cost.  Interleaved A/B medians vs
//! the scan-only baseline are recorded in `CHANGES.md`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use accltl_core::prelude::*;
use accltl_core::relational::set_indexing_enabled;

/// A phone-directory-shaped instance scaled by `scale`: `scale` streets, four
/// houses per street, one mobile entry per even house (the same shape the
/// `interning` bench uses).
fn scaled_instance(scale: usize) -> Instance {
    let mut inst = Instance::new();
    for s in 0..scale {
        let street = format!("Street{s}");
        let postcode = format!("OX{s}QD");
        for h in 0..4usize {
            let name = format!("Resident{s}_{h}");
            inst.add_fact(
                "Address",
                tuple![street.as_str(), postcode.as_str(), name.as_str(), h as i64],
            );
            if h % 2 == 0 {
                inst.add_fact(
                    "Mobile#",
                    tuple![
                        name.as_str(),
                        postcode.as_str(),
                        street.as_str(),
                        5_551_000 + (s * 4 + h) as i64
                    ],
                );
            }
        }
    }
    inst
}

/// The 3-atom join of the `interning` bench: names with a mobile entry and
/// two address rows on the same street.
fn join_query() -> ConjunctiveQuery {
    cq!([n] <-
        atom!("Mobile#"; n, p, s, ph),
        atom!("Address"; s, p2, n, h),
        atom!("Address"; s, p3, m, h2))
}

/// Recursive same-street reachability: `SameStreet` is a self-join of
/// `Address` (quadratic per street), `Linked` its transitive closure — the
/// Δ-seeded semi-naive rounds join through the incrementally maintained
/// index of the accumulating total.
fn closure_program() -> DatalogProgram {
    DatalogProgram::new(
        vec![
            DatalogRule::new(
                atom!("SameStreet"; n, m),
                vec![atom!("Address"; s, p, n, h), atom!("Address"; s, p2, m, h2)],
            ),
            DatalogRule::new(atom!("Linked"; n, m), vec![atom!("SameStreet"; n, m)]),
            DatalogRule::new(
                atom!("Linked"; n, m),
                vec![atom!("Linked"; n, k), atom!("SameStreet"; k, m)],
            ),
            DatalogRule::new(
                atom!("LinkedGoal"),
                vec![atom!("Linked"; @"Resident0_0", @"Resident0_3")],
            ),
        ],
        "LinkedGoal",
    )
    .expect("rules are safe")
}

fn bench_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("index");
    group.sample_size(20);
    for scale in [1usize, 4, 16] {
        let instance = scaled_instance(scale);
        let join = join_query();
        let program = closure_program();

        group.bench_with_input(BenchmarkId::new("hom_indexed", scale), &scale, |b, _| {
            b.iter(|| join.evaluate(&instance));
        });
        group.bench_with_input(BenchmarkId::new("hom_scan", scale), &scale, |b, _| {
            b.iter(|| join.evaluate(&ScanView(&instance)));
        });

        group.bench_with_input(
            BenchmarkId::new("fixpoint_indexed", scale),
            &scale,
            |b, _| {
                b.iter(|| program.fixpoint(&instance));
            },
        );
        group.bench_with_input(BenchmarkId::new("fixpoint_scan", scale), &scale, |b, _| {
            set_indexing_enabled(false);
            b.iter(|| program.fixpoint(&instance));
            set_indexing_enabled(true);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
