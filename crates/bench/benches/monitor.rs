//! Monitoring-session benchmark: the runtime-relevance loop over the Fig-1
//! phone-directory workload scaled ×1/×4/×16, a 12-step stream of `AcM1`
//! accesses (two reveal fresh `Mobile#` facts, the rest repeat known
//! lookups, the typical shape of a monitored access log), and N properties
//! whose guards mention only `Address` and `IsBind` predicates.
//!
//! A [`MonitorSession`]'s per-step cost is proportional to the delta: steps
//! that reveal nothing new replay the standing verdicts, and steps that do
//! reveal fresh facts re-search with the persistent guard-verdict and
//! prepared-context caches warm (the stream perturbs only `Mobile#`, so the
//! content-addressed, relation-restricted cache keys keep hitting).  A
//! from-scratch re-check (`EngineConfig::disable_session_reuse`) re-pays the
//! full search on every step.  Verdicts, witnesses, explored counts and
//! guard-consult totals are byte-identical by contract
//! (`tests/session_props.rs`); this bench records the wall-clock side and
//! reconciles the session's reuse counters against the `accltl-obs` registry
//! delta.  Before/after medians are recorded in `CHANGES.md`.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use accltl_core::logic::bounded::{BoundedSearcher, SessionReport};
use accltl_core::obs::metrics;
use accltl_core::prelude::*;

const STEPS: usize = 12;
const PROPERTIES: usize = 4;

/// The Figure-1-shaped hidden instance at the given scale: per round, one
/// looked-up mobile entry and an address page with four residents (the same
/// shape as the `batch` and `overlay` bench workloads).
fn scaled_initial(scale: usize) -> Instance {
    let mut hidden = Instance::new();
    for s in 0..scale {
        let street = format!("Street{s}");
        let postcode = format!("OX{s}QD");
        hidden.add_fact(
            "Mobile#",
            tuple![
                format!("Resident{s}_0").as_str(),
                postcode.as_str(),
                street.as_str(),
                5_551_000 + s as i64
            ],
        );
        for h in 0..4usize {
            hidden.add_fact(
                "Address",
                tuple![
                    street.as_str(),
                    postcode.as_str(),
                    format!("Resident{s}_{h}").as_str(),
                    h as i64
                ],
            );
        }
    }
    hidden
}

/// The monitored access stream: steps 0 and 6 are fresh `AcM1` lookups
/// revealing one new `Mobile#` fact each; every other step repeats an
/// earlier lookup with the same response (zero delta).  The stream never
/// touches `Address`, so the properties' guard verdicts survive the fresh
/// steps too.
fn stream() -> Vec<(Access, Response)> {
    let lookup = |k: usize| {
        let name = format!("Fresh{k}");
        let access = Access::new("AcM1", tuple![name.as_str()]);
        let response: Response = [tuple![
            name.as_str(),
            "OX99ZZ",
            "New St",
            5_550_000 + k as i64
        ]]
        .into_iter()
        .collect();
        (access, response)
    };
    (0..STEPS)
        .map(|k| lookup(if k % 6 == 0 { k } else { 0 }))
        .collect()
}

/// Property k: the street→postcode and postcode→street FDs must keep
/// holding while a dataflow eventuality is pursued (the `batch` bench
/// property) — every guard mentions only `Address` and `IsBind(AcM1)`.
fn property(schema: &AccessSchema, k: usize) -> AccLtl {
    let street_to_postcode = properties::functional_dependency_formula(
        schema,
        &FunctionalDependency::new("Address", vec![0], 1),
    );
    let postcode_to_street = properties::functional_dependency_formula(
        schema,
        &FunctionalDependency::new("Address", vec![1], 0),
    );
    let dataflow = AccLtl::atom(PosFormula::exists(
        vec!["n"],
        PosFormula::and(vec![
            isbind_atom("AcM1", vec![Term::var("n")]),
            PosFormula::exists(
                vec!["s", "p", "h"],
                pre_atom(
                    "Address",
                    vec![
                        Term::var("s"),
                        Term::var("p"),
                        Term::var("n"),
                        Term::var("h"),
                    ],
                ),
            ),
        ]),
    ));
    let mut eventuality = if k % 2 == 0 {
        AccLtl::finally(dataflow)
    } else {
        AccLtl::until(AccLtl::not(dataflow.clone()), dataflow)
    };
    for _ in 0..(k / 2) % 3 {
        eventuality = AccLtl::next(eventuality);
    }
    AccLtl::and(vec![street_to_postcode, postcode_to_street, eventuality])
}

fn engine_config(reuse: bool) -> EngineConfig {
    EngineConfig::base().disable_session_reuse(!reuse)
}

/// Runs the whole stream through one session and returns the per-step
/// reports plus the contractual digest of every (step, property) report.
#[allow(clippy::type_complexity)]
fn run_stream(
    schema: &AccessSchema,
    initial: &Instance,
    batch: &[AccLtl],
    reuse: bool,
) -> (Vec<SessionReport>, Vec<(SatOutcome, usize, usize, u64)>) {
    let searcher =
        BoundedSearcher::with_engine_config(schema, initial, false, engine_config(reuse));
    let mut session = searcher.open_session(batch);
    let mut reports = vec![session.last_report().clone()];
    let mut digests = Vec::new();
    let digest_step = |reports: &[SearchReport<SatOutcome>],
                       digests: &mut Vec<(SatOutcome, usize, usize, u64)>| {
        for report in reports {
            digests.push((
                report.verdict.clone(),
                report.explored,
                report.cost,
                report.cache.total(),
            ));
        }
    };
    digest_step(session.reports(), &mut digests);
    for (access, response) in stream() {
        let report = session
            .step(&access, &response)
            .expect("well-formed access")
            .clone();
        reports.push(report);
        digest_step(session.reports(), &mut digests);
    }
    (reports, digests)
}

/// One-shot correctness + accounting pass printed before the timed groups:
/// byte-identical digests session-vs-scratch, the session's reuse counters
/// reconciled against the obs registry delta, and the measured speedup of
/// the ×16 stream (the acceptance threshold is ≥3× at 8 steps).
fn print_reconciliation() {
    let schema = phone_directory_access_schema();
    let initial = scaled_initial(16);
    let batch: Vec<AccLtl> = (0..PROPERTIES).map(|k| property(&schema, k)).collect();

    let before = metrics::snapshot();
    let start = Instant::now();
    let (reports, session_digests) = run_stream(&schema, &initial, &batch, true);
    let session_time = start.elapsed();
    let delta = metrics::snapshot().delta(&before);

    let reused: u64 = reports.iter().map(|r| r.reused).sum();
    let recomputed: u64 = reports.iter().map(|r| r.recomputed).sum();
    assert_eq!(
        delta.counter("session.reused"),
        reused,
        "session.reused diverged from the registry delta"
    );
    assert_eq!(
        delta.counter("session.recomputed"),
        recomputed,
        "session.recomputed diverged from the registry delta"
    );
    assert_eq!(delta.counter("session.steps"), (STEPS + 1) as u64);

    let start = Instant::now();
    let (_, scratch_digests) = run_stream(&schema, &initial, &batch, false);
    let scratch_time = start.elapsed();
    assert_eq!(
        session_digests, scratch_digests,
        "session and from-scratch digests diverged"
    );

    let speedup = scratch_time.as_secs_f64() / session_time.as_secs_f64().max(1e-9);
    println!("\n=== monitor session vs from-scratch (×16 Fig-1, {STEPS} steps) ===");
    println!("  reused={reused} recomputed={recomputed} (reconciled against obs registry)");
    println!(
        "  session={:.1?} scratch={:.1?} speedup={speedup:.1}x",
        session_time, scratch_time
    );
}

fn bench_monitor(c: &mut Criterion) {
    print_reconciliation();
    let schema = phone_directory_access_schema();
    let mut group = c.benchmark_group("monitor");
    group.sample_size(10);
    for scale in [1usize, 4, 16] {
        let initial = scaled_initial(scale);
        let batch: Vec<AccLtl> = (0..PROPERTIES).map(|k| property(&schema, k)).collect();
        group.bench_with_input(BenchmarkId::new("session", scale), &scale, |b, _| {
            b.iter(|| run_stream(&schema, &initial, &batch, true).0.len());
        });
        group.bench_with_input(BenchmarkId::new("scratch", scale), &scale, |b, _| {
            b.iter(|| run_stream(&schema, &initial, &batch, false).0.len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_monitor);
criterion_main!(benches);
