//! Table 1 (complexity column): satisfiability cost per language fragment.
//!
//! The paper states worst-case complexities (ΣP2 ⊂ PSPACE ⊂ 2/3EXPTIME,
//! undecidable at the top).  The reproduction measures the running time of
//! each fragment's decision procedure on size-parameterised workloads over
//! the phone-directory schema and prints one row per fragment, so the *shape*
//! — which rows are cheap, which explode, which are only semi-decided — can
//! be compared with the table.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use accltl_bench::{table1_formula, table1_rows};
use accltl_core::prelude::*;

fn solve(fragment: Fragment, size: usize) -> SatOutcome {
    let analyzer = AccessAnalyzer::new(phone_directory_access_schema());
    analyzer
        .check_satisfiable(&table1_formula(fragment, size))
        .outcome
}

fn print_table1_rows() {
    println!("\n=== Table 1 (complexity): measured satisfiability cost per fragment ===");
    println!(
        "{:28} {:28} {:>14} {:>14} {:>14}",
        "language", "paper complexity", "size 1 (µs)", "size 2 (µs)", "size 3 (µs)"
    );
    for fragment in table1_rows() {
        let mut timings = Vec::new();
        for size in 1..=3usize {
            let start = Instant::now();
            let outcome = solve(fragment, size);
            let micros = start.elapsed().as_micros();
            // Undecidable rows only ever produce witnesses or Unknown.
            if !fragment.is_decidable() {
                assert!(!matches!(outcome, SatOutcome::Unsatisfiable));
            }
            timings.push(micros);
        }
        println!(
            "{:28} {:28} {:>14} {:>14} {:>14}",
            fragment.to_string(),
            fragment.complexity(),
            timings[0],
            timings[1],
            timings[2]
        );
    }
    println!(
        "(decidable rows return definite verdicts; the undecidable rows run the bounded\n\
         semi-decision procedure, matching the table's `undecidable` entries)"
    );
}

fn bench_fragments(c: &mut Criterion) {
    print_table1_rows();
    let mut group = c.benchmark_group("table1_complexity");
    group.sample_size(10);
    for fragment in table1_rows() {
        for size in [1usize, 2, 3] {
            group.bench_with_input(
                BenchmarkId::new(fragment.to_string(), size),
                &size,
                |b, &s| b.iter(|| solve(fragment, s)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fragments);
criterion_main!(benches);
