//! Ablation of the AccLTL+ decision pipeline (Section 4.1): cost of each
//! stage — formula → A-automaton translation (Lemma 4.5), chain decomposition
//! (Lemma 4.9), emptiness search (Theorem 4.6) — compared with the direct
//! bounded witness search on the same formulas.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use accltl_bench::table1_formula;
use accltl_core::automata::{
    accltl_plus_to_automaton, bounded_emptiness, chain_decomposition, EmptinessConfig,
};
use accltl_core::logic::solver::sat_binding_positive_bounded;
use accltl_core::prelude::*;

fn print_stage_breakdown() {
    println!("\n=== AccLTL+ pipeline ablation (Section 4.1) ===");
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "size", "translate µs", "decompose µs", "emptiness µs", "direct µs", "automaton size"
    );
    let schema = phone_directory_access_schema();
    for size in 1..=3usize {
        let formula = table1_formula(Fragment::BindingPositive, size);

        let t0 = Instant::now();
        let automaton = accltl_plus_to_automaton(&formula);
        let translate_us = t0.elapsed().as_micros();

        let t1 = Instant::now();
        let chains = chain_decomposition(&automaton);
        let decompose_us = t1.elapsed().as_micros();

        let t2 = Instant::now();
        let outcome = bounded_emptiness(
            &automaton,
            &schema,
            &Instance::new(),
            &EmptinessConfig::default(),
        );
        let emptiness_us = t2.elapsed().as_micros();
        assert!(outcome.is_nonempty());

        let t3 = Instant::now();
        let direct = sat_binding_positive_bounded(
            &formula,
            &schema,
            &Instance::new(),
            &BoundedSearchConfig::default(),
        )
        .expect("formula is binding-positive");
        let direct_us = t3.elapsed().as_micros();
        assert!(direct.is_satisfiable());

        println!(
            "{:>5} {:>12} {:>12} {:>12} {:>12} {:>10} st/{:>2} ch",
            size,
            translate_us,
            decompose_us,
            emptiness_us,
            direct_us,
            automaton.state_count,
            chains.len()
        );
    }
    println!("(translation dominates as formulas grow — the exponential of Lemma 4.5 —\n while the decomposition stays negligible)");
}

fn bench_pipeline(c: &mut Criterion) {
    print_stage_breakdown();
    let schema = phone_directory_access_schema();
    let mut group = c.benchmark_group("pipeline_ablation");
    group.sample_size(10);
    for size in [1usize, 2, 3] {
        let formula = table1_formula(Fragment::BindingPositive, size);
        let automaton = accltl_plus_to_automaton(&formula);
        group.bench_with_input(BenchmarkId::new("translate", size), &size, |b, _| {
            b.iter(|| accltl_plus_to_automaton(&formula).state_count);
        });
        group.bench_with_input(BenchmarkId::new("decompose", size), &size, |b, _| {
            b.iter(|| chain_decomposition(&automaton).len());
        });
        group.bench_with_input(BenchmarkId::new("emptiness", size), &size, |b, _| {
            b.iter(|| {
                bounded_emptiness(
                    &automaton,
                    &schema,
                    &Instance::new(),
                    &EmptinessConfig::default(),
                )
                .is_nonempty()
            });
        });
        group.bench_with_input(BenchmarkId::new("direct_search", size), &size, |b, _| {
            b.iter(|| {
                sat_binding_positive_bounded(
                    &formula,
                    &schema,
                    &Instance::new(),
                    &BoundedSearchConfig::default(),
                )
                .unwrap()
                .is_satisfiable()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
