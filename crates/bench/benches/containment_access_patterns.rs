//! Containment under access patterns (Example 2.2, Proposition 4.4, and the
//! discussion after Theorem 4.6): the A-automaton route decides containment,
//! and disjointness constraints change the verdicts.
//!
//! Prints the verdicts for the paper's example queries and measures the cost
//! of the automaton-based check against plain (access-unaware) CQ containment
//! as the schema grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use accltl_core::analyzer::ContainmentOutcome;
use accltl_core::prelude::*;
use accltl_core::relational::cq_contained_in_cq;

fn verdict_label(outcome: &ContainmentOutcome) -> &'static str {
    match outcome {
        ContainmentOutcome::Contained => "contained",
        ContainmentOutcome::NotContained { .. } => "not contained",
        ContainmentOutcome::Unknown => "unknown",
    }
}

fn print_paper_cases() {
    println!("\n=== Containment under access patterns (Example 2.2 / Prop. 4.4) ===");
    let analyzer = AccessAnalyzer::new(phone_directory_access_schema());
    let jones = cq!(<- atom!("Address"; s, p, @"Jones", h));
    let any_address = cq!(<- atom!("Address"; s, p, n, h));
    let name_is_street = cq!(<- atom!("Mobile#"; n, p, s, ph), atom!("Address"; n, p2, m, h));
    let impossible = cq!(<- atom!("Mobile#"; @"⊥none", p, s, ph));

    println!(
        "  Q_Jones ⊑ Q_anyAddress : {}",
        verdict_label(&analyzer.contained_under_access_patterns(&jones, &any_address))
    );
    println!(
        "  Q_anyAddress ⊑ Q_Jones : {}",
        verdict_label(&analyzer.contained_under_access_patterns(&any_address, &jones))
    );
    println!(
        "  Q_nameIsStreet ⊑ Q_⊥ (no constraints) : {}",
        verdict_label(&analyzer.contained_under_access_patterns(&name_is_street, &impossible))
    );
    let constrained = AccessAnalyzer::new(phone_directory_access_schema())
        .with_disjointness(DisjointnessConstraint::new("Mobile#", 0, "Address", 0));
    println!(
        "  Q_nameIsStreet ⊑ Q_⊥ (names ∩ streets = ∅) : {}",
        verdict_label(&constrained.contained_under_access_patterns(&name_is_street, &impossible))
    );
}

fn bench_containment(c: &mut Criterion) {
    print_paper_cases();
    let mut group = c.benchmark_group("containment_access_patterns");
    group.sample_size(10);

    for relations in [2usize, 3, 4] {
        let workload = generate_workload(&WorkloadConfig {
            relations,
            arity: 2,
            methods: relations,
            max_inputs: 1,
            domain_size: 4,
            facts_per_relation: 4,
            query_atoms: 2,
            seed: 11,
        });
        let analyzer = AccessAnalyzer::new(workload.schema.clone());
        let q1 = workload.queries[0].clone();
        let q2 = workload.queries[1].clone();
        group.bench_with_input(
            BenchmarkId::new("automaton_route", relations),
            &relations,
            |b, _| b.iter(|| analyzer.contained_under_access_patterns(&q1, &q2)),
        );
        group.bench_with_input(
            BenchmarkId::new("plain_cq_containment", relations),
            &relations,
            |b, _| b.iter(|| cq_contained_in_cq(&q1, &q2)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_containment);
criterion_main!(benches);
