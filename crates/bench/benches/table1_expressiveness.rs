//! Table 1 (application columns): which fragments express relevance under
//! disjointness constraints (DjC), functional dependencies (FD), dataflow
//! restrictions (DF) and access-order restrictions (AccOr).
//!
//! Prints the Yes/No matrix, where every "Yes" is certified by constructing
//! the corresponding restriction formula and checking it belongs to the
//! fragment, and measures the cost of building + classifying the formulas.

use criterion::{criterion_group, criterion_main, Criterion};

use accltl_bench::table1_rows;
use accltl_core::logic::fragment::belongs_to;
use accltl_core::prelude::*;

fn restriction_formulas() -> Vec<(&'static str, AccLtl)> {
    let schema = phone_directory_access_schema();
    vec![
        (
            "DjC",
            properties::disjointness_formula_for(
                &schema,
                &DisjointnessConstraint::new("Mobile#", 0, "Address", 0),
            ),
        ),
        (
            "FD",
            properties::functional_dependency_formula(
                &schema,
                &FunctionalDependency::new("Mobile#", vec![0], 3),
            ),
        ),
        (
            "DF",
            properties::dataflow_formula(&schema, "AcM1", 0, "Address", 2),
        ),
        ("AccOr", properties::access_order_formula("AcM2", "AcM1")),
    ]
}

fn print_matrix() {
    let formulas = restriction_formulas();
    println!("\n=== Table 1 (application examples): expressiveness matrix ===");
    println!(
        "{:28} {:>6} {:>6} {:>6} {:>6}   (claimed / witnessed by a concrete formula)",
        "language", "DjC", "FD", "DF", "AccOr"
    );
    for fragment in table1_rows() {
        let claimed = fragment.expressiveness();
        let claimed_cells = [
            claimed.disjointness,
            claimed.functional_dependencies,
            claimed.dataflow,
            claimed.access_order,
        ];
        let witnessed: Vec<bool> = formulas
            .iter()
            .map(|(_, f)| belongs_to(f, fragment))
            .collect();
        let cell = |claimed: bool, witnessed: bool| -> String {
            match (claimed, witnessed) {
                (true, true) => "Yes".to_owned(),
                (false, false) => "No".to_owned(),
                // The X fragment claims FD/DjC via bounded-horizon variants of
                // the formulas; the generic builders use G/U, so a claimed Yes
                // without a library-built witness is marked with an asterisk.
                (true, false) => "Yes*".to_owned(),
                (false, true) => "??".to_owned(),
            }
        };
        println!(
            "{:28} {:>6} {:>6} {:>6} {:>6}",
            fragment.to_string(),
            cell(claimed_cells[0], witnessed[0]),
            cell(claimed_cells[1], witnessed[1]),
            cell(claimed_cells[2], witnessed[2]),
            cell(claimed_cells[3], witnessed[3]),
        );
    }
    println!("(* expressible in the fragment via bounded-horizon encodings; the library builder\n   produces the general G/U form — see tests/table1_matrix.rs)");
}

fn bench_expressiveness(c: &mut Criterion) {
    print_matrix();
    let mut group = c.benchmark_group("table1_expressiveness");
    group.sample_size(20);
    group.bench_function("build_and_classify_all_restrictions", |b| {
        b.iter(|| {
            restriction_formulas()
                .iter()
                .map(|(_, f)| classify(f))
                .collect::<Vec<_>>()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_expressiveness);
criterion_main!(benches);
