//! Interned-representation microbench: chase steps and homomorphism search on
//! the Figure 1 (phone-directory) schema, with the hidden-instance tuple
//! count scaled 1×/4×/16×.
//!
//! These are exactly the inner loops the `relational::symbols` interning layer
//! targets: chase violation scans and repairs (tuple-set membership, fact
//! insertion, value rewriting) and backtracking homomorphism search (variable
//! binding, per-relation candidate scans).  Before/after numbers for the
//! interning refactor are recorded in `CHANGES.md`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use accltl_core::prelude::*;
use accltl_core::relational::{
    chase, ChaseConfig, Constraint, FunctionalDependency, InclusionDependency,
};

/// A phone-directory-shaped instance scaled by `scale`: `scale` streets, four
/// houses per street, one mobile entry per even house.
fn scaled_instance(scale: usize) -> Instance {
    let mut inst = Instance::new();
    for s in 0..scale {
        let street = format!("Street{s}");
        let postcode = format!("OX{s}QD");
        for h in 0..4usize {
            let name = format!("Resident{s}_{h}");
            inst.add_fact(
                "Address",
                tuple![street.as_str(), postcode.as_str(), name.as_str(), h as i64],
            );
            if h % 2 == 0 {
                inst.add_fact(
                    "Mobile#",
                    tuple![
                        name.as_str(),
                        postcode.as_str(),
                        street.as_str(),
                        5_551_000 + (s * 4 + h) as i64
                    ],
                );
            }
        }
    }
    inst
}

/// Constraints exercising both chase rules: every mobile entry needs an
/// address row for its street/postcode, and postcode is functionally
/// determined by street.
fn constraints() -> Vec<Constraint> {
    vec![
        Constraint::Ind(InclusionDependency::new(
            "Mobile#",
            vec![2, 1],
            "Address",
            vec![0, 1],
        )),
        Constraint::Fd(FunctionalDependency::new("Address", vec![0], 1)),
    ]
}

fn bench_interning(c: &mut Criterion) {
    let mut group = c.benchmark_group("interning");
    group.sample_size(20);
    for scale in [1usize, 4, 16] {
        let instance = scaled_instance(scale);
        let cs = constraints();
        group.bench_with_input(BenchmarkId::new("chase", scale), &scale, |b, _| {
            b.iter(|| chase(&instance, &cs, &ChaseConfig::default()));
        });

        // Join query: names having both a mobile entry and an address entry on
        // the same street (a 3-atom homomorphism search).
        let join = cq!([n] <-
            atom!("Mobile#"; n, p, s, ph),
            atom!("Address"; s, p2, n, h),
            atom!("Address"; s, p3, m, h2));
        group.bench_with_input(BenchmarkId::new("homomorphism", scale), &scale, |b, _| {
            b.iter(|| join.evaluate(&instance));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_interning);
criterion_main!(benches);
