//! Batched multi-property search benchmark: N dataflow properties sharing
//! the Fig-1 FD obligation, checked over the phone-directory schema with the
//! hidden workload scaled 1×/4×/16×, batched through one
//! `paths::engine::BatchEngine` run vs property-by-property
//! (`BoundedSearcher::run_batch` vs N × `run`).
//!
//! Every property conjoins the same quadratic `G ¬[FD violation in
//! Address^pre]` obligation with its own dataflow eventuality, so a batched
//! run pays the expensive join once per shared configuration (one prepared
//! state context, one structurally-keyed cache verdict) where the sequential
//! runs pay it N times.  Verdicts, witnesses and per-property consult totals
//! are byte-identical by contract (`tests/batch_props.rs`); this bench
//! records the wall-clock side.  Before/after medians are recorded in
//! `CHANGES.md`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use accltl_core::logic::bounded::BoundedSearcher;
use accltl_core::prelude::*;

/// The Figure-1-shaped hidden instance at the given scale: per round, one
/// looked-up mobile entry and an address page with four residents (the same
/// shape as the `overlay` and `guard_cache` bench workloads).
fn scaled_initial(scale: usize) -> Instance {
    let mut hidden = Instance::new();
    for s in 0..scale {
        let street = format!("Street{s}");
        let postcode = format!("OX{s}QD");
        hidden.add_fact(
            "Mobile#",
            tuple![
                format!("Resident{s}_0").as_str(),
                postcode.as_str(),
                street.as_str(),
                5_551_000 + s as i64
            ],
        );
        for h in 0..4usize {
            hidden.add_fact(
                "Address",
                tuple![
                    street.as_str(),
                    postcode.as_str(),
                    format!("Resident{s}_{h}").as_str(),
                    h as i64
                ],
            );
        }
    }
    hidden
}

/// The running dataflow sentence: an AcM1 access bound to a name already
/// revealed in `Address^pre`.
fn dataflow_atom() -> PosFormula {
    PosFormula::exists(
        vec!["n"],
        PosFormula::and(vec![
            isbind_atom("AcM1", vec![Term::var("n")]),
            PosFormula::exists(
                vec!["s", "p", "h"],
                pre_atom(
                    "Address",
                    vec![
                        Term::var("s"),
                        Term::var("p"),
                        Term::var("n"),
                        Term::var("h"),
                    ],
                ),
            ),
        ]),
    )
}

/// Property k of the batch: the street→postcode and postcode→street FDs
/// must keep holding while the dataflow eventuality is pursued — as a plain
/// `F` or an `¬φ U φ` until-shape, deferred by up to two `X`s.  The N
/// properties differ temporally but mention the same atom sentences, so they
/// share one fact universe — and hence one configuration space: a batched
/// run prepares each reached configuration and evaluates the quadratic FD
/// join once for all N, where the sequential runs pay it N times.
fn property(schema: &AccessSchema, k: usize) -> AccLtl {
    let street_to_postcode = properties::functional_dependency_formula(
        schema,
        &FunctionalDependency::new("Address", vec![0], 1),
    );
    let postcode_to_street = properties::functional_dependency_formula(
        schema,
        &FunctionalDependency::new("Address", vec![1], 0),
    );
    let df = AccLtl::atom(dataflow_atom());
    let mut eventuality = if k % 2 == 0 {
        AccLtl::finally(df)
    } else {
        AccLtl::until(AccLtl::not(df.clone()), df)
    };
    for _ in 0..(k / 2) % 3 {
        eventuality = AccLtl::next(eventuality);
    }
    AccLtl::and(vec![street_to_postcode, postcode_to_street, eventuality])
}

fn print_consult_totals() {
    let schema = phone_directory_access_schema();
    println!("\n=== batched vs sequential consult totals (must match) ===");
    println!(
        "{:>6} {:>3} {:>14} {:>14}",
        "scale", "N", "batched", "sequential"
    );
    for scale in [1usize, 4, 16] {
        let initial = scaled_initial(scale);
        let searcher = BoundedSearcher::new(
            &schema,
            &initial,
            false,
            BoundedSearchConfig {
                threads: 1,
                ..BoundedSearchConfig::default()
            },
        );
        for n in [1usize, 4, 8] {
            let batch: Vec<AccLtl> = (0..n).map(|k| property(&schema, k)).collect();
            let batched: u64 = searcher
                .run_batch(&batch)
                .iter()
                .map(|r| r.cache.total())
                .sum();
            let sequential: u64 = batch.iter().map(|f| searcher.run(f).cache.total()).sum();
            assert_eq!(batched, sequential, "consult totals diverged");
            println!("{scale:>6} {n:>3} {batched:>14} {sequential:>14}");
        }
    }
}

fn bench_batch(c: &mut Criterion) {
    print_consult_totals();
    let schema = phone_directory_access_schema();
    let mut group = c.benchmark_group("batch");
    group.sample_size(20);
    for scale in [1usize, 4, 16] {
        let initial = scaled_initial(scale);
        let config = BoundedSearchConfig {
            threads: 1,
            ..BoundedSearchConfig::default()
        };
        for n in [1usize, 4, 8] {
            let batch: Vec<AccLtl> = (0..n).map(|k| property(&schema, k)).collect();
            group.bench_with_input(
                BenchmarkId::new(format!("batched_n{n}"), scale),
                &scale,
                |b, _| {
                    b.iter(|| {
                        BoundedSearcher::new(&schema, &initial, false, config)
                            .run_batch(&batch)
                            .len()
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("sequential_n{n}"), scale),
                &scale,
                |b, _| {
                    b.iter(|| {
                        let searcher = BoundedSearcher::new(&schema, &initial, false, config);
                        let reports: Vec<_> = batch.iter().map(|f| searcher.run(f)).collect();
                        reports.len()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
