//! Executable versions of the paper's undecidability gadgets.
//!
//! Theorems 3.1 and 5.2 prove `AccLTL(FO∃+Acc)` and binding-positive
//! `AccLTL(FO∃+,≠Acc)` undecidable by reduction from the implication problem
//! for functional and inclusion dependencies (undecidable by Chandra–Vardi).
//! The reductions build a schema in which relations are "filled" by accesses
//! and the dependencies are then checked on the revealed data.
//!
//! This module constructs the core of that encoding for sets of functional
//! dependencies over a single relation: a schema with an input-free `Fill`
//! access method, and a formula asserting that the revealed data satisfies a
//! set `Γ` of FDs while violating a candidate FD `σ`.  The formula is
//! satisfiable iff `Γ ⊭ σ`, which the tests cross-check against the chase
//! oracle of `accltl-relational`.  (The full gadget additionally iterates a
//! successor relation to handle inclusion dependencies; that part only
//! matters for the undecidability argument itself, not for any decision
//! procedure, and is documented rather than executed.)

use accltl_paths::{AccessMethod, AccessSchema};
use accltl_relational::{FunctionalDependency, RelationSchema, Schema};

use crate::accltl::AccLtl;
use crate::properties::functional_dependency_post_formula;

/// The schema used by the dependency gadget: one relation of the given arity
/// with an input-free access method `Fill` (every access may reveal arbitrary
/// tuples, so paths can build any instance), as in the proof of Theorem 5.3.
#[must_use]
pub fn gadget_schema(relation: &str, arity: usize) -> AccessSchema {
    let schema = Schema::from_relations([RelationSchema::text(relation, arity)])
        .expect("single relation schema");
    let mut access_schema = AccessSchema::new(schema);
    access_schema
        .add_method(AccessMethod::free(format!("Fill{relation}"), relation))
        .expect("free method is valid");
    access_schema
}

/// Builds the formula of the Theorem 5.2-style encoding for FD implication:
///
/// * for every `fd ∈ gamma`, the revealed data always satisfies `fd`;
/// * eventually the revealed data violates `sigma`.
///
/// The formula is satisfiable over access paths of [`gadget_schema`] iff
/// there is a finite instance satisfying `gamma` and violating `sigma`, i.e.
/// iff `gamma` does **not** imply `sigma`.
#[must_use]
pub fn fd_implication_gadget(
    schema: &AccessSchema,
    gamma: &[FunctionalDependency],
    sigma: &FunctionalDependency,
) -> AccLtl {
    let respects_gamma: Vec<AccLtl> = gamma
        .iter()
        .map(|fd| functional_dependency_post_formula(schema, fd))
        .collect();
    let violates_sigma = AccLtl::not(functional_dependency_post_formula(schema, sigma));
    AccLtl::and(
        respects_gamma
            .into_iter()
            .chain(std::iter::once(violates_sigma))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded::{BoundedSearchConfig, SatOutcome};
    use crate::fragment::{classify, Fragment};
    use crate::solver::sat_full_bounded;
    use accltl_relational::chase::{implies_fd, ChaseConfig, Implication};
    use accltl_relational::{Constraint, Instance};
    use std::collections::BTreeMap;

    fn chase_oracle(gamma: &[FunctionalDependency], sigma: &FunctionalDependency) -> Implication {
        let constraints: Vec<Constraint> = gamma.iter().cloned().map(Constraint::Fd).collect();
        let arities = BTreeMap::from([(accltl_relational::RelId::new("R"), 3usize)]);
        implies_fd(&constraints, sigma, &arities, &ChaseConfig::default())
    }

    #[test]
    fn gadget_formula_is_in_the_inequality_language() {
        let schema = gadget_schema("R", 3);
        let gamma = vec![FunctionalDependency::new("R", vec![0], 1)];
        let sigma = FunctionalDependency::new("R", vec![0], 2);
        let formula = fd_implication_gadget(&schema, &gamma, &sigma);
        // The encoding needs inequalities (Example 2.4 / Theorem 5.2): it
        // cannot be expressed in the inequality-free languages.
        assert_eq!(classify(&formula), Fragment::ZeroAryWithInequalities);
    }

    #[test]
    fn non_implied_dependency_yields_a_satisfiable_gadget() {
        // Γ = {2→3}, σ = 1→2: not implied, so the gadget is satisfiable and
        // the witness path reveals a Γ-satisfying, σ-violating instance.
        let schema = gadget_schema("R", 3);
        let gamma = vec![FunctionalDependency::new("R", vec![1], 2)];
        let sigma = FunctionalDependency::new("R", vec![0], 1);
        assert_eq!(chase_oracle(&gamma, &sigma), Implication::NotImplied);

        let formula = fd_implication_gadget(&schema, &gamma, &sigma);
        let outcome = sat_full_bounded(
            &formula,
            &schema,
            &Instance::new(),
            &BoundedSearchConfig::default(),
        );
        let SatOutcome::Satisfiable { witness } = outcome else {
            panic!("expected a witness, the dependency is not implied");
        };
        // The final configuration satisfies Γ and violates σ.
        let config = witness.configuration(&schema, &Instance::new()).unwrap();
        assert!(gamma.iter().all(|fd| fd.satisfied(&config)));
        assert!(!sigma.satisfied(&config));
    }

    #[test]
    fn implied_dependency_never_yields_a_witness() {
        // Γ = {1→2, 2→3}, σ = 1→3: implied (transitivity), so no witness can
        // exist; the bounded search must not fabricate one.
        let schema = gadget_schema("R", 3);
        let gamma = vec![
            FunctionalDependency::new("R", vec![0], 1),
            FunctionalDependency::new("R", vec![1], 2),
        ];
        let sigma = FunctionalDependency::new("R", vec![0], 2);
        assert_eq!(chase_oracle(&gamma, &sigma), Implication::Implied);

        let formula = fd_implication_gadget(&schema, &gamma, &sigma);
        let outcome = sat_full_bounded(
            &formula,
            &schema,
            &Instance::new(),
            &BoundedSearchConfig::default(),
        );
        assert!(
            !outcome.is_satisfiable(),
            "a witness would contradict FD implication"
        );
    }

    #[test]
    fn oracle_and_gadget_agree_on_a_small_family() {
        // Sweep a small family of FD sets over a ternary relation and check
        // that whenever the chase says "implied", the gadget has no witness,
        // and whenever the gadget finds a witness, the chase says "not
        // implied" (soundness in both directions of the correspondence).
        let schema = gadget_schema("R", 3);
        let candidates = [
            FunctionalDependency::new("R", vec![0], 1),
            FunctionalDependency::new("R", vec![1], 2),
            FunctionalDependency::new("R", vec![0], 2),
            FunctionalDependency::new("R", vec![2], 0),
        ];
        for gamma_mask in 0u32..8 {
            let gamma: Vec<FunctionalDependency> = (0..3)
                .filter(|i| gamma_mask & (1 << i) != 0)
                .map(|i| candidates[i as usize].clone())
                .collect();
            for sigma in &candidates {
                let oracle = chase_oracle(&gamma, sigma);
                let formula = fd_implication_gadget(&schema, &gamma, sigma);
                let outcome = sat_full_bounded(
                    &formula,
                    &schema,
                    &Instance::new(),
                    &BoundedSearchConfig::default(),
                );
                if outcome.is_satisfiable() {
                    assert_eq!(
                        oracle,
                        Implication::NotImplied,
                        "gadget witness found although Γ implies σ (Γ mask {gamma_mask}, σ {sigma})"
                    );
                }
                if oracle == Implication::Implied {
                    assert!(
                        !outcome.is_satisfiable(),
                        "Γ implies σ but the gadget found a witness"
                    );
                }
            }
        }
    }
}
