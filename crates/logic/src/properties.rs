//! Builders for the paper's application properties.
//!
//! Examples 2.2–2.4 and Section 4.2 express the static-analysis questions
//! studied in earlier work — query containment under access patterns,
//! long-term relevance, data-integrity, access-order and dataflow
//! restrictions, groundedness — as `AccLTL` formulas.  This module constructs
//! those formulas programmatically; they drive the Table 1 expressiveness
//! harness and the integration tests.

use accltl_paths::{Access, AccessSchema};
use accltl_relational::{
    ConjunctiveQuery, DisjointnessConstraint, FunctionalDependency, PosFormula, Term,
};

use crate::accltl::AccLtl;
use crate::vocabulary::{
    isbind_atom, isbind_prop, post_name, pre_atom, pre_name, query_post, query_pre,
};

/// Example 2.2: `Q1` is contained in `Q2` under (grounded) access patterns iff
/// this formula is valid over (grounded) access paths:
/// `G ¬(Q1^pre ∧ ¬Q2^pre)`.
#[must_use]
pub fn containment_formula(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> AccLtl {
    AccLtl::globally(AccLtl::not(AccLtl::and(vec![
        AccLtl::atom(query_pre(q1)),
        AccLtl::not(AccLtl::atom(query_pre(q2))),
    ])))
}

/// The negation used to *check* containment: `Q1 ⊑ Q2` fails iff this formula
/// is satisfiable — some reachable configuration satisfies `Q1` but not `Q2`.
#[must_use]
pub fn containment_violation_formula(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> AccLtl {
    AccLtl::finally(AccLtl::and(vec![
        AccLtl::atom(query_pre(q1)),
        AccLtl::not(AccLtl::atom(query_pre(q2))),
    ]))
}

/// Example 2.3: long-term relevance of a (boolean) access for a query over the
/// empty initial instance is expressed by
/// `F(¬Q^pre ∧ IsBind_AcM(b̄) ∧ Q^post)`.
#[must_use]
pub fn long_term_relevance_formula(access: &Access, query: &ConjunctiveQuery) -> AccLtl {
    let binding_terms: Vec<Term> = access
        .binding
        .values()
        .iter()
        .cloned()
        .map(Term::Const)
        .collect();
    AccLtl::finally(AccLtl::and(vec![
        AccLtl::not(AccLtl::atom(query_pre(query))),
        AccLtl::atom(isbind_atom(access.method, binding_terms)),
        AccLtl::atom(query_post(query)),
    ]))
}

/// `F Q^post`: the query is eventually revealed to hold.
#[must_use]
pub fn eventually_answered_formula(query: &ConjunctiveQuery) -> AccLtl {
    AccLtl::finally(AccLtl::atom(query_post(query)))
}

/// The groundedness property as an `AccLTL+` formula (Section 4): at every
/// transition, every value bound by the access already occurs in some
/// relation of the pre-instance.
///
/// To stay binding-positive the formula is a *disjunction over access
/// methods* (each transition performs exactly one access, so the case split
/// needs no negation): for the method used, the existentially quantified
/// binding values all occur in the pre-instance.
#[must_use]
pub fn groundedness_formula(schema: &AccessSchema) -> AccLtl {
    let per_method: Vec<PosFormula> = schema
        .methods()
        .map(|method| {
            let arity = method.input_arity();
            if arity == 0 {
                // An input-free access is vacuously grounded.
                return isbind_prop(method.name());
            }
            let bind_vars: Vec<String> = (0..arity).map(|i| format!("x{i}")).collect();
            // For every bound value x_i: it occurs somewhere in the
            // pre-instance.
            let each_value_known: Vec<PosFormula> = bind_vars
                .iter()
                .map(|xi| {
                    let per_relation: Vec<PosFormula> = schema
                        .schema()
                        .relations()
                        .map(|rel| {
                            let vars: Vec<String> =
                                (0..rel.arity()).map(|j| format!("y{j}")).collect();
                            let occurs = PosFormula::or(
                                vars.iter()
                                    .map(|yj| {
                                        PosFormula::Eq(Term::var(yj.clone()), Term::var(xi.clone()))
                                    })
                                    .collect(),
                            );
                            PosFormula::exists(
                                vars.clone(),
                                PosFormula::and(vec![
                                    pre_atom(rel.name(), vars.iter().map(Term::var).collect()),
                                    occurs,
                                ]),
                            )
                        })
                        .collect();
                    PosFormula::or(per_relation)
                })
                .collect();
            PosFormula::exists(
                bind_vars.clone(),
                PosFormula::and(
                    std::iter::once(isbind_atom(
                        method.name(),
                        bind_vars.iter().map(Term::var).collect(),
                    ))
                    .chain(each_value_known)
                    .collect(),
                ),
            )
        })
        .collect();
    AccLtl::globally(AccLtl::atom(PosFormula::or(per_method)))
}

/// Access-order restriction: no access with `after` may occur before the
/// first access with `before` (expressed with 0-ary `IsBind` propositions, as
/// in the paper's example of requiring an `Address` access before any
/// `Mobile#` access).
#[must_use]
pub fn access_order_formula(before_method: &str, after_method: &str) -> AccLtl {
    AccLtl::or(vec![
        AccLtl::globally(AccLtl::not(AccLtl::atom(isbind_prop(after_method)))),
        AccLtl::until(
            AccLtl::not(AccLtl::atom(isbind_prop(after_method))),
            AccLtl::atom(isbind_prop(before_method)),
        ),
    ])
}

/// Dataflow restriction (the paper's example): whenever method `method` is
/// used, the value it binds at input index `input_index` must already occur at
/// position `source_position` of relation `source_relation` in the
/// pre-instance.
///
/// As with [`groundedness_formula`], the case split over which access method
/// a transition uses is expressed as a positive disjunction (every transition
/// performs exactly one access), keeping the formula in `AccLTL+`.
#[must_use]
pub fn dataflow_formula(
    schema: &AccessSchema,
    method: &str,
    input_index: usize,
    source_relation: &str,
    source_position: usize,
) -> AccLtl {
    let arity = schema.method(method).map(|m| m.input_arity()).unwrap_or(0);
    let bind_vars: Vec<String> = (0..arity).map(|i| format!("x{i}")).collect();
    let source_arity = schema
        .schema()
        .relation(source_relation)
        .map(accltl_relational::RelationSchema::arity)
        .unwrap_or(0);
    let source_vars: Vec<String> = (0..source_arity).map(|j| format!("y{j}")).collect();

    let mut source_terms: Vec<Term> = source_vars.iter().map(Term::var).collect();
    if source_position < source_terms.len() && input_index < bind_vars.len() {
        source_terms[source_position] = Term::var(bind_vars[input_index].clone());
    }
    let grounded_use = PosFormula::exists(
        bind_vars
            .iter()
            .cloned()
            .chain(
                source_vars
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != source_position)
                    .map(|(_, v)| v.clone()),
            )
            .collect::<Vec<_>>(),
        PosFormula::and(vec![
            isbind_atom(method, bind_vars.iter().map(Term::var).collect()),
            pre_atom(source_relation, source_terms),
        ]),
    );
    // "Some other method is used" — the positive complement of the trigger.
    let other_method_used: Vec<PosFormula> = schema
        .methods()
        .filter(|m| m.name() != method)
        .map(|m| {
            let vars: Vec<String> = (0..m.input_arity()).map(|i| format!("o{i}")).collect();
            PosFormula::exists(
                vars.clone(),
                isbind_atom(m.name(), vars.iter().map(Term::var).collect()),
            )
        })
        .collect();
    let sentence = PosFormula::or(
        other_method_used
            .into_iter()
            .chain(std::iter::once(grounded_use))
            .collect(),
    );
    AccLtl::globally(AccLtl::atom(sentence))
}

/// Schema-aware disjointness restriction: there is never a value occurring
/// both at `constraint.left` and `constraint.right` in the pre-instance
/// (the paper's "customer names do not overlap street names").
#[must_use]
pub fn disjointness_formula_for(
    schema: &AccessSchema,
    constraint: &DisjointnessConstraint,
) -> AccLtl {
    let (left_rel, left_pos) = &constraint.left;
    let (right_rel, right_pos) = &constraint.right;
    let left_arity = schema
        .schema()
        .relation_by_id(*left_rel)
        .map(accltl_relational::RelationSchema::arity)
        .unwrap_or(*left_pos + 1);
    let right_arity = schema
        .schema()
        .relation_by_id(*right_rel)
        .map(accltl_relational::RelationSchema::arity)
        .unwrap_or(*right_pos + 1);
    let left_vars: Vec<String> = (0..left_arity).map(|i| format!("l{i}")).collect();
    let mut right_vars: Vec<String> = (0..right_arity).map(|i| format!("r{i}")).collect();
    // Share the constrained variable.
    right_vars[*right_pos] = left_vars[*left_pos].clone();
    let all_vars: Vec<String> = left_vars
        .iter()
        .cloned()
        .chain(right_vars.iter().cloned())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let violation = PosFormula::exists(
        all_vars,
        PosFormula::and(vec![
            pre_atom(left_rel, left_vars.iter().map(Term::var).collect()),
            pre_atom(right_rel, right_vars.iter().map(Term::var).collect()),
        ]),
    );
    AccLtl::globally(AccLtl::not(AccLtl::atom(violation)))
}

/// Example 2.4: a functional dependency asserted along the path, expressed
/// with inequalities: it is never the case that two tuples of the relation
/// agree on the determining positions but differ on the determined one.
#[must_use]
pub fn functional_dependency_formula(schema: &AccessSchema, fd: &FunctionalDependency) -> AccLtl {
    let arity = schema
        .schema()
        .relation_by_id(fd.relation)
        .map(accltl_relational::RelationSchema::arity)
        .unwrap_or(fd.rhs + 1);
    let ys: Vec<String> = (0..arity).map(|i| format!("y{i}")).collect();
    let zs: Vec<String> = (0..arity).map(|i| format!("z{i}")).collect();
    let mut conjuncts = vec![
        pre_atom(fd.relation, ys.iter().map(Term::var).collect()),
        pre_atom(fd.relation, zs.iter().map(Term::var).collect()),
    ];
    for &p in &fd.lhs {
        conjuncts.push(PosFormula::Eq(
            Term::var(ys[p].clone()),
            Term::var(zs[p].clone()),
        ));
    }
    conjuncts.push(PosFormula::Neq(
        Term::var(ys[fd.rhs].clone()),
        Term::var(zs[fd.rhs].clone()),
    ));
    let violation = PosFormula::exists(
        ys.iter()
            .cloned()
            .chain(zs.iter().cloned())
            .collect::<Vec<_>>(),
        PosFormula::and(conjuncts),
    );
    AccLtl::globally(AccLtl::not(AccLtl::atom(violation)))
}

/// The same functional-dependency restriction over the *post* instances
/// (useful when asserting integrity of everything revealed so far, including
/// the final configuration).
#[must_use]
pub fn functional_dependency_post_formula(
    schema: &AccessSchema,
    fd: &FunctionalDependency,
) -> AccLtl {
    let pre_version = functional_dependency_formula(schema, fd);
    rename_pre_to_post(&pre_version, schema)
}

fn rename_pre_to_post(formula: &AccLtl, schema: &AccessSchema) -> AccLtl {
    let rename = |sentence: &PosFormula| -> PosFormula {
        sentence.rename_predicates(|p: &str| {
            if let Some(base) = crate::vocabulary::parse_pre(p) {
                if schema.schema().relation(base).is_some() {
                    return post_name(base);
                }
            }
            p.to_owned()
        })
    };
    map_atoms(formula, &rename)
}

fn map_atoms(formula: &AccLtl, f: &dyn Fn(&PosFormula) -> PosFormula) -> AccLtl {
    match formula {
        AccLtl::Atom(sentence) => AccLtl::Atom(f(sentence)),
        AccLtl::Not(inner) => AccLtl::not(map_atoms(inner, f)),
        AccLtl::And(parts) => AccLtl::and(parts.iter().map(|p| map_atoms(p, f)).collect()),
        AccLtl::Or(parts) => AccLtl::or(parts.iter().map(|p| map_atoms(p, f)).collect()),
        AccLtl::Next(inner) => AccLtl::next(map_atoms(inner, f)),
        AccLtl::Until(l, r) => AccLtl::until(map_atoms(l, f), map_atoms(r, f)),
    }
}

/// The `Rpre` name of a relation (re-exported here for formula-building
/// convenience in downstream crates and benches).
#[must_use]
pub fn pre_relation_name(relation: &str) -> String {
    pre_name(relation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::{classify, Fragment};
    use accltl_paths::access::phone_directory_access_schema;
    use accltl_paths::path::response;
    use accltl_paths::{Access, AccessPath};
    use accltl_relational::{atom, cq, tuple, Instance};

    fn schema() -> AccessSchema {
        phone_directory_access_schema()
    }

    fn figure1_path() -> AccessPath {
        AccessPath::new()
            .with_step(
                Access::new("AcM1", tuple!["Smith"]),
                response([tuple!["Smith", "OX13QD", "Parks Rd", 5551212]]),
            )
            .with_step(
                Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]),
                response([
                    tuple!["Parks Rd", "OX13QD", "Smith", 13],
                    tuple!["Parks Rd", "OX13QD", "Jones", 16],
                ]),
            )
    }

    #[test]
    fn containment_formula_is_in_the_zero_ary_fragment() {
        let q1 = cq!(<- atom!("Address"; s, p, @"Jones", h));
        let q2 = cq!(<- atom!("Address"; s, p, n, h));
        let f = containment_formula(&q1, &q2);
        assert_eq!(classify(&f), Fragment::ZeroAry);
        // Q1 ⊑ Q2, so no path can violate it; the violation formula never
        // holds on the Figure 1 path.
        let violation = containment_violation_formula(&q1, &q2);
        assert!(!violation
            .holds_on_path(&figure1_path(), &schema(), &Instance::new(), true)
            .unwrap());
        // The reverse containment is violated along the Figure 1 path: after
        // the second access the configuration has an Address entry (Q2) that
        // is not Jones's... wait, it has Jones's too — use a person that is
        // never revealed instead.
        let q3 = cq!(<- atom!("Address"; s, p, @"Nobody", h));
        let violation_q2_in_q3 = containment_violation_formula(&q2, &q3);
        // Needs a third transition so that the configuration with the Address
        // facts becomes a *pre* instance.
        let longer = figure1_path().with_step(Access::new("AcM1", tuple!["Doe"]), response([]));
        assert!(violation_q2_in_q3
            .holds_on_path(&longer, &schema(), &Instance::new(), true)
            .unwrap());
    }

    #[test]
    fn ltr_formula_matches_example_2_3() {
        // Boolean access to Address asking whether Jones lives at Parks Rd 16.
        let mut schema = schema();
        schema
            .add_method(accltl_paths::AccessMethod::boolean(
                "BoolAddr", "Address", 4,
            ))
            .unwrap();
        let access = Access::new("BoolAddr", tuple!["Parks Rd", "OX13QD", "Jones", 16]);
        let q = cq!(<- atom!("Address"; s, p, @"Jones", h));
        let f = long_term_relevance_formula(&access, &q);
        assert_eq!(classify(&f), Fragment::BindingPositive);
        assert!(f.is_binding_positive());

        // A path in which that boolean access reveals Jones's tuple satisfies
        // the formula (the query flips from false to true at that access).
        let witness = AccessPath::new().with_step(
            access.clone(),
            response([tuple!["Parks Rd", "OX13QD", "Jones", 16]]),
        );
        assert!(f
            .holds_on_path(&witness, &schema, &Instance::new(), false)
            .unwrap());

        // A path where the access returns nothing does not.
        let empty = AccessPath::new().with_step(access, response([]));
        assert!(!f
            .holds_on_path(&empty, &schema, &Instance::new(), false)
            .unwrap());
    }

    #[test]
    fn groundedness_formula_accepts_grounded_paths_only() {
        let schema = schema();
        let f = groundedness_formula(&schema);
        assert!(f.is_binding_positive());
        // The Figure 1 path guesses "Smith" out of thin air: not grounded.
        assert!(!f
            .holds_on_path(&figure1_path(), &schema, &Instance::new(), false)
            .unwrap());
        // Starting from an initial instance that contains Smith's address, the
        // same path becomes grounded... the binding "Smith" appears in the
        // initial Address fact, and the second access's values appear in the
        // first response.
        let mut initial = Instance::new();
        initial.add_fact("Address", tuple!["High St", "OX26NN", "Smith", 2]);
        assert!(f
            .holds_on_path(&figure1_path(), &schema, &initial, false)
            .unwrap());
        // And the semantic groundedness check agrees.
        assert!(accltl_paths::is_grounded(&figure1_path(), &initial));
        assert!(!accltl_paths::is_grounded(
            &figure1_path(),
            &Instance::new()
        ));
    }

    #[test]
    fn access_order_formula_distinguishes_orders() {
        let schema = schema();
        // Require an Address access (AcM2) before any Mobile# access (AcM1).
        let f = access_order_formula("AcM2", "AcM1");
        assert_eq!(classify(&f), Fragment::ZeroAry);
        let acm1_first = figure1_path();
        assert!(!f
            .holds_on_path(&acm1_first, &schema, &Instance::new(), true)
            .unwrap());
        let acm2_first = AccessPath::new()
            .with_step(
                Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]),
                response([tuple!["Parks Rd", "OX13QD", "Smith", 13]]),
            )
            .with_step(
                Access::new("AcM1", tuple!["Smith"]),
                response([tuple!["Smith", "OX13QD", "Parks Rd", 5551212]]),
            );
        assert!(f
            .holds_on_path(&acm2_first, &schema, &Instance::new(), true)
            .unwrap());
        // A path that never uses AcM1 satisfies it vacuously.
        let only_acm2 = AccessPath::new().with_step(
            Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]),
            response([]),
        );
        assert!(f
            .holds_on_path(&only_acm2, &schema, &Instance::new(), true)
            .unwrap());
    }

    #[test]
    fn dataflow_formula_matches_paper_example() {
        let schema = schema();
        // Names input to Mobile# (AcM1, input index 0) must already occur as
        // resident names (Address position 2).
        let f = dataflow_formula(&schema, "AcM1", 0, "Address", 2);
        assert!(f.is_binding_positive());
        assert_eq!(classify(&f), Fragment::BindingPositive);

        // Accessing Mobile# with "Smith" after Smith appeared in an Address
        // response satisfies the restriction...
        let good = AccessPath::new()
            .with_step(
                Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]),
                response([tuple!["Parks Rd", "OX13QD", "Smith", 13]]),
            )
            .with_step(
                Access::new("AcM1", tuple!["Smith"]),
                response([tuple!["Smith", "OX13QD", "Parks Rd", 5551212]]),
            );
        assert!(f
            .holds_on_path(&good, &schema, &Instance::new(), false)
            .unwrap());
        // ... while the Figure 1 order (Mobile# first) violates it.
        assert!(!f
            .holds_on_path(&figure1_path(), &schema, &Instance::new(), false)
            .unwrap());
    }

    #[test]
    fn disjointness_formula_detects_overlap() {
        let schema = schema();
        let constraint = DisjointnessConstraint::new("Mobile#", 0, "Address", 0);
        let f = disjointness_formula_for(&schema, &constraint);
        assert_eq!(classify(&f), Fragment::ZeroAry);
        // The Figure 1 path never has a person named like a street.
        assert!(f
            .holds_on_path(&figure1_path(), &schema, &Instance::new(), true)
            .unwrap());
        // Reveal a Mobile# tuple whose customer name is "Parks Rd" and make
        // one more access so it shows up in a pre-instance: violated.
        let bad = AccessPath::new()
            .with_step(
                Access::new("AcM1", tuple!["Parks Rd"]),
                response([tuple!["Parks Rd", "OX13QD", "Parks Rd", 1]]),
            )
            .with_step(
                Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]),
                response([tuple!["Parks Rd", "OX13QD", "Smith", 13]]),
            )
            .with_step(Access::new("AcM1", tuple!["Smith"]), response([]));
        assert!(!f
            .holds_on_path(&bad, &schema, &Instance::new(), true)
            .unwrap());
    }

    #[test]
    fn functional_dependency_formula_uses_inequalities() {
        let schema = schema();
        // name → phone number on Mobile#.
        let fd = FunctionalDependency::new("Mobile#", vec![0], 3);
        let f = functional_dependency_formula(&schema, &fd);
        assert_eq!(classify(&f), Fragment::ZeroAryWithInequalities);

        // A path revealing two tuples for Smith with different numbers, then
        // making one more access (so they appear in a pre-instance), violates
        // the FD restriction.
        let bad = AccessPath::new()
            .with_step(
                Access::new("AcM1", tuple!["Smith"]),
                response([
                    tuple!["Smith", "OX13QD", "Parks Rd", 5551212],
                    tuple!["Smith", "OX13QD", "Parks Rd", 9999999],
                ]),
            )
            .with_step(Access::new("AcM1", tuple!["Jones"]), response([]));
        assert!(!f
            .holds_on_path(&bad, &schema, &Instance::new(), true)
            .unwrap());
        // The Figure 1 path satisfies the FD.
        assert!(f
            .holds_on_path(&figure1_path(), &schema, &Instance::new(), true)
            .unwrap());

        // The post-variant already detects the violation at the revealing
        // transition itself.
        let f_post = functional_dependency_post_formula(&schema, &fd);
        let single_step = bad.prefix(1);
        assert!(!f_post
            .holds_on_path(&single_step, &schema, &Instance::new(), true)
            .unwrap());
    }

    #[test]
    fn eventually_answered_formula_holds_when_query_revealed() {
        let schema = schema();
        let q = cq!(<- atom!("Address"; s, p, @"Jones", h));
        let f = eventually_answered_formula(&q);
        assert!(f
            .holds_on_path(&figure1_path(), &schema, &Instance::new(), true)
            .unwrap());
        assert!(!f
            .holds_on_path(&figure1_path().prefix(1), &schema, &Instance::new(), true)
            .unwrap());
    }
}
