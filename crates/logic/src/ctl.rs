//! The one-step branching logic `CTL_EX(FO∃+0−Acc)` of Section 5.2.
//!
//! The paper shows that even this minimal branching-time logic — boolean
//! combinations of transition sentences closed under a single existential
//! next-step modality `EX` — is undecidable over the LTS of a schema with
//! access restrictions (Theorem 5.3).  This module provides the syntax,
//! semantics over a materialised LTS fragment, and a *bounded* model-checking
//! / satisfiability procedure, which is the honest substitute for an
//! impossible complete one.

use accltl_paths::lts::{LtsNode, LtsTree};
use accltl_paths::Transition;
use accltl_relational::{Instance, PosFormula};

/// A `CTL_EX` formula over the 0-ary transition vocabulary.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CtlEx {
    /// An atomic transition sentence.
    Atom(PosFormula),
    /// Negation.
    Not(Box<CtlEx>),
    /// Conjunction.
    And(Vec<CtlEx>),
    /// Disjunction.
    Or(Vec<CtlEx>),
    /// `EX φ`: some successor transition satisfies `φ`.
    Ex(Box<CtlEx>),
}

impl CtlEx {
    /// Atom constructor.
    #[must_use]
    pub fn atom(sentence: PosFormula) -> Self {
        CtlEx::Atom(sentence)
    }

    /// Negation constructor.
    #[allow(clippy::should_implement_trait)] // deliberate builder, not `!`
    #[must_use]
    pub fn not(formula: CtlEx) -> Self {
        CtlEx::Not(Box::new(formula))
    }

    /// Conjunction constructor.
    #[must_use]
    pub fn and(parts: Vec<CtlEx>) -> Self {
        CtlEx::And(parts)
    }

    /// Disjunction constructor.
    #[must_use]
    pub fn or(parts: Vec<CtlEx>) -> Self {
        CtlEx::Or(parts)
    }

    /// `EX φ` constructor.
    #[must_use]
    pub fn ex(formula: CtlEx) -> Self {
        CtlEx::Ex(Box::new(formula))
    }

    /// `AX φ ≡ ¬EX¬φ` (the derived universal next-step modality used in the
    /// Theorem 5.3 gadget).
    #[must_use]
    pub fn ax(formula: CtlEx) -> Self {
        CtlEx::not(CtlEx::ex(CtlEx::not(formula)))
    }

    /// The nesting depth of `EX` modalities: a lower bound on the LTS depth
    /// needed to evaluate the formula.
    #[must_use]
    pub fn ex_depth(&self) -> usize {
        match self {
            CtlEx::Atom(_) => 0,
            CtlEx::Not(inner) => inner.ex_depth(),
            CtlEx::And(parts) | CtlEx::Or(parts) => {
                parts.iter().map(CtlEx::ex_depth).max().unwrap_or(0)
            }
            CtlEx::Ex(inner) => 1 + inner.ex_depth(),
        }
    }
}

/// Evaluates the formula at a transition of the materialised LTS: the edge
/// `edge_index` out of node `node_index`.
///
/// The transition structure interprets the `IsBind` predicate of the edge's
/// method as a 0-ary proposition, following `Sch0−Acc`.
#[must_use]
pub fn satisfied_at_edge(
    formula: &CtlEx,
    tree: &LtsTree,
    node_index: usize,
    edge_index: usize,
) -> bool {
    let node = &tree.nodes[node_index];
    let (access, response, child) = &node.edges[edge_index];
    let transition = Transition {
        before: node.instance(),
        access: access.clone(),
        response: response.clone(),
        after: tree.nodes[*child].instance(),
    };
    let structure = crate::vocabulary::transition_structure(&transition, true);
    satisfied(formula, tree, *child, &structure)
}

fn satisfied(formula: &CtlEx, tree: &LtsTree, child_node: usize, structure: &Instance) -> bool {
    match formula {
        CtlEx::Atom(sentence) => sentence.holds(structure),
        CtlEx::Not(inner) => !satisfied(inner, tree, child_node, structure),
        CtlEx::And(parts) => parts
            .iter()
            .all(|p| satisfied(p, tree, child_node, structure)),
        CtlEx::Or(parts) => parts
            .iter()
            .any(|p| satisfied(p, tree, child_node, structure)),
        CtlEx::Ex(inner) => {
            let node: &LtsNode = &tree.nodes[child_node];
            (0..node.edges.len()).any(|edge| satisfied_at_edge(inner, tree, child_node, edge))
        }
    }
}

/// Bounded satisfiability of a `CTL_EX` formula over a materialised LTS
/// fragment: is there a transition of the fragment at which the formula
/// holds?  Returns the `(node, edge)` coordinates of a witness transition.
///
/// This is a *bounded* procedure: the LTS fragment must be deep enough
/// (`formula.ex_depth() + 1` levels below the witness) for the verdict to be
/// meaningful, and a `None` answer over a truncated fragment proves nothing —
/// Theorem 5.3 shows no complete procedure can exist.
#[must_use]
pub fn bounded_satisfiability(formula: &CtlEx, tree: &LtsTree) -> Option<(usize, usize)> {
    for (node_index, node) in tree.nodes.iter().enumerate() {
        for edge_index in 0..node.edges.len() {
            if satisfied_at_edge(formula, tree, node_index, edge_index) {
                return Some((node_index, edge_index));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocabulary::isbind_prop;
    use accltl_paths::access::phone_directory_access_schema;
    use accltl_paths::lts::{LtsExplorer, LtsOptions};
    use accltl_paths::AccessSchema;
    use accltl_relational::{tuple, Term};

    fn tree(depth: usize) -> (AccessSchema, LtsTree) {
        let schema = phone_directory_access_schema();
        let mut hidden = Instance::new();
        hidden.add_fact("Mobile#", tuple!["Smith", "OX13QD", "Parks Rd", 5551212]);
        hidden.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Jones", 16]);
        let explorer_options = LtsOptions {
            max_depth: depth,
            max_bindings_per_method: 16,
            ..LtsOptions::default()
        };
        let tree = LtsExplorer::new(&schema, &hidden, explorer_options)
            .explore(&Instance::new())
            .unwrap();
        (schema, tree)
    }

    fn jones_post() -> PosFormula {
        PosFormula::exists(
            vec!["s", "p", "h"],
            crate::vocabulary::post_atom(
                "Address",
                vec![
                    Term::var("s"),
                    Term::var("p"),
                    Term::constant("Jones"),
                    Term::var("h"),
                ],
            ),
        )
    }

    #[test]
    fn atomic_formulas_hold_at_the_revealing_transition() {
        let (_schema, tree) = tree(2);
        let f = CtlEx::atom(jones_post());
        let witness = bounded_satisfiability(&f, &tree);
        assert!(witness.is_some());
    }

    #[test]
    fn ex_looks_one_step_ahead() {
        let (_schema, tree) = tree(3);
        // There is a transition after which some further access reveals the
        // Jones tuple.
        let f = CtlEx::ex(CtlEx::atom(jones_post()));
        assert!(bounded_satisfiability(&f, &tree).is_some());
        // Nested EX beyond the materialised depth finds nothing.
        let mut deep = CtlEx::atom(jones_post());
        for _ in 0..5 {
            deep = CtlEx::ex(deep);
        }
        assert_eq!(deep.ex_depth(), 5);
        assert!(bounded_satisfiability(&deep, &tree).is_none());
    }

    #[test]
    fn ax_is_the_dual_of_ex() {
        let (_schema, tree) = tree(2);
        // AX ⊥ holds exactly at transitions whose target node has no expanded
        // successor (the leaves of the fragment).
        let at_leaf = CtlEx::ax(CtlEx::atom(PosFormula::False));
        assert!(bounded_satisfiability(&at_leaf, &tree).is_some());
        // EX ⊤ ∧ AX ⊥ is contradictory.
        let contradiction = CtlEx::and(vec![CtlEx::ex(CtlEx::atom(PosFormula::True)), at_leaf]);
        assert!(bounded_satisfiability(&contradiction, &tree).is_none());
    }

    #[test]
    fn boolean_connectives_and_isbind_propositions() {
        let (_schema, tree) = tree(2);
        // A transition made with AcM2 after which Jones is known.
        let f = CtlEx::and(vec![
            CtlEx::atom(isbind_prop("AcM2")),
            CtlEx::atom(jones_post()),
        ]);
        assert!(bounded_satisfiability(&f, &tree).is_some());
        // A transition made with AcM1 revealing a Jones address tuple does not
        // exist (AcM1 accesses Mobile#).
        let g = CtlEx::and(vec![
            CtlEx::atom(isbind_prop("AcM1")),
            CtlEx::not(CtlEx::atom(isbind_prop("AcM2"))),
            CtlEx::atom(jones_post()),
            // ... and the Address fact must have been revealed by *this*
            // access, i.e. not already known before.
            CtlEx::not(CtlEx::atom(PosFormula::exists(
                vec!["s", "p", "h"],
                crate::vocabulary::pre_atom(
                    "Address",
                    vec![
                        Term::var("s"),
                        Term::var("p"),
                        Term::constant("Jones"),
                        Term::var("h"),
                    ],
                ),
            ))),
        ]);
        assert!(bounded_satisfiability(&g, &tree).is_none());
    }
}
