//! Satisfiability front-ends for the language fragments of Table 1.
//!
//! Each function checks that the formula syntactically belongs to the
//! fragment it implements, then dispatches to the bounded-universe engine of
//! [`crate::bounded`] with the interpretation (0-ary vs full `IsBind`) and the
//! verdict policy appropriate for that fragment:
//!
//! | Fragment | Engine interpretation | "no witness found" means |
//! |---|---|---|
//! | `AccLTL(X)(FO∃+[,≠]0−Acc)` (ΣP2) | 0-ary | unsatisfiable |
//! | `AccLTL(FO∃+[,≠]0−Acc)` (PSPACE) | 0-ary | unsatisfiable |
//! | `AccLTL+` (≤3EXPTIME) | full bindings | unsatisfiable within the Boundedness-Lemma witness space (the A-automaton pipeline in `accltl-automata` is the reference procedure) |
//! | `AccLTL(FO∃+[,≠]Acc)` (undecidable) | full bindings | unknown |

use std::fmt;

use accltl_paths::AccessSchema;
use accltl_relational::Instance;

use crate::accltl::AccLtl;
use crate::bounded::{BoundedSearchConfig, BoundedSearcher, SatOutcome};
use crate::fragment::{belongs_to, classify, Fragment};

/// Errors raised by the solver front-ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverError {
    /// The formula does not belong to the fragment the solver implements.
    WrongFragment {
        /// The fragment the solver expects.
        expected: Fragment,
        /// The most specific fragment the formula belongs to.
        found: Fragment,
    },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::WrongFragment { expected, found } => write!(
                f,
                "formula belongs to {found}, which is not included in {expected}"
            ),
        }
    }
}

impl std::error::Error for SolverError {}

fn require_fragment(formula: &AccLtl, expected: Fragment) -> Result<(), SolverError> {
    if belongs_to(formula, expected) {
        Ok(())
    } else {
        Err(SolverError::WrongFragment {
            expected,
            found: classify(formula),
        })
    }
}

/// Satisfiability of an `AccLTL(FO∃+[,≠]0−Acc)` formula (Theorem 4.12 / 5.1,
/// PSPACE).  The `IsBind` predicates are interpreted as 0-ary propositions.
pub fn sat_zero_fragment(
    formula: &AccLtl,
    schema: &AccessSchema,
    initial: &Instance,
    config: &BoundedSearchConfig,
) -> Result<SatOutcome, SolverError> {
    require_fragment(formula, Fragment::ZeroAryWithInequalities)?;
    Ok(BoundedSearcher::new(schema, initial, true, *config).search(formula))
}

/// Satisfiability of an `AccLTL(X)(FO∃+[,≠]0−Acc)` formula (Theorem 4.14 /
/// 5.1, ΣP2).  Identical to [`sat_zero_fragment`] except that the fragment
/// check additionally requires the formula to use only the `X` temporal
/// operator, which bounds witness paths by the `X`-nesting depth.
pub fn sat_x_fragment(
    formula: &AccLtl,
    schema: &AccessSchema,
    initial: &Instance,
    config: &BoundedSearchConfig,
) -> Result<SatOutcome, SolverError> {
    require_fragment(formula, Fragment::XZeroAry)?;
    Ok(BoundedSearcher::new(schema, initial, true, *config).search(formula))
}

/// Bounded satisfiability of an `AccLTL+` (binding-positive) formula
/// (Theorem 4.2).
///
/// A returned witness is always genuine.  A `Unsatisfiable` verdict certifies
/// that no witness exists within the Boundedness-Lemma fact universe and the
/// configured response/binding caps; the automaton pipeline of
/// `accltl-automata` (translate → progressive decomposition → Datalog
/// containment) is the paper's reference decision procedure and is exposed
/// through `accltl-core`.
pub fn sat_binding_positive_bounded(
    formula: &AccLtl,
    schema: &AccessSchema,
    initial: &Instance,
    config: &BoundedSearchConfig,
) -> Result<SatOutcome, SolverError> {
    require_fragment(formula, Fragment::BindingPositive)?;
    Ok(BoundedSearcher::new(schema, initial, false, *config).search(formula))
}

/// Bounded satisfiability for the full (undecidable) languages
/// `AccLTL(FO∃+[,≠]Acc)` (Theorems 3.1 and 5.2).
///
/// Finding a witness is sound; failing to find one proves nothing, so the
/// `Unsatisfiable` outcome of the engine is downgraded to `Unknown`.
#[must_use]
pub fn sat_full_bounded(
    formula: &AccLtl,
    schema: &AccessSchema,
    initial: &Instance,
    config: &BoundedSearchConfig,
) -> SatOutcome {
    match BoundedSearcher::new(schema, initial, false, *config).search(formula) {
        SatOutcome::Unsatisfiable => SatOutcome::Unknown { explored: 0 },
        other => other,
    }
}

/// Validity of a formula over all access paths of the schema (bounded): a
/// formula is valid iff its negation is unsatisfiable.  The verdict inherits
/// the caveats of the underlying satisfiability procedure for the negation's
/// fragment.
#[must_use]
pub fn valid_bounded(
    formula: &AccLtl,
    schema: &AccessSchema,
    initial: &Instance,
    config: &BoundedSearchConfig,
) -> ValidityOutcome {
    let negation = AccLtl::not(formula.clone());
    let zero_ary = belongs_to(&negation, Fragment::ZeroAryWithInequalities);
    let outcome = BoundedSearcher::new(schema, initial, zero_ary, *config).search(&negation);
    match outcome {
        SatOutcome::Satisfiable { witness } => ValidityOutcome::NotValid {
            counterexample: witness,
        },
        SatOutcome::Unsatisfiable => ValidityOutcome::Valid,
        SatOutcome::Unknown { explored } => ValidityOutcome::Unknown { explored },
    }
}

/// Outcome of a validity check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidityOutcome {
    /// Every access path satisfies the formula (within the engine's
    /// completeness guarantees for the negation's fragment).
    Valid,
    /// A counterexample path was found.
    NotValid {
        /// A path violating the formula.
        counterexample: accltl_paths::AccessPath,
    },
    /// The search budget was exhausted.
    Unknown {
        /// Number of states explored.
        explored: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocabulary::{isbind_atom, isbind_prop, post_atom};
    use accltl_paths::access::phone_directory_access_schema;
    use accltl_relational::{PosFormula, Term};

    fn jones_post() -> PosFormula {
        PosFormula::exists(
            vec!["s", "p", "h"],
            post_atom(
                "Address",
                vec![
                    Term::var("s"),
                    Term::var("p"),
                    Term::constant("Jones"),
                    Term::var("h"),
                ],
            ),
        )
    }

    #[test]
    fn zero_fragment_solver_accepts_and_decides() {
        let schema = phone_directory_access_schema();
        let f = AccLtl::finally(AccLtl::atom(jones_post()));
        let outcome = sat_zero_fragment(
            &f,
            &schema,
            &Instance::new(),
            &BoundedSearchConfig::default(),
        )
        .unwrap();
        assert!(outcome.is_satisfiable());

        let unsat = AccLtl::and(vec![
            AccLtl::globally(AccLtl::not(AccLtl::atom(jones_post()))),
            AccLtl::finally(AccLtl::atom(jones_post())),
        ]);
        let outcome = sat_zero_fragment(
            &unsat,
            &schema,
            &Instance::new(),
            &BoundedSearchConfig::default(),
        )
        .unwrap();
        assert_eq!(outcome, SatOutcome::Unsatisfiable);
    }

    #[test]
    fn zero_fragment_solver_rejects_binding_formulas() {
        let schema = phone_directory_access_schema();
        let binding_formula = AccLtl::finally(AccLtl::atom(PosFormula::exists(
            vec!["n"],
            isbind_atom("AcM1", vec![Term::var("n")]),
        )));
        let err = sat_zero_fragment(
            &binding_formula,
            &schema,
            &Instance::new(),
            &BoundedSearchConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SolverError::WrongFragment { .. }));
        assert!(err.to_string().contains("AccLTL+"));
    }

    #[test]
    fn x_fragment_requires_x_only() {
        let schema = phone_directory_access_schema();
        let x_formula = AccLtl::next(AccLtl::atom(isbind_prop("AcM2")));
        assert!(sat_x_fragment(
            &x_formula,
            &schema,
            &Instance::new(),
            &BoundedSearchConfig::default()
        )
        .unwrap()
        .is_satisfiable());

        let until_formula = AccLtl::finally(AccLtl::atom(isbind_prop("AcM2")));
        assert!(sat_x_fragment(
            &until_formula,
            &schema,
            &Instance::new(),
            &BoundedSearchConfig::default()
        )
        .is_err());
    }

    #[test]
    fn binding_positive_solver_accepts_plus_formulas_only() {
        let schema = phone_directory_access_schema();
        let plus = AccLtl::finally(AccLtl::atom(PosFormula::exists(
            vec!["n"],
            isbind_atom("AcM1", vec![Term::var("n")]),
        )));
        assert!(sat_binding_positive_bounded(
            &plus,
            &schema,
            &Instance::new(),
            &BoundedSearchConfig::default()
        )
        .unwrap()
        .is_satisfiable());

        let not_plus = AccLtl::globally(AccLtl::not(AccLtl::atom(PosFormula::exists(
            vec!["n"],
            isbind_atom("AcM1", vec![Term::var("n")]),
        ))));
        assert!(sat_binding_positive_bounded(
            &not_plus,
            &schema,
            &Instance::new(),
            &BoundedSearchConfig::default()
        )
        .is_err());
    }

    #[test]
    fn full_bounded_downgrades_unsat_to_unknown() {
        let schema = phone_directory_access_schema();
        // "Globally no AcM1 access is ever made (with any binding)" — a
        // non-binding-positive formula; satisfiable, and witnessed by an AcM2
        // access.
        let no_acm1 = AccLtl::globally(AccLtl::not(AccLtl::atom(PosFormula::exists(
            vec!["n"],
            isbind_atom("AcM1", vec![Term::var("n")]),
        ))));
        let outcome = sat_full_bounded(
            &no_acm1,
            &schema,
            &Instance::new(),
            &BoundedSearchConfig::default(),
        );
        assert!(outcome.is_satisfiable());

        // A contradiction in the full language: the engine cannot find a
        // witness, and the verdict must be Unknown (not Unsatisfiable).
        let contradiction = AccLtl::and(vec![
            no_acm1.clone(),
            AccLtl::finally(AccLtl::atom(PosFormula::exists(
                vec!["n"],
                isbind_atom("AcM1", vec![Term::var("n")]),
            ))),
        ]);
        let outcome = sat_full_bounded(
            &contradiction,
            &schema,
            &Instance::new(),
            &BoundedSearchConfig::default(),
        );
        assert!(matches!(outcome, SatOutcome::Unknown { .. }));
    }

    #[test]
    fn validity_of_tautologies_and_counterexamples() {
        let schema = phone_directory_access_schema();
        // "Every path eventually uses AcM1 or does not" — a tautology.
        let tautology = AccLtl::or(vec![
            AccLtl::finally(AccLtl::atom(isbind_prop("AcM1"))),
            AccLtl::not(AccLtl::finally(AccLtl::atom(isbind_prop("AcM1")))),
        ]);
        assert_eq!(
            valid_bounded(
                &tautology,
                &schema,
                &Instance::new(),
                &BoundedSearchConfig::default()
            ),
            ValidityOutcome::Valid
        );

        // "Every path eventually uses AcM1" — not valid; the counterexample
        // uses only AcM2.
        let not_valid = AccLtl::finally(AccLtl::atom(isbind_prop("AcM1")));
        let outcome = valid_bounded(
            &not_valid,
            &schema,
            &Instance::new(),
            &BoundedSearchConfig::default(),
        );
        let ValidityOutcome::NotValid { counterexample } = outcome else {
            panic!("expected a counterexample");
        };
        assert!(counterexample.accesses().all(|a| a.method != "AcM1"));
    }
}
