//! Propositional linear temporal logic over finite words.
//!
//! Theorem 4.12 decides satisfiability of `AccLTL(FO∃+0−Acc)` by abstracting
//! bounded instance sequences into propositions and handing the resulting
//! formula to a propositional LTL satisfiability checker over finite words.
//! This module provides that target logic: syntax, finite-word semantics and
//! a satisfiability procedure based on formula progression.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// A propositional LTL formula (finite-word semantics).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Ltl {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// A proposition.
    Prop(String),
    /// Negation.
    Not(Box<Ltl>),
    /// Conjunction.
    And(Vec<Ltl>),
    /// Disjunction.
    Or(Vec<Ltl>),
    /// Next.
    Next(Box<Ltl>),
    /// Until.
    Until(Box<Ltl>, Box<Ltl>),
}

impl Ltl {
    /// Proposition constructor.
    #[must_use]
    pub fn prop(name: impl Into<String>) -> Self {
        Ltl::Prop(name.into())
    }

    /// Negation (collapsing double negation and constants).
    #[allow(clippy::should_implement_trait)] // deliberate builder, not `!`
    #[must_use]
    pub fn not(formula: Ltl) -> Self {
        match formula {
            Ltl::True => Ltl::False,
            Ltl::False => Ltl::True,
            Ltl::Not(inner) => *inner,
            other => Ltl::Not(Box::new(other)),
        }
    }

    /// Conjunction (flattening and simplifying constants).
    #[must_use]
    pub fn and(parts: Vec<Ltl>) -> Self {
        let mut flattened = Vec::new();
        for p in parts {
            match p {
                Ltl::True => {}
                Ltl::False => return Ltl::False,
                Ltl::And(inner) => flattened.extend(inner),
                other => flattened.push(other),
            }
        }
        flattened.sort();
        flattened.dedup();
        match flattened.len() {
            0 => Ltl::True,
            1 => flattened.into_iter().next().expect("len checked"),
            _ => Ltl::And(flattened),
        }
    }

    /// Disjunction (flattening and simplifying constants).
    #[must_use]
    pub fn or(parts: Vec<Ltl>) -> Self {
        let mut flattened = Vec::new();
        for p in parts {
            match p {
                Ltl::False => {}
                Ltl::True => return Ltl::True,
                Ltl::Or(inner) => flattened.extend(inner),
                other => flattened.push(other),
            }
        }
        flattened.sort();
        flattened.dedup();
        match flattened.len() {
            0 => Ltl::False,
            1 => flattened.into_iter().next().expect("len checked"),
            _ => Ltl::Or(flattened),
        }
    }

    /// Next.
    #[must_use]
    pub fn next(formula: Ltl) -> Self {
        Ltl::Next(Box::new(formula))
    }

    /// Until.
    #[must_use]
    pub fn until(left: Ltl, right: Ltl) -> Self {
        Ltl::Until(Box::new(left), Box::new(right))
    }

    /// Eventually.
    #[must_use]
    pub fn finally(formula: Ltl) -> Self {
        Ltl::until(Ltl::True, formula)
    }

    /// Globally.
    #[must_use]
    pub fn globally(formula: Ltl) -> Self {
        Ltl::not(Ltl::finally(Ltl::not(formula)))
    }

    /// The propositions occurring in the formula.
    #[must_use]
    pub fn propositions(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_props(&mut out);
        out
    }

    fn collect_props(&self, out: &mut BTreeSet<String>) {
        match self {
            Ltl::Prop(p) => {
                out.insert(p.clone());
            }
            Ltl::True | Ltl::False => {}
            Ltl::Not(inner) | Ltl::Next(inner) => inner.collect_props(out),
            Ltl::And(parts) | Ltl::Or(parts) => {
                for p in parts {
                    p.collect_props(out);
                }
            }
            Ltl::Until(l, r) => {
                l.collect_props(out);
                r.collect_props(out);
            }
        }
    }

    /// Connective count (a size measure).
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            Ltl::True | Ltl::False | Ltl::Prop(_) => 1,
            Ltl::Not(inner) | Ltl::Next(inner) => 1 + inner.size(),
            Ltl::And(parts) | Ltl::Or(parts) => 1 + parts.iter().map(Ltl::size).sum::<usize>(),
            Ltl::Until(l, r) => 1 + l.size() + r.size(),
        }
    }

    /// Evaluates the formula at position `position` of a finite word (each
    /// letter is the set of propositions true at that position).
    #[must_use]
    pub fn satisfied_at(&self, word: &[BTreeSet<String>], position: usize) -> bool {
        match self {
            Ltl::True => true,
            Ltl::False => false,
            Ltl::Prop(p) => position < word.len() && word[position].contains(p),
            Ltl::Not(inner) => !inner.satisfied_at(word, position),
            Ltl::And(parts) => parts.iter().all(|p| p.satisfied_at(word, position)),
            Ltl::Or(parts) => parts.iter().any(|p| p.satisfied_at(word, position)),
            Ltl::Next(inner) => position + 1 < word.len() && inner.satisfied_at(word, position + 1),
            Ltl::Until(l, r) => (position..word.len())
                .any(|j| r.satisfied_at(word, j) && (position..j).all(|k| l.satisfied_at(word, k))),
        }
    }

    /// Evaluates the formula on a word (position 0).
    #[must_use]
    pub fn satisfied_by(&self, word: &[BTreeSet<String>]) -> bool {
        self.satisfied_at(word, 0)
    }

    /// Formula progression: the obligation that must hold on the remainder of
    /// the word after reading `letter` at the current position.
    #[must_use]
    pub fn progress(&self, letter: &BTreeSet<String>) -> Ltl {
        match self {
            Ltl::True => Ltl::True,
            Ltl::False => Ltl::False,
            Ltl::Prop(p) => {
                if letter.contains(p) {
                    Ltl::True
                } else {
                    Ltl::False
                }
            }
            Ltl::Not(inner) => Ltl::not(inner.progress(letter)),
            Ltl::And(parts) => Ltl::and(parts.iter().map(|p| p.progress(letter)).collect()),
            Ltl::Or(parts) => Ltl::or(parts.iter().map(|p| p.progress(letter)).collect()),
            Ltl::Next(inner) => inner.as_ref().clone(),
            Ltl::Until(l, r) => Ltl::or(vec![
                r.progress(letter),
                Ltl::and(vec![l.progress(letter), self.clone()]),
            ]),
        }
    }

    /// Whether the formula is satisfied by the empty remainder (end of word).
    #[must_use]
    pub fn accepts_empty(&self) -> bool {
        match self {
            Ltl::True => true,
            Ltl::False | Ltl::Prop(_) | Ltl::Next(_) | Ltl::Until(..) => false,
            Ltl::Not(inner) => !inner.accepts_empty(),
            Ltl::And(parts) => parts.iter().all(Ltl::accepts_empty),
            Ltl::Or(parts) => parts.iter().any(Ltl::accepts_empty),
        }
    }
}

impl fmt::Display for Ltl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ltl::True => write!(f, "⊤"),
            Ltl::False => write!(f, "⊥"),
            Ltl::Prop(p) => write!(f, "{p}"),
            Ltl::Not(inner) => write!(f, "¬{inner}"),
            Ltl::And(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Ltl::Or(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Ltl::Next(inner) => write!(f, "X {inner}"),
            Ltl::Until(l, r) => write!(f, "({l} U {r})"),
        }
    }
}

/// Result of the finite-word satisfiability search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LtlSatResult {
    /// A satisfying word was found (as a sequence of indices into the
    /// alphabet passed to [`satisfiable_over`]).
    Satisfiable(Vec<usize>),
    /// No satisfying word exists over the given alphabet.
    Unsatisfiable,
    /// The state budget was exhausted before the search completed.
    BudgetExhausted,
}

/// Decides satisfiability of the formula over finite words whose letters are
/// drawn from the given alphabet, by breadth-first search over progressed
/// formulas (each distinct progressed formula is visited once, so the search
/// terminates whenever the closure is finite — which it is after the
/// simplifying constructors).
#[must_use]
pub fn satisfiable_over(
    formula: &Ltl,
    alphabet: &[BTreeSet<String>],
    max_states: usize,
) -> LtlSatResult {
    if formula.accepts_empty() {
        return LtlSatResult::Satisfiable(Vec::new());
    }
    let mut visited: BTreeMap<Ltl, (Option<Ltl>, usize)> = BTreeMap::new();
    let mut queue = VecDeque::new();
    visited.insert(formula.clone(), (None, usize::MAX));
    queue.push_back(formula.clone());

    while let Some(current) = queue.pop_front() {
        for (index, letter) in alphabet.iter().enumerate() {
            let next = current.progress(letter);
            if next == Ltl::False {
                continue;
            }
            if visited.contains_key(&next) {
                continue;
            }
            visited.insert(next.clone(), (Some(current.clone()), index));
            if next.accepts_empty() {
                // Reconstruct the witness word.
                let mut word = vec![index];
                let mut cursor = current.clone();
                while let Some((Some(parent), letter_index)) = visited.get(&cursor).cloned() {
                    word.push(letter_index);
                    cursor = parent;
                }
                word.reverse();
                return LtlSatResult::Satisfiable(word);
            }
            if visited.len() >= max_states {
                return LtlSatResult::BudgetExhausted;
            }
            queue.push_back(next);
        }
    }
    LtlSatResult::Unsatisfiable
}

#[cfg(test)]
mod tests {
    use super::*;

    fn letter(props: &[&str]) -> BTreeSet<String> {
        props.iter().map(|p| (*p).to_owned()).collect()
    }

    #[test]
    fn semantics_on_words() {
        let word = vec![letter(&["a"]), letter(&["b"]), letter(&["a", "b"])];
        assert!(Ltl::prop("a").satisfied_by(&word));
        assert!(!Ltl::prop("b").satisfied_by(&word));
        assert!(Ltl::next(Ltl::prop("b")).satisfied_by(&word));
        assert!(Ltl::finally(Ltl::and(vec![Ltl::prop("a"), Ltl::prop("b")])).satisfied_by(&word));
        assert!(Ltl::until(Ltl::prop("a"), Ltl::prop("b")).satisfied_by(&word));
        assert!(!Ltl::globally(Ltl::prop("a")).satisfied_by(&word));
        assert!(Ltl::globally(Ltl::or(vec![Ltl::prop("a"), Ltl::prop("b")])).satisfied_by(&word));
    }

    #[test]
    fn next_fails_at_the_last_position() {
        let word = vec![letter(&["a"])];
        assert!(!Ltl::next(Ltl::True).satisfied_by(&word));
    }

    #[test]
    fn progression_agrees_with_semantics() {
        let word = vec![letter(&["a"]), letter(&[]), letter(&["b"])];
        let formulas = vec![
            Ltl::finally(Ltl::prop("b")),
            Ltl::globally(Ltl::prop("a")),
            Ltl::until(Ltl::prop("a"), Ltl::prop("b")),
            Ltl::next(Ltl::next(Ltl::prop("b"))),
            Ltl::not(Ltl::finally(Ltl::prop("c"))),
        ];
        for f in formulas {
            let direct = f.satisfied_by(&word);
            // Progression evaluation: progress through every letter and check
            // acceptance of the empty remainder.
            let mut current = f.clone();
            for l in &word {
                current = current.progress(l);
            }
            assert_eq!(direct, current.accepts_empty(), "formula {f}");
        }
    }

    #[test]
    fn satisfiability_finds_a_witness() {
        let alphabet = vec![letter(&["a"]), letter(&["b"])];
        let f = Ltl::and(vec![Ltl::prop("a"), Ltl::finally(Ltl::prop("b"))]);
        let LtlSatResult::Satisfiable(word) = satisfiable_over(&f, &alphabet, 10_000) else {
            panic!("expected satisfiable");
        };
        // The witness word, decoded, satisfies the formula.
        let decoded: Vec<BTreeSet<String>> = word.iter().map(|&i| alphabet[i].clone()).collect();
        assert!(f.satisfied_by(&decoded));
        assert_eq!(decoded[0], letter(&["a"]));
    }

    #[test]
    fn unsatisfiable_formula_is_rejected() {
        let alphabet = vec![letter(&["a"]), letter(&["b"])];
        let f = Ltl::and(vec![
            Ltl::globally(Ltl::prop("a")),
            Ltl::finally(Ltl::prop("b")),
        ]);
        // Letters carry exactly one proposition, so G a ∧ F b is
        // unsatisfiable over this alphabet.
        assert_eq!(
            satisfiable_over(&f, &alphabet, 10_000),
            LtlSatResult::Unsatisfiable
        );
    }

    #[test]
    fn empty_word_satisfies_globally() {
        assert_eq!(
            satisfiable_over(&Ltl::globally(Ltl::prop("a")), &[], 100),
            LtlSatResult::Satisfiable(Vec::new())
        );
        assert_eq!(
            satisfiable_over(&Ltl::prop("a"), &[], 100),
            LtlSatResult::Unsatisfiable
        );
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // A formula requiring a long word (nested X) exceeds a tiny state
        // budget before a witness can be completed.
        let alphabet: Vec<BTreeSet<String>> = (0..4).map(|i| letter(&[&format!("p{i}")])).collect();
        let mut f = Ltl::prop("p0");
        for _ in 0..5 {
            f = Ltl::next(f);
        }
        assert_eq!(
            satisfiable_over(&f, &alphabet, 2),
            LtlSatResult::BudgetExhausted
        );
    }

    #[test]
    fn constructors_simplify_constants() {
        assert_eq!(Ltl::and(vec![Ltl::True, Ltl::prop("a")]), Ltl::prop("a"));
        assert_eq!(Ltl::and(vec![Ltl::False, Ltl::prop("a")]), Ltl::False);
        assert_eq!(Ltl::or(vec![Ltl::True, Ltl::prop("a")]), Ltl::True);
        assert_eq!(Ltl::not(Ltl::not(Ltl::prop("a"))), Ltl::prop("a"));
        assert_eq!(Ltl::not(Ltl::True), Ltl::False);
    }

    #[test]
    fn size_and_props() {
        let f = Ltl::until(Ltl::prop("a"), Ltl::not(Ltl::prop("b")));
        assert_eq!(f.propositions().len(), 2);
        assert_eq!(f.size(), 4);
        assert!(f.to_string().contains(" U "));
    }
}
