//! `AccLTL(L)`: linear temporal logic over access paths (Definition 2.1).
//!
//! An `AccLTL(L)` formula is built from sentences of a transition language
//! `L` (here: positive existential formulas over `SchAcc`, represented by
//! [`PosFormula`]) with the LTL constructors `¬, ∧, ∨, X, U`.  Its models are
//! finite access paths, viewed as sequences of transition structures.

use std::collections::BTreeSet;
use std::fmt;

use accltl_paths::{AccessPath, AccessSchema, Transition};
use accltl_relational::{Instance, PosFormula};

use crate::vocabulary::{self, path_structures};

/// An `AccLTL` formula.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccLtl {
    /// An atomic transition sentence (a sentence of `L` over `SchAcc`).
    Atom(PosFormula),
    /// Negation.
    Not(Box<AccLtl>),
    /// Conjunction.
    And(Vec<AccLtl>),
    /// Disjunction.
    Or(Vec<AccLtl>),
    /// "Next": the rest of the path, starting at the next transition,
    /// satisfies the formula.
    Next(Box<AccLtl>),
    /// "Until": the second formula holds at some later (or the current)
    /// transition, and the first holds at every transition before it.
    Until(Box<AccLtl>, Box<AccLtl>),
}

impl AccLtl {
    /// Atom constructor.
    #[must_use]
    pub fn atom(sentence: PosFormula) -> Self {
        AccLtl::Atom(sentence)
    }

    /// The atom that is true on every transition.
    #[must_use]
    pub fn top() -> Self {
        AccLtl::Atom(PosFormula::True)
    }

    /// The atom that is false on every transition.
    #[must_use]
    pub fn bottom() -> Self {
        AccLtl::Atom(PosFormula::False)
    }

    /// Negation constructor (collapses double negation and the constants).
    #[allow(clippy::should_implement_trait)] // deliberate builder, not `!`
    #[must_use]
    pub fn not(formula: AccLtl) -> Self {
        match formula {
            AccLtl::Not(inner) => *inner,
            AccLtl::Atom(PosFormula::True) => AccLtl::bottom(),
            AccLtl::Atom(PosFormula::False) => AccLtl::top(),
            other => AccLtl::Not(Box::new(other)),
        }
    }

    /// Conjunction constructor (flattens nested conjunctions and simplifies
    /// the constant atoms ⊤/⊥).
    #[must_use]
    pub fn and(parts: Vec<AccLtl>) -> Self {
        let mut flattened = Vec::new();
        for p in parts {
            match p {
                AccLtl::Atom(PosFormula::True) => {}
                AccLtl::Atom(PosFormula::False) => return AccLtl::bottom(),
                AccLtl::And(inner) => flattened.extend(inner),
                other => flattened.push(other),
            }
        }
        match flattened.len() {
            0 => AccLtl::top(),
            1 => flattened.into_iter().next().expect("len checked"),
            _ => AccLtl::And(flattened),
        }
    }

    /// Disjunction constructor (flattens nested disjunctions and simplifies
    /// the constant atoms ⊤/⊥).
    #[must_use]
    pub fn or(parts: Vec<AccLtl>) -> Self {
        let mut flattened = Vec::new();
        for p in parts {
            match p {
                AccLtl::Atom(PosFormula::False) => {}
                AccLtl::Atom(PosFormula::True) => return AccLtl::top(),
                AccLtl::Or(inner) => flattened.extend(inner),
                other => flattened.push(other),
            }
        }
        match flattened.len() {
            0 => AccLtl::bottom(),
            1 => flattened.into_iter().next().expect("len checked"),
            _ => AccLtl::Or(flattened),
        }
    }

    /// `X φ`.
    #[must_use]
    pub fn next(formula: AccLtl) -> Self {
        AccLtl::Next(Box::new(formula))
    }

    /// `φ U ψ`.
    #[must_use]
    pub fn until(left: AccLtl, right: AccLtl) -> Self {
        AccLtl::Until(Box::new(left), Box::new(right))
    }

    /// `F φ ≡ ⊤ U φ` ("eventually").
    #[must_use]
    pub fn finally(formula: AccLtl) -> Self {
        AccLtl::until(AccLtl::top(), formula)
    }

    /// `G φ ≡ ¬F¬φ` ("globally").
    #[must_use]
    pub fn globally(formula: AccLtl) -> Self {
        AccLtl::not(AccLtl::finally(AccLtl::not(formula)))
    }

    /// `φ → ψ ≡ ¬φ ∨ ψ`.
    #[must_use]
    pub fn implies(antecedent: AccLtl, consequent: AccLtl) -> Self {
        AccLtl::or(vec![AccLtl::not(antecedent), consequent])
    }

    /// The number of atoms and temporal/boolean connectives (a size measure).
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            AccLtl::Atom(sentence) => sentence.size().max(1),
            AccLtl::Not(inner) | AccLtl::Next(inner) => 1 + inner.size(),
            AccLtl::And(parts) | AccLtl::Or(parts) => {
                1 + parts.iter().map(AccLtl::size).sum::<usize>()
            }
            AccLtl::Until(l, r) => 1 + l.size() + r.size(),
        }
    }

    /// The nesting depth of `X` operators (the only temporal operator of the
    /// `AccLTL(X)` fragment); an upper bound on the path length that fragment
    /// can inspect.
    #[must_use]
    pub fn x_depth(&self) -> usize {
        match self {
            AccLtl::Atom(_) => 0,
            AccLtl::Not(inner) => inner.x_depth(),
            AccLtl::Next(inner) => 1 + inner.x_depth(),
            AccLtl::And(parts) | AccLtl::Or(parts) => {
                parts.iter().map(AccLtl::x_depth).max().unwrap_or(0)
            }
            AccLtl::Until(l, r) => l.x_depth().max(r.x_depth()),
        }
    }

    /// True if the formula uses only the `X` temporal operator (no `U`), i.e.
    /// belongs to the `AccLTL(X)` fragment.
    #[must_use]
    pub fn is_x_only(&self) -> bool {
        match self {
            AccLtl::Atom(_) => true,
            AccLtl::Not(inner) | AccLtl::Next(inner) => inner.is_x_only(),
            AccLtl::And(parts) | AccLtl::Or(parts) => parts.iter().all(AccLtl::is_x_only),
            AccLtl::Until(..) => false,
        }
    }

    /// All atomic transition sentences occurring in the formula.
    #[must_use]
    pub fn atom_sentences(&self) -> BTreeSet<PosFormula> {
        let mut out = BTreeSet::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms(&self, out: &mut BTreeSet<PosFormula>) {
        match self {
            AccLtl::Atom(sentence) => {
                out.insert(sentence.clone());
            }
            AccLtl::Not(inner) | AccLtl::Next(inner) => inner.collect_atoms(out),
            AccLtl::And(parts) | AccLtl::Or(parts) => {
                for p in parts {
                    p.collect_atoms(out);
                }
            }
            AccLtl::Until(l, r) => {
                l.collect_atoms(out);
                r.collect_atoms(out);
            }
        }
    }

    /// The atomic transition sentences together with the polarity (even/odd
    /// number of enclosing negations) at which they occur.  Used by the
    /// binding-positivity check of Definition 4.1.
    #[must_use]
    pub fn atoms_with_polarity(&self) -> Vec<(PosFormula, bool)> {
        let mut out = Vec::new();
        self.collect_polarity(true, &mut out);
        out
    }

    fn collect_polarity(&self, positive: bool, out: &mut Vec<(PosFormula, bool)>) {
        match self {
            AccLtl::Atom(sentence) => out.push((sentence.clone(), positive)),
            AccLtl::Not(inner) => inner.collect_polarity(!positive, out),
            AccLtl::Next(inner) => inner.collect_polarity(positive, out),
            AccLtl::And(parts) | AccLtl::Or(parts) => {
                for p in parts {
                    p.collect_polarity(positive, out);
                }
            }
            AccLtl::Until(l, r) => {
                l.collect_polarity(positive, out);
                r.collect_polarity(positive, out);
            }
        }
    }

    /// Evaluates the formula at position `position` (0-based) of the sequence
    /// of transition structures (Definition 2.1's semantics, over finite
    /// paths).
    #[must_use]
    pub fn satisfied_at(&self, structures: &[Instance], position: usize) -> bool {
        match self {
            AccLtl::Atom(sentence) => {
                position < structures.len() && sentence.holds(&structures[position])
            }
            AccLtl::Not(inner) => !inner.satisfied_at(structures, position),
            AccLtl::And(parts) => parts.iter().all(|p| p.satisfied_at(structures, position)),
            AccLtl::Or(parts) => parts.iter().any(|p| p.satisfied_at(structures, position)),
            AccLtl::Next(inner) => {
                position + 1 < structures.len() && inner.satisfied_at(structures, position + 1)
            }
            AccLtl::Until(left, right) => (position..structures.len()).any(|j| {
                right.satisfied_at(structures, j)
                    && (position..j).all(|k| left.satisfied_at(structures, k))
            }),
        }
    }

    /// Evaluates the formula on a sequence of transitions (position 1 of the
    /// path, i.e. index 0).
    #[must_use]
    pub fn satisfied_by_transitions(&self, transitions: &[Transition], zero_ary: bool) -> bool {
        let structures = path_structures(transitions, zero_ary);
        self.satisfied_at(&structures, 0)
    }

    /// Evaluates the formula on an access path over an initial instance.
    ///
    /// `zero_ary` selects the `Sch0−Acc` interpretation of the `IsBind`
    /// predicates (Section 4.2).
    pub fn holds_on_path(
        &self,
        path: &AccessPath,
        schema: &AccessSchema,
        initial: &Instance,
        zero_ary: bool,
    ) -> accltl_paths::Result<bool> {
        let transitions = path.transitions(schema, initial)?;
        Ok(self.satisfied_by_transitions(&transitions, zero_ary))
    }

    /// True if every `IsBind` atom (of positive arity or not) occurs under an
    /// even number of negations: the *binding-positive* condition defining
    /// `AccLTL+` (Definition 4.1).
    #[must_use]
    pub fn is_binding_positive(&self) -> bool {
        self.atoms_with_polarity()
            .iter()
            .all(|(sentence, positive)| *positive || !vocabulary::mentions_isbind(sentence))
    }
}

impl fmt::Display for AccLtl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccLtl::Atom(sentence) => write!(f, "[{sentence}]"),
            AccLtl::Not(inner) => write!(f, "¬{inner}"),
            AccLtl::And(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            AccLtl::Or(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            AccLtl::Next(inner) => write!(f, "X {inner}"),
            AccLtl::Until(l, r) => write!(f, "({l} U {r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocabulary::{isbind_atom, isbind_prop, post_atom, pre_atom};
    use accltl_paths::access::phone_directory_access_schema;
    use accltl_paths::path::response;
    use accltl_paths::Access;
    use accltl_relational::{tuple, Term};

    fn mobile_pre_nonempty() -> PosFormula {
        PosFormula::exists(
            vec!["n", "p", "s", "ph"],
            pre_atom(
                "Mobile#",
                vec![
                    Term::var("n"),
                    Term::var("p"),
                    Term::var("s"),
                    Term::var("ph"),
                ],
            ),
        )
    }

    fn address_post_has_jones() -> PosFormula {
        PosFormula::exists(
            vec!["s", "p", "h"],
            post_atom(
                "Address",
                vec![
                    Term::var("s"),
                    Term::var("p"),
                    Term::constant("Jones"),
                    Term::var("h"),
                ],
            ),
        )
    }

    fn figure1_path() -> AccessPath {
        AccessPath::new()
            .with_step(
                Access::new("AcM1", tuple!["Smith"]),
                response([tuple!["Smith", "OX13QD", "Parks Rd", 5551212]]),
            )
            .with_step(
                Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]),
                response([
                    tuple!["Parks Rd", "OX13QD", "Smith", 13],
                    tuple!["Parks Rd", "OX13QD", "Jones", 16],
                ]),
            )
    }

    #[test]
    fn constructors_simplify() {
        assert_eq!(AccLtl::and(vec![]), AccLtl::top());
        assert_eq!(AccLtl::or(vec![]), AccLtl::bottom());
        assert_eq!(AccLtl::not(AccLtl::not(AccLtl::top())), AccLtl::top());
        let a = AccLtl::atom(mobile_pre_nonempty());
        assert_eq!(AccLtl::and(vec![a.clone()]), a);
    }

    #[test]
    fn eventually_formula_holds_on_figure1_path() {
        let schema = phone_directory_access_schema();
        // F [Address^post contains a Jones tuple].
        let f = AccLtl::finally(AccLtl::atom(address_post_has_jones()));
        assert!(f
            .holds_on_path(&figure1_path(), &schema, &Instance::new(), false)
            .unwrap());
        // It does not hold at the first transition alone.
        let first_only = figure1_path().prefix(1);
        assert!(!f
            .holds_on_path(&first_only, &schema, &Instance::new(), false)
            .unwrap());
    }

    #[test]
    fn until_semantics_follow_the_paper_example() {
        let schema = phone_directory_access_schema();
        // (¬∃ Mobile#^pre) U (IsBind_AcM2 with a street already in Mobile#^pre):
        // "nothing was known from Mobile# until an AcM2 access was made whose
        // street binding already appeared in the Mobile# table".
        let no_mobile_pre = AccLtl::not(AccLtl::atom(mobile_pre_nonempty()));
        let acm2_uses_known_street = AccLtl::atom(PosFormula::exists(
            vec!["s", "p"],
            PosFormula::and(vec![
                isbind_atom("AcM2", vec![Term::var("s"), Term::var("p")]),
                PosFormula::exists(
                    vec!["n", "pc", "ph"],
                    pre_atom(
                        "Mobile#",
                        vec![
                            Term::var("n"),
                            Term::var("pc"),
                            Term::var("s"),
                            Term::var("ph"),
                        ],
                    ),
                ),
            ]),
        ));
        let f = AccLtl::until(no_mobile_pre, acm2_uses_known_street);
        // On the Figure 1 path: the first transition has empty Mobile#^pre, and
        // the second transition's AcM2 binding uses "Parks Rd" which appears in
        // Mobile#^pre — so the Until holds.
        assert!(f
            .holds_on_path(&figure1_path(), &schema, &Instance::new(), false)
            .unwrap());

        // Swap the order of the steps: now the AcM2 access happens while
        // Mobile#^pre is still empty, so the right-hand side never holds.
        let swapped = AccessPath::new()
            .with_step(
                Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]),
                response([tuple!["Parks Rd", "OX13QD", "Jones", 16]]),
            )
            .with_step(
                Access::new("AcM1", tuple!["Smith"]),
                response([tuple!["Smith", "OX13QD", "Parks Rd", 5551212]]),
            );
        assert!(!f
            .holds_on_path(&swapped, &schema, &Instance::new(), false)
            .unwrap());
    }

    #[test]
    fn next_requires_a_successor_transition() {
        let schema = phone_directory_access_schema();
        let f = AccLtl::next(AccLtl::atom(address_post_has_jones()));
        assert!(f
            .holds_on_path(&figure1_path(), &schema, &Instance::new(), false)
            .unwrap());
        assert!(!f
            .holds_on_path(&figure1_path().prefix(1), &schema, &Instance::new(), false)
            .unwrap());
    }

    #[test]
    fn globally_and_empty_path_semantics() {
        let schema = phone_directory_access_schema();
        let g = AccLtl::globally(AccLtl::atom(PosFormula::True));
        assert!(g
            .holds_on_path(&AccessPath::new(), &schema, &Instance::new(), false)
            .unwrap());
        // An atom is not satisfied on the empty path (there is no transition).
        let a = AccLtl::atom(PosFormula::True);
        assert!(!a
            .holds_on_path(&AccessPath::new(), &schema, &Instance::new(), false)
            .unwrap());
    }

    #[test]
    fn zero_ary_interpretation_sees_the_method_but_not_the_binding() {
        let schema = phone_directory_access_schema();
        let used_acm1 = AccLtl::finally(AccLtl::atom(isbind_prop("AcM1")));
        assert!(used_acm1
            .holds_on_path(&figure1_path(), &schema, &Instance::new(), true)
            .unwrap());
        let used_acm1_nary = AccLtl::finally(AccLtl::atom(PosFormula::exists(
            vec!["n"],
            isbind_atom("AcM1", vec![Term::var("n")]),
        )));
        // Under the 0-ary interpretation the n-ary IsBind atom never matches.
        assert!(!used_acm1_nary
            .holds_on_path(&figure1_path(), &schema, &Instance::new(), true)
            .unwrap());
        // Under the full interpretation it does.
        assert!(used_acm1_nary
            .holds_on_path(&figure1_path(), &schema, &Instance::new(), false)
            .unwrap());
    }

    #[test]
    fn binding_positivity_is_detected() {
        let positive = AccLtl::finally(AccLtl::atom(PosFormula::exists(
            vec!["n"],
            isbind_atom("AcM1", vec![Term::var("n")]),
        )));
        assert!(positive.is_binding_positive());

        let negative = AccLtl::globally(AccLtl::not(AccLtl::atom(PosFormula::exists(
            vec!["n"],
            isbind_atom("AcM1", vec![Term::var("n")]),
        ))));
        assert!(!negative.is_binding_positive());

        // Negating a pure data sentence is fine.
        let negated_data = AccLtl::not(AccLtl::atom(mobile_pre_nonempty()));
        assert!(negated_data.is_binding_positive());

        // G is a double negation, so IsBind under G is still positive.
        let under_g = AccLtl::globally(AccLtl::atom(isbind_prop("AcM1")));
        assert!(under_g.is_binding_positive());
    }

    #[test]
    fn size_depth_and_fragment_helpers() {
        let f = AccLtl::next(AccLtl::and(vec![
            AccLtl::atom(mobile_pre_nonempty()),
            AccLtl::next(AccLtl::atom(address_post_has_jones())),
        ]));
        assert!(f.is_x_only());
        assert_eq!(f.x_depth(), 2);
        assert!(f.size() > 3);
        let u = AccLtl::until(AccLtl::top(), AccLtl::atom(mobile_pre_nonempty()));
        assert!(!u.is_x_only());
        assert_eq!(u.atom_sentences().len(), 2);
    }

    #[test]
    fn display_is_readable() {
        let f = AccLtl::until(
            AccLtl::not(AccLtl::atom(mobile_pre_nonempty())),
            AccLtl::atom(isbind_prop("AcM1")),
        );
        let s = f.to_string();
        assert!(s.contains(" U "));
        assert!(s.contains("¬"));
    }
}
