//! The fragment lattice of Figure 2 and Table 1.
//!
//! The paper studies a family of languages ordered by expressiveness:
//!
//! ```text
//! AccLTL(X)(FO∃+0−Acc) ⊆ AccLTL(FO∃+0−Acc) ⊆ AccLTL+ ⊆ AccLTL(FO∃+Acc)
//!                          AccLTL(FO∃+0−Acc) ⊆ AccLTL(FO∃+,≠0−Acc)
//!                          AccLTL+            ⊆ A-automata (up to emptiness)
//!                          AccLTL(FO∃+Acc)    ⊆ AccLTL(FO∃+,≠Acc)
//! ```
//!
//! This module classifies a formula into the smallest fragment that contains
//! it, reports the syntactic traits that matter (binding positivity, 0-ary
//! `IsBind` atoms, inequalities, X-only temporal operators), and provides the
//! explicit conversion used in the paper's Figure 2 discussion: lifting a
//! 0-ary `IsBind` formula into the binding-positive language `AccLTL+`.

use std::fmt;

use accltl_paths::AccessSchema;
use accltl_relational::{PosFormula, Term};

use crate::accltl::AccLtl;
use crate::vocabulary::{self, isbind_atom};

/// The syntactic traits of an `AccLTL` formula that determine its fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FormulaTraits {
    /// Every `IsBind` atom occurs under an even number of negations.
    pub binding_positive: bool,
    /// Every `IsBind` atom is 0-ary (mentions the method, not the binding).
    pub zero_ary_isbind: bool,
    /// Some transition sentence uses an inequality.
    pub uses_inequalities: bool,
    /// Only the `X` temporal operator is used (no `U`).
    pub x_only: bool,
    /// The formula mentions `IsBind` at all.
    pub mentions_isbind: bool,
}

/// The language fragments of Table 1 (linear-time rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Fragment {
    /// `AccLTL(X)(FO∃+,≠0−Acc)` — X-only, 0-ary `IsBind`, inequalities allowed.
    /// Satisfiability is ΣP2-complete (Theorems 4.14, 5.1).
    XZeroAry,
    /// `AccLTL(FO∃+0−Acc)` — 0-ary `IsBind`, no inequalities.
    /// Satisfiability is PSPACE-complete (Theorem 4.12).
    ZeroAry,
    /// `AccLTL(FO∃+,≠0−Acc)` — 0-ary `IsBind` with inequalities.
    /// Satisfiability is PSPACE-complete (Theorem 5.1).
    ZeroAryWithInequalities,
    /// `AccLTL+` — binding-positive `AccLTL(FO∃+Acc)`.
    /// Satisfiability is decidable in 3EXPTIME and 2EXPTIME-hard
    /// (Theorems 4.2, 4.7).
    BindingPositive,
    /// `AccLTL(FO∃+Acc)` — full binding predicates, no positivity restriction.
    /// Satisfiability is undecidable (Theorem 3.1).
    Full,
    /// `AccLTL(FO∃+,≠Acc)` — full binding predicates with inequalities.
    /// Satisfiability is undecidable even for binding-positive formulas
    /// (Theorem 5.2).
    FullWithInequalities,
}

impl Fragment {
    /// True if satisfiability for this fragment is decidable.
    #[must_use]
    pub fn is_decidable(&self) -> bool {
        !matches!(self, Fragment::Full | Fragment::FullWithInequalities)
    }

    /// The paper's complexity statement for the fragment's satisfiability
    /// problem (Table 1).
    #[must_use]
    pub fn complexity(&self) -> &'static str {
        match self {
            Fragment::XZeroAry => "ΣP2-complete",
            Fragment::ZeroAry | Fragment::ZeroAryWithInequalities => "PSPACE-complete",
            Fragment::BindingPositive => "in 3EXPTIME (2EXPTIME-hard)",
            Fragment::Full | Fragment::FullWithInequalities => "undecidable",
        }
    }

    /// The fragments that syntactically include this one (the edges of
    /// Figure 2 reachable from it), excluding itself.
    #[must_use]
    pub fn included_in(&self) -> Vec<Fragment> {
        match self {
            Fragment::XZeroAry => vec![
                Fragment::ZeroAryWithInequalities,
                Fragment::ZeroAry,
                Fragment::BindingPositive,
                Fragment::Full,
                Fragment::FullWithInequalities,
            ],
            Fragment::ZeroAry => vec![
                Fragment::ZeroAryWithInequalities,
                Fragment::BindingPositive,
                Fragment::Full,
                Fragment::FullWithInequalities,
            ],
            Fragment::ZeroAryWithInequalities => vec![Fragment::FullWithInequalities],
            Fragment::BindingPositive => vec![Fragment::Full, Fragment::FullWithInequalities],
            Fragment::Full => vec![Fragment::FullWithInequalities],
            Fragment::FullWithInequalities => vec![],
        }
    }

    /// Table 1's expressiveness columns for the fragment: can it express
    /// relevance under disjointness constraints (DjC), functional
    /// dependencies (FD), dataflow restrictions (DF) and access-order
    /// restrictions (AccOr)?
    #[must_use]
    pub fn expressiveness(&self) -> ExpressivenessRow {
        match self {
            Fragment::FullWithInequalities => ExpressivenessRow {
                disjointness: true,
                functional_dependencies: true,
                dataflow: true,
                access_order: true,
            },
            Fragment::Full | Fragment::BindingPositive => ExpressivenessRow {
                disjointness: true,
                functional_dependencies: false,
                dataflow: true,
                access_order: true,
            },
            Fragment::ZeroAry => ExpressivenessRow {
                disjointness: true,
                functional_dependencies: false,
                dataflow: false,
                access_order: true,
            },
            Fragment::ZeroAryWithInequalities => ExpressivenessRow {
                disjointness: true,
                functional_dependencies: true,
                dataflow: false,
                access_order: true,
            },
            Fragment::XZeroAry => ExpressivenessRow {
                disjointness: true,
                functional_dependencies: true,
                dataflow: false,
                access_order: false,
            },
        }
    }
}

impl fmt::Display for Fragment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Fragment::XZeroAry => "AccLTL(X)(FO∃+,≠0−Acc)",
            Fragment::ZeroAry => "AccLTL(FO∃+0−Acc)",
            Fragment::ZeroAryWithInequalities => "AccLTL(FO∃+,≠0−Acc)",
            Fragment::BindingPositive => "AccLTL+",
            Fragment::Full => "AccLTL(FO∃+Acc)",
            Fragment::FullWithInequalities => "AccLTL(FO∃+,≠Acc)",
        };
        write!(f, "{name}")
    }
}

/// One row of Table 1's application-example columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpressivenessRow {
    /// Relevance in the presence of disjointness constraints.
    pub disjointness: bool,
    /// Functional dependencies.
    pub functional_dependencies: bool,
    /// Dataflow restrictions (e.g. groundedness).
    pub dataflow: bool,
    /// Access-order restrictions.
    pub access_order: bool,
}

/// Computes the syntactic traits of a formula.
#[must_use]
pub fn traits_of(formula: &AccLtl) -> FormulaTraits {
    let sentences = formula.atom_sentences();
    FormulaTraits {
        binding_positive: formula.is_binding_positive(),
        zero_ary_isbind: sentences.iter().all(vocabulary::isbind_atoms_are_zero_ary),
        uses_inequalities: sentences.iter().any(PosFormula::has_inequalities),
        x_only: formula.is_x_only(),
        mentions_isbind: sentences.iter().any(vocabulary::mentions_isbind),
    }
}

/// Classifies a formula into the most specific fragment of Table 1 that
/// contains it.
#[must_use]
pub fn classify(formula: &AccLtl) -> Fragment {
    let traits = traits_of(formula);
    if traits.zero_ary_isbind {
        if traits.x_only {
            return Fragment::XZeroAry;
        }
        return if traits.uses_inequalities {
            Fragment::ZeroAryWithInequalities
        } else {
            Fragment::ZeroAry
        };
    }
    if traits.uses_inequalities {
        return Fragment::FullWithInequalities;
    }
    if traits.binding_positive {
        Fragment::BindingPositive
    } else {
        Fragment::Full
    }
}

/// True if the formula belongs to the given fragment (not necessarily the
/// most specific one).
#[must_use]
pub fn belongs_to(formula: &AccLtl, fragment: Fragment) -> bool {
    let most_specific = classify(formula);
    most_specific == fragment || most_specific.included_in().contains(&fragment)
}

/// Lifts a formula of `AccLTL(FO∃+0−Acc)` into `AccLTL+` over the given
/// schema, following the construction sketched in the paper's conclusion:
///
/// * negations are pushed through the boolean connectives (De Morgan), and a
///   directly negated standalone 0-ary `IsBind_AcM` proposition occurring at
///   positive polarity is rewritten into the disjunction of the *other*
///   methods' propositions (each transition performs exactly one access),
///   eliminating the negative occurrence;
/// * every remaining 0-ary `IsBind_AcM` proposition is replaced by the
///   existentially quantified n-ary atom `∃x̄ IsBind_AcM(x̄)`.
///
/// The rewriting preserves the set of satisfying *non-empty* access paths (on
/// the empty path a negated atom is vacuously true while the disjunction of
/// the other methods is not); this is checked empirically by the Figure 2
/// harness (`fig2_inclusions`).  Negations that guard temporal operators
/// (e.g. `G`) are left in place — that is sound because an `IsBind` atom
/// beneath such a guard sits under an *even* number of negations whenever the
/// input formula was expressible in the fragment the conversion targets; the
/// caller can verify the result with [`AccLtl::is_binding_positive`].
#[must_use]
pub fn lift_zero_ary_to_binding_positive(formula: &AccLtl, schema: &AccessSchema) -> AccLtl {
    let rewritten = rewrite_negated_isbind(formula, schema, true);
    replace_zero_ary_atoms(&rewritten, schema)
}

/// Rewrites standalone 0-ary `IsBind` atoms that occur at *negative* polarity
/// into the doubly negated disjunction of the other methods' propositions,
/// using the "exactly one access per transition" law
/// (`IsBind_AcM ≡ ¬⋁_{AcM'≠AcM} IsBind_AcM'` on every transition): the
/// rewritten atom then sits under an even number of negations.
fn rewrite_negated_isbind(formula: &AccLtl, schema: &AccessSchema, positive: bool) -> AccLtl {
    match formula {
        AccLtl::Atom(sentence) => {
            if !positive {
                if let Some(method) = standalone_isbind_method(sentence) {
                    let others: Vec<AccLtl> = schema
                        .methods()
                        .filter(|m| m.name() != method)
                        .map(|m| AccLtl::atom(vocabulary::isbind_prop(m.name())))
                        .collect();
                    return AccLtl::Not(Box::new(AccLtl::or(others)));
                }
            }
            AccLtl::Atom(sentence.clone())
        }
        AccLtl::Not(inner) => AccLtl::not(rewrite_negated_isbind(inner, schema, !positive)),
        AccLtl::And(parts) => AccLtl::and(
            parts
                .iter()
                .map(|p| rewrite_negated_isbind(p, schema, positive))
                .collect(),
        ),
        AccLtl::Or(parts) => AccLtl::or(
            parts
                .iter()
                .map(|p| rewrite_negated_isbind(p, schema, positive))
                .collect(),
        ),
        AccLtl::Next(inner) => AccLtl::next(rewrite_negated_isbind(inner, schema, positive)),
        AccLtl::Until(l, r) => AccLtl::until(
            rewrite_negated_isbind(l, schema, positive),
            rewrite_negated_isbind(r, schema, positive),
        ),
    }
}

/// If the sentence is exactly a standalone 0-ary `IsBind_AcM` atom, returns
/// the method name.
fn standalone_isbind_method(sentence: &PosFormula) -> Option<String> {
    match sentence {
        PosFormula::Atom(a) if a.terms.is_empty() => {
            vocabulary::parse_isbind(a.predicate.as_str()).map(str::to_owned)
        }
        _ => None,
    }
}

/// Replaces 0-ary `IsBind_AcM` atoms by `∃x̄ IsBind_AcM(x̄)` inside every
/// transition sentence.
fn replace_zero_ary_atoms(formula: &AccLtl, schema: &AccessSchema) -> AccLtl {
    match formula {
        AccLtl::Atom(sentence) => AccLtl::Atom(expand_sentence(sentence, schema)),
        AccLtl::Not(inner) => AccLtl::not(replace_zero_ary_atoms(inner, schema)),
        AccLtl::And(parts) => AccLtl::and(
            parts
                .iter()
                .map(|p| replace_zero_ary_atoms(p, schema))
                .collect(),
        ),
        AccLtl::Or(parts) => AccLtl::or(
            parts
                .iter()
                .map(|p| replace_zero_ary_atoms(p, schema))
                .collect(),
        ),
        AccLtl::Next(inner) => AccLtl::next(replace_zero_ary_atoms(inner, schema)),
        AccLtl::Until(l, r) => AccLtl::until(
            replace_zero_ary_atoms(l, schema),
            replace_zero_ary_atoms(r, schema),
        ),
    }
}

fn expand_sentence(sentence: &PosFormula, schema: &AccessSchema) -> PosFormula {
    match sentence {
        PosFormula::Atom(a) if a.terms.is_empty() => {
            if let Some(method_name) = vocabulary::parse_isbind(a.predicate.as_str()) {
                let arity = schema
                    .method(method_name)
                    .map(|m| m.input_arity())
                    .unwrap_or(0);
                if arity == 0 {
                    return sentence.clone();
                }
                let vars: Vec<String> = (0..arity).map(|i| format!("b\u{00df}{i}")).collect();
                let terms: Vec<Term> = vars.iter().map(Term::var).collect();
                return PosFormula::exists(vars, isbind_atom(method_name, terms));
            }
            sentence.clone()
        }
        PosFormula::Atom(_)
        | PosFormula::Eq(..)
        | PosFormula::Neq(..)
        | PosFormula::True
        | PosFormula::False => sentence.clone(),
        PosFormula::And(ps) => {
            PosFormula::and(ps.iter().map(|p| expand_sentence(p, schema)).collect())
        }
        PosFormula::Or(ps) => {
            PosFormula::or(ps.iter().map(|p| expand_sentence(p, schema)).collect())
        }
        PosFormula::Exists(vars, body) => {
            PosFormula::exists(vars.clone(), expand_sentence(body, schema))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocabulary::{isbind_prop, pre_atom};
    use accltl_paths::access::phone_directory_access_schema;
    use accltl_paths::path::response;
    use accltl_paths::{Access, AccessPath};
    use accltl_relational::{tuple, Instance};

    fn data_sentence() -> PosFormula {
        PosFormula::exists(
            vec!["n", "p", "s", "ph"],
            pre_atom(
                "Mobile#",
                vec![
                    Term::var("n"),
                    Term::var("p"),
                    Term::var("s"),
                    Term::var("ph"),
                ],
            ),
        )
    }

    #[test]
    fn classification_matches_table1_rows() {
        // X-only, 0-ary IsBind.
        let x_zero = AccLtl::next(AccLtl::atom(isbind_prop("AcM1")));
        assert_eq!(classify(&x_zero), Fragment::XZeroAry);

        // 0-ary IsBind with Until.
        let zero = AccLtl::until(AccLtl::top(), AccLtl::atom(isbind_prop("AcM1")));
        assert_eq!(classify(&zero), Fragment::ZeroAry);

        // 0-ary with an inequality.
        let zero_neq = AccLtl::finally(AccLtl::atom(PosFormula::and(vec![
            isbind_prop("AcM1"),
            PosFormula::Neq(Term::var("x"), Term::var("y")),
        ])));
        assert_eq!(classify(&zero_neq), Fragment::ZeroAryWithInequalities);

        // Binding-positive with n-ary IsBind.
        let positive = AccLtl::finally(AccLtl::atom(PosFormula::exists(
            vec!["n"],
            isbind_atom("AcM1", vec![Term::var("n")]),
        )));
        assert_eq!(classify(&positive), Fragment::BindingPositive);

        // Negated n-ary IsBind: the full, undecidable language.
        let full = AccLtl::globally(AccLtl::not(AccLtl::atom(PosFormula::exists(
            vec!["n"],
            isbind_atom("AcM1", vec![Term::var("n")]),
        ))));
        assert_eq!(classify(&full), Fragment::Full);

        // ... and with inequalities.
        let full_neq = AccLtl::and(vec![
            full.clone(),
            AccLtl::atom(PosFormula::Neq(Term::var("x"), Term::var("y"))),
        ]);
        assert_eq!(classify(&full_neq), Fragment::FullWithInequalities);
    }

    #[test]
    fn pure_data_formulas_are_zero_ary() {
        // A formula that never mentions IsBind lies in the 0-ary fragment.
        let f = AccLtl::globally(AccLtl::not(AccLtl::atom(data_sentence())));
        assert_eq!(classify(&f), Fragment::ZeroAry);
        assert!(belongs_to(&f, Fragment::BindingPositive));
        assert!(belongs_to(&f, Fragment::Full));
        assert!(!belongs_to(&f, Fragment::XZeroAry));
    }

    #[test]
    fn decidability_and_complexity_labels() {
        assert!(Fragment::ZeroAry.is_decidable());
        assert!(Fragment::BindingPositive.is_decidable());
        assert!(!Fragment::Full.is_decidable());
        assert!(!Fragment::FullWithInequalities.is_decidable());
        assert_eq!(Fragment::XZeroAry.complexity(), "ΣP2-complete");
        assert!(Fragment::BindingPositive.complexity().contains("3EXPTIME"));
    }

    #[test]
    fn inclusion_edges_match_figure2() {
        assert!(Fragment::XZeroAry
            .included_in()
            .contains(&Fragment::ZeroAry));
        assert!(Fragment::ZeroAry
            .included_in()
            .contains(&Fragment::BindingPositive));
        assert!(Fragment::BindingPositive
            .included_in()
            .contains(&Fragment::Full));
        assert!(Fragment::ZeroAry
            .included_in()
            .contains(&Fragment::ZeroAryWithInequalities));
        // Inequalities over 0-ary do not embed into the (equality-free) full
        // positive language.
        assert!(!Fragment::ZeroAryWithInequalities
            .included_in()
            .contains(&Fragment::Full));
    }

    #[test]
    fn expressiveness_matrix_matches_table1() {
        let plus = Fragment::BindingPositive.expressiveness();
        assert!(plus.disjointness && plus.dataflow && plus.access_order);
        assert!(!plus.functional_dependencies);

        let zero = Fragment::ZeroAry.expressiveness();
        assert!(zero.disjointness && zero.access_order);
        assert!(!zero.dataflow && !zero.functional_dependencies);

        let zero_neq = Fragment::ZeroAryWithInequalities.expressiveness();
        assert!(zero_neq.functional_dependencies);
        assert!(!zero_neq.dataflow);

        let x = Fragment::XZeroAry.expressiveness();
        assert!(!x.access_order);

        let full_neq = Fragment::FullWithInequalities.expressiveness();
        assert!(
            full_neq.disjointness
                && full_neq.functional_dependencies
                && full_neq.dataflow
                && full_neq.access_order
        );
    }

    #[test]
    fn lifting_preserves_satisfaction_on_sample_paths() {
        let schema = phone_directory_access_schema();
        // "Some access is made with AcM2 before any access with AcM1":
        // ¬IsBind_AcM1 U IsBind_AcM2, a 0-ary formula with a negated IsBind.
        let f = AccLtl::until(
            AccLtl::not(AccLtl::atom(isbind_prop("AcM1"))),
            AccLtl::atom(isbind_prop("AcM2")),
        );
        assert_eq!(classify(&f), Fragment::ZeroAry);
        let lifted = lift_zero_ary_to_binding_positive(&f, &schema);
        assert!(lifted.is_binding_positive());
        assert_eq!(classify(&lifted), Fragment::BindingPositive);

        let acm1 = Access::new("AcM1", tuple!["Smith"]);
        let acm2 = Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]);
        let paths = [
            AccessPath::new().with_step(acm2.clone(), response([])),
            AccessPath::new().with_step(acm1.clone(), response([])),
            AccessPath::new()
                .with_step(acm2.clone(), response([]))
                .with_step(acm1.clone(), response([])),
            AccessPath::new()
                .with_step(acm1, response([]))
                .with_step(acm2, response([])),
        ];
        for path in &paths {
            let original = f
                .holds_on_path(path, &schema, &Instance::new(), true)
                .unwrap();
            let lifted_result = lifted
                .holds_on_path(path, &schema, &Instance::new(), false)
                .unwrap();
            assert_eq!(original, lifted_result, "path: {path}");
        }
    }

    #[test]
    fn fragment_display_names() {
        assert_eq!(Fragment::BindingPositive.to_string(), "AccLTL+");
        assert!(Fragment::ZeroAry.to_string().contains("0−Acc"));
    }
}
