//! # accltl-logic
//!
//! The paper's specification languages over access paths and their decision
//! procedures:
//!
//! * the transition vocabulary `SchAcc` (pre/post copies of every relation
//!   plus `IsBind` predicates) and the relational structure associated with a
//!   transition ([`vocabulary`]);
//! * `AccLTL(L)` — LTL whose atoms are positive existential sentences over
//!   `SchAcc` — with finite-path semantics ([`accltl`]);
//! * the fragment lattice of Figure 2: binding-positive `AccLTL+`, the 0-ary
//!   `IsBind` fragment `AccLTL(FO∃+0−Acc)`, the X-only fragment, and the
//!   inequality extensions ([`fragment`]);
//! * propositional LTL over finite words, the target of the Theorem 4.12
//!   reduction ([`ltl`]);
//! * the Boundedness-Lemma fact universe and the bounded path-search engine
//!   shared by the decision procedures ([`bounded`]);
//! * the satisfiability procedures for the decidable fragments and the
//!   bounded procedures for the undecidable ones ([`solver`]);
//! * builders for the paper's application properties: containment under
//!   access patterns, long-term relevance, groundedness, data-integrity,
//!   access-order and dataflow restrictions ([`properties`]);
//! * the one-step branching logic `CTL_EX` of Section 5.2 ([`ctl`]);
//! * executable versions of the undecidability gadgets of Theorems 3.1 and
//!   5.2 ([`undecidability`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accltl;
pub mod bounded;
pub mod ctl;
pub mod fragment;
pub mod ltl;
pub mod properties;
pub mod solver;
pub mod undecidability;
pub mod vocabulary;

pub use accltl::AccLtl;
pub use bounded::{
    BoundedSearchConfig, BoundedSearcher, MonitorSession, SatOutcome, SessionReport,
};
pub use fragment::{classify, FormulaTraits, Fragment};
pub use ltl::Ltl;
pub use solver::{
    sat_binding_positive_bounded, sat_full_bounded, sat_x_fragment, sat_zero_fragment,
};
pub use vocabulary::{isbind_name, post_name, pre_name, transition_structure};
