//! The bounded-universe path-search engine behind the decision procedures.
//!
//! The Boundedness Lemma (Lemma 4.13) shows that a satisfiable
//! `AccLTL(FO∃+0−Acc)` formula has a witness path whose instances contain
//! only homomorphic images of the formula's positive sentences, and whose
//! binding set is polynomial.  The paper then *guesses* such a sequence and
//! verifies it through a propositional LTL abstraction.  This module replaces
//! the guess by a deterministic, memoised search over exactly that witness
//! space:
//!
//! * the **fact universe** is the union of the canonical databases of the
//!   (IsBind-erased) positive sentences of the formula, mapped back to the
//!   base relations (Lemma 4.13's `I'_f`);
//! * **states** are pairs (set of revealed facts, progressed formula); the
//!   formula is progressed transition by transition, in the style of the
//!   propositional reduction of Theorem 4.12;
//! * **transitions** are generated per access method by grouping the not yet
//!   revealed facts of its relation by their projection onto the input
//!   positions (a well-formed response must agree with the binding), plus
//!   empty responses with candidate bindings drawn from the formula's
//!   constants and the universe values.
//!
//! The same engine, with bindings materialised (`zero_ary = false`), is used
//! as the bounded witness-search procedure for `AccLTL+` and the full
//! (undecidable) language: finding a witness is always sound; exhausting the
//! space without finding one is a completeness certificate only for the
//! fragments covered by the Boundedness Lemma, which is how the solver
//! front-ends in [`crate::solver`] report their verdicts.
//!
//! The frontier machinery — universe indexing, candidate enumeration,
//! deduplication, arena parent links, parallel layer expansion — is the
//! shared [`accltl_paths::engine`]; this module contributes the
//! `FormulaOracle` that progresses obligations over per-candidate
//! transition-structure overlays (compiled sentences, `O(|response|)` per
//! step, no configuration clones).  Obligation checks are memoized through a
//! per-search `accltl_relational::GuardCache` (sentence id × restricted
//! `StructureKey`), so candidates that differ only in facts a sentence never
//! mentions — typically the `IsBind` fact — share one homomorphism search;
//! `ACCLTL_DISABLE_GUARD_CACHE=1` selects the uncached path with
//! byte-identical verdicts, witnesses and budget accounting, and
//! [`BoundedSearcher::search_with_stats`] surfaces the hit/miss counters.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use accltl_paths::engine::{
    Candidate, EmptyBindingMode, EngineConfig, EngineOutcome, FactUniverse, FrontierEngine,
    StepOracle, StepOutcome,
};
use accltl_paths::{AccessPath, AccessSchema};
use accltl_relational::{
    CompiledSentence, GuardCache, GuardCacheStats, Instance, InstanceOverlay, PosFormula, RelId,
    Tuple, Value,
};

use crate::accltl::AccLtl;
use crate::vocabulary::{self, erase_isbind, TransitionVocab};

/// Configuration of the bounded satisfiability search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedSearchConfig {
    /// Maximum number of distinct (facts, formula) states explored.
    pub max_states: usize,
    /// Maximum number of tuples added by a single response.
    pub max_response_size: usize,
    /// Cap on candidate bindings enumerated per method for empty responses.
    pub max_empty_bindings: usize,
    /// Accept the empty access path as a witness when the formula holds on it.
    pub allow_empty_path: bool,
    /// Restrict the search to grounded paths (every binding value must occur
    /// in the initial instance or in an earlier response).
    pub grounded: bool,
    /// Worker threads for frontier expansion; `0` reads the
    /// `ACCLTL_SEARCH_THREADS` environment variable (default 1).  Verdicts
    /// and witnesses do not depend on the thread count.
    pub threads: usize,
}

impl Default for BoundedSearchConfig {
    fn default() -> Self {
        BoundedSearchConfig {
            max_states: 200_000,
            max_response_size: 3,
            max_empty_bindings: 16,
            allow_empty_path: false,
            grounded: false,
            threads: 0,
        }
    }
}

/// Outcome of a satisfiability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatOutcome {
    /// A witness access path was found.
    Satisfiable {
        /// The witness path (its transitions satisfy the formula at position
        /// one).
        witness: AccessPath,
    },
    /// The bounded witness space contains no satisfying path.  For the
    /// fragments covered by the Boundedness Lemma this certifies
    /// unsatisfiability; the solver front-ends downgrade it to
    /// [`SatOutcome::Unknown`] where that guarantee does not apply.
    Unsatisfiable,
    /// The state budget was exhausted before the search completed.
    Unknown {
        /// Number of states explored before giving up.
        explored: usize,
    },
}

impl SatOutcome {
    /// True if a witness was found.
    #[must_use]
    pub fn is_satisfiable(&self) -> bool {
        matches!(self, SatOutcome::Satisfiable { .. })
    }
}

/// Builds the bounded fact universe of a formula: the canonical databases of
/// its IsBind-erased positive sentences, mapped to base relations, together
/// with the facts of the initial instance.
fn fact_universe(formula: &AccLtl, initial: &Instance) -> Vec<(RelId, Tuple)> {
    let mut facts: BTreeSet<(RelId, Tuple)> =
        initial.facts().map(|(rel, t)| (rel, t.clone())).collect();

    for (sentence_index, sentence) in formula.atom_sentences().iter().enumerate() {
        let erased = erase_isbind(sentence);
        for (disjunct_index, icq) in erased.to_inequality_union().iter().enumerate() {
            // Rename the variables apart so that witnesses of distinct
            // sentences/disjuncts never share frozen values.
            let renamed = icq
                .cq
                .rename_vars(|v| format!("s{sentence_index}d{disjunct_index}\u{1f9}{v}"));
            let (canonical, _) = renamed.canonical_instance();
            for (predicate, tuple) in canonical.facts() {
                if let Some(base) = vocabulary::base_relation(predicate.as_str()) {
                    facts.insert((RelId::new(base), tuple.clone()));
                }
            }
        }
    }
    facts.into_iter().collect()
}

/// The constants mentioned anywhere in the formula (used as candidate binding
/// values for empty responses).
fn formula_constants(formula: &AccLtl) -> BTreeSet<Value> {
    formula
        .atom_sentences()
        .iter()
        .flat_map(PosFormula::constants)
        .collect()
}

/// Normalises a formula so that structurally equal obligations compare equal
/// (sorted, deduplicated boolean arguments).
fn normalize(formula: &AccLtl) -> AccLtl {
    match formula {
        AccLtl::Atom(_) => formula.clone(),
        AccLtl::Not(inner) => AccLtl::not(normalize(inner)),
        AccLtl::And(parts) => {
            let mut normalized: Vec<AccLtl> = parts.iter().map(normalize).collect();
            normalized.sort();
            normalized.dedup();
            AccLtl::and(normalized)
        }
        AccLtl::Or(parts) => {
            let mut normalized: Vec<AccLtl> = parts.iter().map(normalize).collect();
            normalized.sort();
            normalized.dedup();
            AccLtl::or(normalized)
        }
        AccLtl::Next(inner) => AccLtl::next(normalize(inner)),
        AccLtl::Until(l, r) => AccLtl::until(normalize(l), normalize(r)),
    }
}

/// Progresses an `AccLTL` formula through one transition structure, whose
/// atoms are decided by `eval` (a compiled-sentence evaluator in the search's
/// hot loop).
fn progress(formula: &AccLtl, eval: &impl Fn(&PosFormula) -> bool) -> AccLtl {
    match formula {
        AccLtl::Atom(sentence) => {
            if eval(sentence) {
                AccLtl::top()
            } else {
                AccLtl::bottom()
            }
        }
        AccLtl::Not(inner) => AccLtl::not(progress(inner, eval)),
        AccLtl::And(parts) => AccLtl::and(parts.iter().map(|p| progress(p, eval)).collect()),
        AccLtl::Or(parts) => AccLtl::or(parts.iter().map(|p| progress(p, eval)).collect()),
        AccLtl::Next(inner) => inner.as_ref().clone(),
        AccLtl::Until(l, r) => AccLtl::or(vec![
            progress(r, eval),
            AccLtl::and(vec![progress(l, eval), formula.clone()]),
        ]),
    }
}

/// Whether a (progressed) formula is satisfied by the empty remainder of a
/// path.
fn accepts_empty(formula: &AccLtl) -> bool {
    match formula {
        AccLtl::Atom(sentence) => matches!(sentence, PosFormula::True),
        AccLtl::Not(inner) => !accepts_empty(inner),
        AccLtl::And(parts) => parts.iter().all(accepts_empty),
        AccLtl::Or(parts) => parts.iter().any(accepts_empty),
        AccLtl::Next(_) | AccLtl::Until(..) => false,
    }
}

/// The [`StepOracle`] of the bounded satisfiability search: the logical state
/// is the normalized obligation still to satisfy, advanced by formula
/// progression over the candidate's transition structure.
struct FormulaOracle<'c> {
    vocab: TransitionVocab,
    /// Atom sentences of the formula, DNF-compiled once: progression
    /// evaluates the same handful of sentences against every candidate
    /// structure.
    compiled: BTreeMap<PosFormula, CompiledSentence>,
    /// The search's guard-verdict cache: obligation checks consult it before
    /// any homomorphism search (and repeated occurrences of one atom inside
    /// a single progression hit it immediately).  Shared by all worker
    /// threads; disabled it only counts consults.
    cache: &'c GuardCache,
    zero_ary: bool,
}

impl<'c> FormulaOracle<'c> {
    fn new(schema: &AccessSchema, formula: &AccLtl, zero_ary: bool, cache: &'c GuardCache) -> Self {
        let compiled = formula
            .atom_sentences()
            .into_iter()
            .map(|sentence| {
                let compiled = CompiledSentence::compile(&sentence);
                (sentence, compiled)
            })
            .collect();
        FormulaOracle {
            vocab: TransitionVocab::new(schema),
            compiled,
            cache,
            zero_ary,
        }
    }

    fn eval(&self, sentence: &PosFormula, structure: &InstanceOverlay, memoize: bool) -> bool {
        match sentence {
            PosFormula::True => true,
            PosFormula::False => false,
            _ => match self.compiled.get(sentence) {
                Some(compiled) => compiled.holds_cached(structure, self.cache, memoize),
                // Progression only ever produces atoms of the original
                // formula (plus ⊤/⊥); this fallback keeps the oracle total
                // (counted, but never memoized).
                None => {
                    self.cache.note_uncached();
                    sentence.holds(structure)
                }
            },
        }
    }
}

/// Per-state context of the [`FormulaOracle`]: the `pre ∪ post` base of all
/// candidate structures out of one state, plus the state's verdict-cache
/// size gate (decided once here, so the per-consult fast path is a branch).
struct FormulaCtx {
    base: Arc<Instance>,
    memoize: bool,
}

impl StepOracle for FormulaOracle<'_> {
    type State = AccLtl;
    type StateCtx = FormulaCtx;

    fn prepare(&self, before: &InstanceOverlay) -> FormulaCtx {
        let base = Arc::new(self.vocab.state_structure(before));
        // Size-gate memoization per state and pin the base so verdicts
        // fingerprinted against its address stay replayable (see
        // `relational::guard_cache`).
        let memoize = self.cache.gate_and_pin(&base);
        FormulaCtx { base, memoize }
    }

    fn step(
        &self,
        state: &AccLtl,
        ctx: &FormulaCtx,
        candidate: &Candidate<'_>,
        universe: &FactUniverse,
    ) -> StepOutcome<AccLtl> {
        let structure = self.vocab.structure_overlay(
            &ctx.base,
            candidate.added.iter().map(|&i| {
                let (rel, tuple) = universe.fact(i);
                (rel, tuple.clone())
            }),
            candidate.method.name_sym(),
            (!self.zero_ary).then_some(candidate.binding),
        );
        let progressed = normalize(&progress(state, &|sentence| {
            self.eval(sentence, &structure, ctx.memoize)
        }));
        if progressed == AccLtl::bottom() {
            return StepOutcome::dead(1);
        }
        if accepts_empty(&progressed) {
            // The path leading to the current state, extended by this
            // transition, is a witness (reported before deduplication: the
            // successor state may coincide with an earlier one, e.g. when an
            // obligation like `G ψ` is already dischargeable).
            return StepOutcome {
                successors: Vec::new(),
                accept: true,
                cost: 1,
            };
        }
        StepOutcome {
            successors: vec![progressed],
            accept: false,
            cost: 1,
        }
    }

    fn cache_stats(&self) -> Option<GuardCacheStats> {
        Some(self.cache.stats())
    }
}

/// The bounded satisfiability search.
pub struct BoundedSearcher<'a> {
    schema: &'a AccessSchema,
    initial: Instance,
    zero_ary: bool,
    config: BoundedSearchConfig,
}

impl<'a> BoundedSearcher<'a> {
    /// Creates a searcher.  `zero_ary` selects the `Sch0−Acc` interpretation
    /// of the `IsBind` predicates.
    #[must_use]
    pub fn new(
        schema: &'a AccessSchema,
        initial: &Instance,
        zero_ary: bool,
        config: BoundedSearchConfig,
    ) -> Self {
        BoundedSearcher {
            schema,
            initial: initial.clone(),
            zero_ary,
            config,
        }
    }

    /// Runs the search for the given formula through the shared frontier
    /// engine ([`accltl_paths::engine`]).
    #[must_use]
    pub fn search(&self, formula: &AccLtl) -> SatOutcome {
        self.search_with_stats(formula).0
    }

    /// [`BoundedSearcher::search`], also returning the guard-verdict cache
    /// counters of the run (all consults count as misses when the cache is
    /// disabled, so cached and uncached runs report the same total).
    #[must_use]
    pub fn search_with_stats(&self, formula: &AccLtl) -> (SatOutcome, GuardCacheStats) {
        let cache = GuardCache::new();
        let start_formula = normalize(formula);
        if self.config.allow_empty_path && accepts_empty(&start_formula) {
            return (
                SatOutcome::Satisfiable {
                    witness: AccessPath::new(),
                },
                cache.stats(),
            );
        }

        let universe = FactUniverse::new(fact_universe(formula, &self.initial));
        let constants = formula_constants(formula);
        let oracle = FormulaOracle::new(self.schema, formula, self.zero_ary, &cache);
        let engine = FrontierEngine::new(
            self.schema,
            &oracle,
            universe,
            Arc::new(self.initial.clone()),
            &constants,
            EngineConfig {
                max_states: self.config.max_states,
                max_response_size: self.config.max_response_size,
                max_empty_bindings: self.config.max_empty_bindings,
                max_step_cost: usize::MAX,
                grounded: self.config.grounded,
                empty_bindings: if self.zero_ary {
                    // In the 0-ary interpretation the binding carries no
                    // information, so one placeholder binding per method
                    // suffices for empty responses.
                    EmptyBindingMode::Placeholder
                } else {
                    EmptyBindingMode::Enumerate
                },
                threads: self.config.threads,
            },
        );
        let outcome = match engine.run(start_formula) {
            EngineOutcome::Witness { witness } => SatOutcome::Satisfiable { witness },
            EngineOutcome::Exhausted => SatOutcome::Unsatisfiable,
            // A truncated witness space (over-wide response groups) proves
            // nothing, exactly like an exhausted budget.
            EngineOutcome::Truncated { explored }
            | EngineOutcome::OutOfStates { explored }
            | EngineOutcome::OutOfBudget { explored } => SatOutcome::Unknown { explored },
        };
        (outcome, cache.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocabulary::{isbind_atom, isbind_prop, post_atom, pre_atom};
    use accltl_paths::access::phone_directory_access_schema;
    use accltl_relational::{tuple, Term};

    fn schema() -> AccessSchema {
        phone_directory_access_schema()
    }

    fn address_post_has_jones() -> PosFormula {
        PosFormula::exists(
            vec!["s", "p", "h"],
            post_atom(
                "Address",
                vec![
                    Term::var("s"),
                    Term::var("p"),
                    Term::constant("Jones"),
                    Term::var("h"),
                ],
            ),
        )
    }

    fn mobile_pre_nonempty() -> PosFormula {
        PosFormula::exists(
            vec!["n", "p", "s", "ph"],
            pre_atom(
                "Mobile#",
                vec![
                    Term::var("n"),
                    Term::var("p"),
                    Term::var("s"),
                    Term::var("ph"),
                ],
            ),
        )
    }

    fn check_witness(formula: &AccLtl, outcome: &SatOutcome, zero_ary: bool) {
        let SatOutcome::Satisfiable { witness } = outcome else {
            panic!("expected satisfiable, got {outcome:?}");
        };
        let schema = schema();
        assert!(witness.validate(&schema).is_ok());
        assert!(formula
            .holds_on_path(witness, &schema, &Instance::new(), zero_ary)
            .unwrap());
    }

    #[test]
    fn eventually_jones_is_satisfiable_with_a_valid_witness() {
        let schema = schema();
        let f = AccLtl::finally(AccLtl::atom(address_post_has_jones()));
        let searcher = BoundedSearcher::new(
            &schema,
            &Instance::new(),
            true,
            BoundedSearchConfig::default(),
        );
        let outcome = searcher.search(&f);
        check_witness(&f, &outcome, true);
    }

    #[test]
    fn globally_nothing_and_eventually_something_is_unsatisfiable() {
        let schema = schema();
        // G ¬[∃ Address^post …Jones…] ∧ F [∃ Address^post …Jones…]
        let jones = AccLtl::atom(address_post_has_jones());
        let f = AccLtl::and(vec![
            AccLtl::globally(AccLtl::not(jones.clone())),
            AccLtl::finally(jones),
        ]);
        let searcher = BoundedSearcher::new(
            &schema,
            &Instance::new(),
            true,
            BoundedSearchConfig::default(),
        );
        assert_eq!(searcher.search(&f), SatOutcome::Unsatisfiable);
    }

    #[test]
    fn order_constraints_are_satisfiable_in_the_right_order_only() {
        let schema = schema();
        // "Nothing is known from Mobile# until an AcM2 access happens" and
        // eventually a Mobile# fact appears: satisfiable (AcM2 first, then
        // AcM1).
        let f = AccLtl::and(vec![
            AccLtl::until(
                AccLtl::not(AccLtl::atom(mobile_pre_nonempty())),
                AccLtl::atom(isbind_prop("AcM2")),
            ),
            AccLtl::finally(AccLtl::atom(mobile_pre_nonempty())),
        ]);
        let searcher = BoundedSearcher::new(
            &schema,
            &Instance::new(),
            true,
            BoundedSearchConfig::default(),
        );
        let outcome = searcher.search(&f);
        check_witness(&f, &outcome, true);
        if let SatOutcome::Satisfiable { witness } = &outcome {
            // A Mobile# fact must eventually appear in a pre-instance, so the
            // witness needs at least two transitions, and the Until part
            // forces an AcM2 access no later than the first transition with a
            // non-empty Mobile# pre-instance.
            assert!(witness.len() >= 2);
            assert!(witness.accesses().any(|a| a.method == "AcM2"));
        }

        // Forcing the first access to be AcM1 while also requiring the above
        // is unsatisfiable (Mobile#^pre would stay empty only if no Mobile#
        // fact was revealed, but the first transition must reveal one for F to
        // hold... more precisely the conjunction below is contradictory).
        let contradictory = AccLtl::and(vec![
            AccLtl::atom(isbind_prop("AcM1")),
            AccLtl::until(
                AccLtl::not(AccLtl::atom(isbind_prop("AcM1"))),
                AccLtl::atom(isbind_prop("AcM2")),
            ),
        ]);
        assert_eq!(searcher.search(&contradictory), SatOutcome::Unsatisfiable);
    }

    #[test]
    fn binding_aware_search_finds_dataflow_witnesses() {
        let schema = schema();
        // An AcM1 access whose bound name already occurs in Address^pre — the
        // paper's running dataflow example.  Requires revealing an Address
        // fact first, then accessing Mobile# with that name.
        let dataflow = AccLtl::finally(AccLtl::atom(PosFormula::exists(
            vec!["n"],
            PosFormula::and(vec![
                isbind_atom("AcM1", vec![Term::var("n")]),
                PosFormula::exists(
                    vec!["s", "p", "h"],
                    pre_atom(
                        "Address",
                        vec![
                            Term::var("s"),
                            Term::var("p"),
                            Term::var("n"),
                            Term::var("h"),
                        ],
                    ),
                ),
            ]),
        )));
        let searcher = BoundedSearcher::new(
            &schema,
            &Instance::new(),
            false,
            BoundedSearchConfig::default(),
        );
        let outcome = searcher.search(&dataflow);
        check_witness(&dataflow, &outcome, false);
    }

    #[test]
    fn grounded_search_requires_known_values() {
        let schema = schema();
        // Eventually an AcM1 access is made with some (n-ary) binding.  Under
        // grounded semantics over the empty initial instance, no binding value
        // is known, and AcM1 needs one input value — yet a grounded path can
        // still never *reveal* a text value without first making an access...
        // in fact no grounded access with a non-empty binding can ever be the
        // first access, so requiring the very first transition to use AcM1 is
        // unsatisfiable under groundedness.
        let f = AccLtl::atom(PosFormula::exists(
            vec!["n"],
            isbind_atom("AcM1", vec![Term::var("n")]),
        ));
        let grounded_config = BoundedSearchConfig {
            grounded: true,
            ..BoundedSearchConfig::default()
        };
        let searcher = BoundedSearcher::new(&schema, &Instance::new(), false, grounded_config);
        assert_eq!(searcher.search(&f), SatOutcome::Unsatisfiable);

        // With an initial instance supplying the value, it becomes satisfiable.
        let mut initial = Instance::new();
        initial.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Smith", 13]);
        let searcher = BoundedSearcher::new(&schema, &initial, false, grounded_config);
        let outcome = searcher.search(&f);
        assert!(outcome.is_satisfiable());
    }

    #[test]
    fn state_budget_exhaustion_reports_unknown() {
        let schema = schema();
        let f = AccLtl::and(vec![
            AccLtl::finally(AccLtl::atom(address_post_has_jones())),
            AccLtl::finally(AccLtl::atom(mobile_pre_nonempty())),
        ]);
        let searcher = BoundedSearcher::new(
            &schema,
            &Instance::new(),
            true,
            BoundedSearchConfig {
                max_states: 2,
                ..BoundedSearchConfig::default()
            },
        );
        assert!(matches!(searcher.search(&f), SatOutcome::Unknown { .. }));
    }

    #[test]
    fn empty_path_witness_is_only_allowed_when_enabled() {
        let schema = schema();
        let g_false = AccLtl::globally(AccLtl::bottom());
        let default_searcher = BoundedSearcher::new(
            &schema,
            &Instance::new(),
            true,
            BoundedSearchConfig::default(),
        );
        assert_eq!(default_searcher.search(&g_false), SatOutcome::Unsatisfiable);

        let allow_empty = BoundedSearchConfig {
            allow_empty_path: true,
            ..BoundedSearchConfig::default()
        };
        let empty_searcher = BoundedSearcher::new(&schema, &Instance::new(), true, allow_empty);
        let outcome = empty_searcher.search(&g_false);
        assert!(matches!(
            outcome,
            SatOutcome::Satisfiable { ref witness } if witness.is_empty()
        ));
    }

    #[test]
    fn initial_instance_facts_are_visible_in_pre() {
        let schema = schema();
        let mut initial = Instance::new();
        initial.add_fact("Mobile#", tuple!["Smith", "OX13QD", "Parks Rd", 5551212]);
        // The very first transition already sees the initial Mobile# fact in
        // its pre-instance.
        let f = AccLtl::atom(mobile_pre_nonempty());
        let searcher =
            BoundedSearcher::new(&schema, &initial, true, BoundedSearchConfig::default());
        let outcome = searcher.search(&f);
        assert!(outcome.is_satisfiable());

        // Over the empty initial instance the same formula is unsatisfiable:
        // the first transition's pre-instance is always empty.
        let searcher = BoundedSearcher::new(
            &schema,
            &Instance::new(),
            true,
            BoundedSearchConfig::default(),
        );
        assert_eq!(searcher.search(&f), SatOutcome::Unsatisfiable);
    }
}
