//! The bounded-universe path-search engine behind the decision procedures.
//!
//! The Boundedness Lemma (Lemma 4.13) shows that a satisfiable
//! `AccLTL(FO∃+0−Acc)` formula has a witness path whose instances contain
//! only homomorphic images of the formula's positive sentences, and whose
//! binding set is polynomial.  The paper then *guesses* such a sequence and
//! verifies it through a propositional LTL abstraction.  This module replaces
//! the guess by a deterministic, memoised search over exactly that witness
//! space:
//!
//! * the **fact universe** is the union of the canonical databases of the
//!   (IsBind-erased) positive sentences of the formula, mapped back to the
//!   base relations (Lemma 4.13's `I'_f`);
//! * **states** are pairs (set of revealed facts, progressed formula); the
//!   formula is progressed transition by transition, in the style of the
//!   propositional reduction of Theorem 4.12;
//! * **transitions** are generated per access method by grouping the not yet
//!   revealed facts of its relation by their projection onto the input
//!   positions (a well-formed response must agree with the binding), plus
//!   empty responses with candidate bindings drawn from the formula's
//!   constants and the universe values.
//!
//! The same engine, with bindings materialised (`zero_ary = false`), is used
//! as the bounded witness-search procedure for `AccLTL+` and the full
//! (undecidable) language: finding a witness is always sound; exhausting the
//! space without finding one is a completeness certificate only for the
//! fragments covered by the Boundedness Lemma, which is how the solver
//! front-ends in [`crate::solver`] report their verdicts.
//!
//! The frontier machinery — universe indexing, candidate enumeration,
//! deduplication, arena parent links, parallel layer expansion — is the
//! shared [`accltl_paths::engine`]; this module contributes the
//! `FormulaOracle` that progresses obligations over per-candidate
//! transition-structure overlays (compiled sentences, `O(|response|)` per
//! step, no configuration clones).  Obligation checks are memoized through a
//! per-search `accltl_relational::GuardCache` (sentence id × restricted
//! `StructureKey`), so candidates that differ only in facts a sentence never
//! mentions — typically the `IsBind` fact — share one homomorphism search;
//! `ACCLTL_DISABLE_GUARD_CACHE=1` (read once, by
//! `accltl_paths::engine::EngineConfig::from_env`) selects the uncached path
//! with byte-identical verdicts, witnesses and budget accounting, and
//! [`BoundedSearcher::run`] surfaces the hit/miss counters in its
//! [`SearchReport`].
//!
//! [`BoundedSearcher::run_batch`] checks many formulas through one
//! [`BatchEngine`]: all properties share configuration-space work (overlay
//! bases, prepared transition structures, and one root guard cache), while
//! per-formula verdicts, witnesses and budget accounting stay byte-identical
//! to one-at-a-time [`BoundedSearcher::run`] calls.

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, RwLock};

use accltl_paths::engine::{
    BatchEngine, Candidate, EmptyBindingMode, EngineCacheStats, EngineConfig, EngineOutcome,
    EngineReport, FactUniverse, PropertySpec, SearchReport, SessionState, StepOracle, StepOutcome,
};
use accltl_paths::{Access, AccessPath, AccessSchema, Response};
use accltl_relational::{
    CompiledSentence, GuardCache, GuardCacheStats, Instance, InstanceOverlay, PosFormula, RelId,
    ScanView, Tuple, Value,
};

use crate::accltl::AccLtl;
use crate::vocabulary::{self, erase_isbind, TransitionVocab};

/// Configuration of the bounded satisfiability search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedSearchConfig {
    /// Maximum number of distinct (facts, formula) states explored.
    pub max_states: usize,
    /// Maximum number of tuples added by a single response.
    pub max_response_size: usize,
    /// Cap on candidate bindings enumerated per method for empty responses.
    pub max_empty_bindings: usize,
    /// Accept the empty access path as a witness when the formula holds on it.
    pub allow_empty_path: bool,
    /// Restrict the search to grounded paths (every binding value must occur
    /// in the initial instance or in an earlier response).
    pub grounded: bool,
    /// Worker threads for frontier expansion; `0` reads the
    /// `ACCLTL_SEARCH_THREADS` environment variable (default 1).  Verdicts
    /// and witnesses do not depend on the thread count.
    pub threads: usize,
}

impl Default for BoundedSearchConfig {
    fn default() -> Self {
        BoundedSearchConfig {
            max_states: 200_000,
            max_response_size: 3,
            max_empty_bindings: 16,
            allow_empty_path: false,
            grounded: false,
            threads: 0,
        }
    }
}

/// Outcome of a satisfiability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatOutcome {
    /// A witness access path was found.
    Satisfiable {
        /// The witness path (its transitions satisfy the formula at position
        /// one).
        witness: AccessPath,
    },
    /// The bounded witness space contains no satisfying path.  For the
    /// fragments covered by the Boundedness Lemma this certifies
    /// unsatisfiability; the solver front-ends downgrade it to
    /// [`SatOutcome::Unknown`] where that guarantee does not apply.
    Unsatisfiable,
    /// The state budget was exhausted before the search completed.
    Unknown {
        /// Number of states explored before giving up.
        explored: usize,
    },
}

impl SatOutcome {
    /// True if a witness was found.
    #[must_use]
    pub fn is_satisfiable(&self) -> bool {
        matches!(self, SatOutcome::Satisfiable { .. })
    }
}

/// Builds the bounded fact universe of a formula: the canonical databases of
/// its IsBind-erased positive sentences, mapped to base relations, together
/// with the facts of the initial instance.
fn fact_universe(formula: &AccLtl, initial: &Instance) -> Vec<(RelId, Tuple)> {
    let mut facts: BTreeSet<(RelId, Tuple)> =
        initial.facts().map(|(rel, t)| (rel, t.clone())).collect();

    for (sentence_index, sentence) in formula.atom_sentences().iter().enumerate() {
        let erased = erase_isbind(sentence);
        for (disjunct_index, icq) in erased.to_inequality_union().iter().enumerate() {
            // Rename the variables apart so that witnesses of distinct
            // sentences/disjuncts never share frozen values.
            let renamed = icq
                .cq
                .rename_vars(|v| format!("s{sentence_index}d{disjunct_index}\u{1f9}{v}"));
            let (canonical, _) = renamed.canonical_instance();
            for (predicate, tuple) in canonical.facts() {
                if let Some(base) = vocabulary::base_relation(predicate.as_str()) {
                    facts.insert((RelId::new(base), tuple.clone()));
                }
            }
        }
    }
    facts.into_iter().collect()
}

/// The constants mentioned anywhere in the formula (used as candidate binding
/// values for empty responses).
fn formula_constants(formula: &AccLtl) -> BTreeSet<Value> {
    formula
        .atom_sentences()
        .iter()
        .flat_map(PosFormula::constants)
        .collect()
}

/// Normalises a formula so that structurally equal obligations compare equal
/// (sorted, deduplicated boolean arguments).
fn normalize(formula: &AccLtl) -> AccLtl {
    match formula {
        AccLtl::Atom(_) => formula.clone(),
        AccLtl::Not(inner) => AccLtl::not(normalize(inner)),
        AccLtl::And(parts) => {
            let mut normalized: Vec<AccLtl> = parts.iter().map(normalize).collect();
            normalized.sort();
            normalized.dedup();
            AccLtl::and(normalized)
        }
        AccLtl::Or(parts) => {
            let mut normalized: Vec<AccLtl> = parts.iter().map(normalize).collect();
            normalized.sort();
            normalized.dedup();
            AccLtl::or(normalized)
        }
        AccLtl::Next(inner) => AccLtl::next(normalize(inner)),
        AccLtl::Until(l, r) => AccLtl::until(normalize(l), normalize(r)),
    }
}

/// Progresses an `AccLTL` formula through one transition structure, whose
/// atoms are decided by `eval` (a compiled-sentence evaluator in the search's
/// hot loop).
fn progress(formula: &AccLtl, eval: &impl Fn(&PosFormula) -> bool) -> AccLtl {
    match formula {
        AccLtl::Atom(sentence) => {
            if eval(sentence) {
                AccLtl::top()
            } else {
                AccLtl::bottom()
            }
        }
        AccLtl::Not(inner) => AccLtl::not(progress(inner, eval)),
        AccLtl::And(parts) => AccLtl::and(parts.iter().map(|p| progress(p, eval)).collect()),
        AccLtl::Or(parts) => AccLtl::or(parts.iter().map(|p| progress(p, eval)).collect()),
        AccLtl::Next(inner) => inner.as_ref().clone(),
        AccLtl::Until(l, r) => AccLtl::or(vec![
            progress(r, eval),
            AccLtl::and(vec![progress(l, eval), formula.clone()]),
        ]),
    }
}

/// Whether a (progressed) formula is satisfied by the empty remainder of a
/// path.
fn accepts_empty(formula: &AccLtl) -> bool {
    match formula {
        AccLtl::Atom(sentence) => matches!(sentence, PosFormula::True),
        AccLtl::Not(inner) => !accepts_empty(inner),
        AccLtl::And(parts) => parts.iter().all(accepts_empty),
        AccLtl::Or(parts) => parts.iter().any(accepts_empty),
        AccLtl::Next(_) | AccLtl::Until(..) => false,
    }
}

/// The [`StepOracle`] of the bounded satisfiability search: the logical state
/// is the normalized obligation still to satisfy, advanced by formula
/// progression over the candidate's transition structure.
struct FormulaOracle {
    vocab: TransitionVocab,
    /// Atom sentences of the formula, DNF-compiled once: progression
    /// evaluates the same handful of sentences against every candidate
    /// structure.
    compiled: BTreeMap<PosFormula, CompiledSentence>,
    /// The search's guard-verdict cache, an owned
    /// [`GuardCache::share`] handle of the batch's root cache (one shared
    /// verdict map, per-formula consult counters): obligation checks
    /// consult it before any homomorphism search (and repeated occurrences
    /// of one atom inside a single progression hit it immediately).
    /// Owning the handle — rather than borrowing the root — is what lets a
    /// monitoring session store its oracles alongside the root cache for
    /// the session's lifetime.  Shared by all worker threads; disabled it
    /// only counts consults.
    cache: GuardCache,
    zero_ary: bool,
    /// Evaluate by scanning instead of through value indexes
    /// ([`EngineConfig::disable_indexes`]); guard caching is unaffected.
    scan: bool,
    /// Per-relation size below which transition-structure bases are scanned
    /// rather than indexed ([`EngineConfig::index_cutoff`]), stamped onto
    /// each state's base in `prepare`.
    index_cutoff: usize,
    /// One-step progressions memoized per (obligation, atom-verdict mask):
    /// the progressed successor is a pure function of the obligation and the
    /// verdicts of the formula's atom sentences, so candidates whose guards
    /// agree replay one normalized result instead of re-deriving it.  Shared
    /// by all worker threads; bypassed for formulas with more than 32 atoms.
    progress_memo: RwLock<HashMap<AccLtl, HashMap<u32, Progressed>>>,
}

/// A memoized one-step progression verdict (see
/// [`FormulaOracle::progress_memo`]).
#[derive(Clone)]
enum Progressed {
    /// The obligation became `⊥`: the transition is dead.
    Dead,
    /// The progressed obligation accepts the empty remainder: the path so
    /// far, extended by this transition, is a witness.
    Accept,
    /// The normalized remaining obligation.
    Step(AccLtl),
}

impl Progressed {
    fn outcome(self) -> StepOutcome<AccLtl> {
        match self {
            Progressed::Dead => StepOutcome::dead(1),
            Progressed::Accept => StepOutcome {
                successors: Vec::new(),
                accept: true,
                cost: 1,
            },
            Progressed::Step(next) => StepOutcome {
                successors: vec![next],
                accept: false,
                cost: 1,
            },
        }
    }
}

impl FormulaOracle {
    fn new(
        schema: &AccessSchema,
        formula: &AccLtl,
        zero_ary: bool,
        cache: GuardCache,
        scan: bool,
        index_cutoff: usize,
    ) -> Self {
        let compiled = formula
            .atom_sentences()
            .into_iter()
            .map(|sentence| {
                let compiled = CompiledSentence::compile(&sentence);
                (sentence, compiled)
            })
            .collect();
        FormulaOracle {
            vocab: TransitionVocab::new(schema),
            compiled,
            cache,
            zero_ary,
            scan,
            index_cutoff,
            progress_memo: RwLock::new(HashMap::new()),
        }
    }

    /// Progresses an obligation through one transition whose atoms are
    /// decided by `eval`, classifying the normalized result.
    fn progress_state(&self, state: &AccLtl, eval: &impl Fn(&PosFormula) -> bool) -> Progressed {
        let progressed = normalize(&progress(state, eval));
        if progressed == AccLtl::bottom() {
            return Progressed::Dead;
        }
        if accepts_empty(&progressed) {
            // The path leading to the current state, extended by this
            // transition, is a witness (reported before deduplication: the
            // successor state may coincide with an earlier one, e.g. when an
            // obligation like `G ψ` is already dischargeable).
            return Progressed::Accept;
        }
        Progressed::Step(progressed)
    }

    fn eval(&self, sentence: &PosFormula, structure: &InstanceOverlay, memoize: bool) -> bool {
        if self.scan {
            return self.eval_view(sentence, &ScanView(structure), memoize);
        }
        self.eval_view(sentence, structure, memoize)
    }

    fn eval_view(
        &self,
        sentence: &PosFormula,
        structure: &impl accltl_relational::InstanceView,
        memoize: bool,
    ) -> bool {
        match sentence {
            PosFormula::True => true,
            PosFormula::False => false,
            _ => match self.compiled.get(sentence) {
                Some(compiled) => compiled.holds_cached(structure, &self.cache, memoize),
                // Progression only ever produces atoms of the original
                // formula (plus ⊤/⊥); this fallback keeps the oracle total
                // (counted, but never memoized).
                None => {
                    self.cache.note_uncached();
                    sentence.holds(structure)
                }
            },
        }
    }
}

/// Per-state context of the [`FormulaOracle`]: the `pre ∪ post` base of all
/// candidate structures out of one state, plus the state's verdict-cache
/// size gate (decided once here, so the per-consult fast path is a branch).
struct FormulaCtx {
    base: Arc<Instance>,
    memoize: bool,
}

impl StepOracle for FormulaOracle {
    type State = AccLtl;
    type StateCtx = FormulaCtx;
    /// The candidate's transition structure: its response pushed as `Rpost`
    /// facts (plus the `IsBind` fact) onto the state's `pre ∪ post` base.
    /// Independent of the obligation being progressed, so the engine shares
    /// it across obligations and across batched formulas.
    type CandidateCtx = InstanceOverlay;

    fn prepare(&self, before: &InstanceOverlay) -> FormulaCtx {
        let mut base = self.vocab.state_structure(before);
        base.set_index_cutoff(self.index_cutoff);
        // Size-gate memoization per state (content-addressed keys need no
        // pinning — see `relational::guard_cache`).
        let memoize = self.cache.memoize_gate(&base);
        FormulaCtx {
            base: Arc::new(base),
            memoize,
        }
    }

    fn prepare_candidate(
        &self,
        ctx: &FormulaCtx,
        candidate: &Candidate<'_>,
        universe: &FactUniverse,
    ) -> InstanceOverlay {
        self.vocab.structure_overlay(
            &ctx.base,
            candidate.added.iter().map(|&i| {
                let (rel, tuple) = universe.fact(i);
                (rel, tuple.clone())
            }),
            candidate.method.name_sym(),
            (!self.zero_ary).then_some(candidate.binding),
        )
    }

    fn step(
        &self,
        state: &AccLtl,
        ctx: &FormulaCtx,
        structure: &InstanceOverlay,
        _candidate: &Candidate<'_>,
        _universe: &FactUniverse,
    ) -> StepOutcome<AccLtl> {
        // Decide every atom sentence once against the candidate structure
        // (each decision is a counted guard-cache consult); progression is
        // then a pure function of the obligation and this verdict mask.
        if self.compiled.len() > 32 {
            return self
                .progress_state(state, &|sentence| {
                    self.eval(sentence, structure, ctx.memoize)
                })
                .outcome();
        }
        let mut mask = 0u32;
        for (bit, sentence) in self.compiled.keys().enumerate() {
            if self.eval(sentence, structure, ctx.memoize) {
                mask |= 1 << bit;
            }
        }
        let hit = self
            .progress_memo
            .read()
            .expect("progress memo poisoned")
            .get(state)
            .and_then(|verdicts| verdicts.get(&mask))
            .cloned();
        if let Some(progressed) = hit {
            return progressed.outcome();
        }
        // Progression only ever produces atoms of the original formula (plus
        // ⊤/⊥); an atom outside the compiled set falls back to direct
        // (counted, never memoized) evaluation, and poisons this step for
        // the memo since the mask does not key its verdict.
        let unkeyed = Cell::new(false);
        let progressed = self.progress_state(state, &|sentence| match sentence {
            PosFormula::True => true,
            PosFormula::False => false,
            _ => match self.compiled.keys().position(|k| k == sentence) {
                Some(bit) => mask >> bit & 1 == 1,
                None => {
                    unkeyed.set(true);
                    self.eval(sentence, structure, ctx.memoize)
                }
            },
        });
        if !unkeyed.get() {
            self.progress_memo
                .write()
                .expect("progress memo poisoned")
                .entry(state.clone())
                .or_default()
                .insert(mask, progressed.clone());
        }
        progressed.outcome()
    }

    fn cache_stats(&self) -> Option<GuardCacheStats> {
        Some(self.cache.stats())
    }

    /// [`FormulaOracle::prepare`] is a pure function of the
    /// before-configuration (the vocabulary and the cache's size gate are
    /// shared batch-wide), so prepared transition-structure bases may be
    /// shared across obligations and across batched formulas.
    fn shares_ctx(&self) -> bool {
        true
    }
}

/// The bounded satisfiability search.
pub struct BoundedSearcher<'a> {
    schema: &'a AccessSchema,
    initial: Instance,
    zero_ary: bool,
    config: BoundedSearchConfig,
    /// When set (see [`BoundedSearcher::with_engine_config`]), used verbatim
    /// as the engine configuration instead of mapping
    /// [`BoundedSearchConfig`] over [`EngineConfig::from_env`].
    engine_override: Option<EngineConfig>,
}

impl<'a> BoundedSearcher<'a> {
    /// Creates a searcher.  `zero_ary` selects the `Sch0−Acc` interpretation
    /// of the `IsBind` predicates.
    #[must_use]
    pub fn new(
        schema: &'a AccessSchema,
        initial: &Instance,
        zero_ary: bool,
        config: BoundedSearchConfig,
    ) -> Self {
        BoundedSearcher {
            schema,
            initial: initial.clone(),
            zero_ary,
            config,
            engine_override: None,
        }
    }

    /// A searcher driven by an explicit [`EngineConfig`] (the batch-request
    /// path): the engine config is used verbatim — budgets, threads and the
    /// index/guard-cache ablation flags included — instead of mapping
    /// [`BoundedSearchConfig`] over the environment defaults.  The
    /// empty-binding mode is still forced by `zero_ary`, and the empty path
    /// is never accepted as a witness.
    #[must_use]
    pub fn with_engine_config(
        schema: &'a AccessSchema,
        initial: &Instance,
        zero_ary: bool,
        engine: EngineConfig,
    ) -> Self {
        BoundedSearcher {
            schema,
            initial: initial.clone(),
            zero_ary,
            config: BoundedSearchConfig::default(),
            engine_override: Some(engine),
        }
    }

    /// The engine configuration of this searcher's runs: the explicit
    /// override when given, otherwise [`BoundedSearchConfig`] layered over
    /// [`EngineConfig::from_env`] (the single `ACCLTL_*` read site).
    fn engine_config(&self) -> EngineConfig {
        let mut engine = match self.engine_override {
            Some(engine) => engine,
            None => {
                let mut engine = EngineConfig::from_env()
                    .max_states(self.config.max_states)
                    .max_response_size(self.config.max_response_size)
                    .max_empty_bindings(self.config.max_empty_bindings)
                    .grounded(self.config.grounded);
                if self.config.threads > 0 {
                    engine = engine.threads(self.config.threads);
                }
                engine
            }
        };
        engine = engine.empty_bindings(if self.zero_ary {
            // In the 0-ary interpretation the binding carries no
            // information, so one placeholder binding per method suffices
            // for empty responses.
            EmptyBindingMode::Placeholder
        } else {
            EmptyBindingMode::Enumerate
        });
        engine
    }

    /// Runs the search for one formula through the shared frontier engine
    /// ([`accltl_paths::engine`]), returning the verdict together with
    /// budget and guard-cache accounting.
    #[must_use]
    pub fn run(&self, formula: &AccLtl) -> SearchReport<SatOutcome> {
        self.run_batch(std::slice::from_ref(formula))
            .pop()
            .expect("one formula in, one report out")
    }

    /// Checks many formulas through one [`BatchEngine`]: configuration
    /// exploration, prepared transition structures and the guard cache are
    /// shared batch-wide, while each formula's verdict, witness, explored
    /// count and consult totals are byte-identical to a standalone
    /// [`BoundedSearcher::run`] (for any batch partitioning and thread
    /// count).  Reports come back in input order.
    #[must_use]
    pub fn run_batch(&self, formulas: &[AccLtl]) -> Vec<SearchReport<SatOutcome>> {
        let _batch_span = accltl_obs::trace::span_fields(
            "bounded.run_batch",
            &[("formulas", formulas.len() as u64)],
        );
        let engine_config = self.engine_config();
        let cache = GuardCache::with_enabled(!engine_config.disable_guard_cache);
        run_formula_batch(
            self.schema,
            &self.initial,
            self.zero_ary,
            self.config.allow_empty_path,
            engine_config,
            &cache,
            formulas,
            |specs| BatchEngine::new(self.schema, Arc::new(self.initial.clone())).run(specs),
        )
    }

    /// Opens a long-lived monitoring session over a property batch: an
    /// opening check (step 0) runs immediately, and every
    /// [`MonitorSession::step`] extends `Conf(p, I0)` by one access's
    /// response and re-derives all verdicts on the session's persistent
    /// engine state.  Verdicts, witnesses, explored counts and
    /// guard-consult totals of every step are byte-identical to a
    /// from-scratch [`BoundedSearcher::run_batch`] over the grown instance
    /// (`ACCLTL_DISABLE_SESSION_REUSE=1` selects exactly that scratch
    /// path); the session only changes what is *recomputed*, which each
    /// step's [`SessionReport`] accounts for.  The engine configuration is
    /// resolved once, here.
    #[must_use]
    pub fn open_session(&self, properties: &[AccLtl]) -> MonitorSession<'a> {
        let _span = accltl_obs::trace::span_fields(
            "session.open",
            &[("properties", properties.len() as u64)],
        );
        let engine_config = self.engine_config();
        let root_cache = GuardCache::with_enabled(!engine_config.disable_guard_cache);
        let state = (!engine_config.disable_session_reuse)
            .then(|| SessionState::new(self.schema, Arc::new(self.initial.clone())));
        let mut session = MonitorSession {
            schema: self.schema,
            zero_ary: self.zero_ary,
            search_config: self.config,
            engine_config,
            properties: properties.to_vec(),
            current: self.initial.clone(),
            root_cache,
            state,
            reports: Vec::new(),
            steps: 0,
            last: SessionReport::default(),
        };
        let delta = session.recheck();
        session.finish_step(false, delta);
        session
    }

    /// Deprecated alias of [`BoundedSearcher::run`] returning the verdict
    /// alone; kept so existing callers compile unchanged.
    #[must_use]
    pub fn search(&self, formula: &AccLtl) -> SatOutcome {
        self.run(formula).verdict
    }

    /// Deprecated alias of [`BoundedSearcher::run`] returning the historical
    /// `(verdict, stats)` pair; kept so existing callers compile unchanged.
    /// All consults count as misses when the cache is disabled, so cached
    /// and uncached runs report the same total.
    #[must_use]
    pub fn search_with_stats(&self, formula: &AccLtl) -> (SatOutcome, GuardCacheStats) {
        let report = self.run(formula);
        (report.verdict, report.cache)
    }
}

/// Builds the per-formula property specs over `initial`, runs them through
/// `run` (a fresh [`BatchEngine`] for plain batches, a session's persistent
/// [`SessionState`] for monitoring steps), and assembles the per-formula
/// search reports, feeding the per-report counters into the process-wide
/// registry exactly once.  [`BoundedSearcher::run_batch`] and the session
/// step path share this verbatim, so their reports are byte-identical by
/// construction: specs, universes, constants, empty-path short-circuits and
/// report assembly cannot drift apart.
#[allow(clippy::too_many_arguments)]
fn run_formula_batch(
    schema: &AccessSchema,
    initial: &Instance,
    zero_ary: bool,
    allow_empty_path: bool,
    engine_config: EngineConfig,
    root_cache: &GuardCache,
    formulas: &[AccLtl],
    run: impl FnOnce(Vec<PropertySpec<FormulaOracle>>) -> Vec<EngineReport>,
) -> Vec<SearchReport<SatOutcome>> {
    let mut reports: Vec<Option<SearchReport<SatOutcome>>> =
        formulas.iter().map(|_| None).collect();
    let mut specs = Vec::new();
    let mut spec_slots = Vec::new();
    for (slot, formula) in formulas.iter().enumerate() {
        // One share-handle per formula: one underlying verdict map, but
        // per-formula consult counters (so batched totals equal sequential
        // totals).
        let handle = root_cache.share();
        let start = normalize(formula);
        if allow_empty_path && accepts_empty(&start) {
            reports[slot] = Some(SearchReport {
                verdict: SatOutcome::Satisfiable {
                    witness: AccessPath::new(),
                },
                explored: 0,
                cost: 0,
                cache: handle.stats(),
                engine_cache: EngineCacheStats::default(),
            });
            continue;
        }
        let universe = FactUniverse::new(fact_universe(formula, initial));
        let constants = formula_constants(formula);
        let oracle = FormulaOracle::new(
            schema,
            formula,
            zero_ary,
            handle,
            engine_config.disable_indexes,
            engine_config.index_cutoff,
        );
        specs.push(PropertySpec {
            oracle,
            start,
            universe,
            constants,
            config: engine_config,
        });
        spec_slots.push(slot);
    }
    if !specs.is_empty() {
        for (slot, report) in spec_slots.into_iter().zip(run(specs)) {
            let verdict = match report.outcome {
                EngineOutcome::Witness { witness } => SatOutcome::Satisfiable { witness },
                EngineOutcome::Exhausted => SatOutcome::Unsatisfiable,
                // A truncated witness space (over-wide response groups)
                // proves nothing, exactly like an exhausted budget.
                EngineOutcome::Truncated { explored }
                | EngineOutcome::OutOfStates { explored }
                | EngineOutcome::OutOfBudget { explored } => SatOutcome::Unknown { explored },
            };
            reports[slot] = Some(SearchReport {
                verdict,
                explored: report.explored,
                cost: report.cost,
                cache: report.cache.unwrap_or_default(),
                engine_cache: report.engine_cache,
            });
        }
    }
    let reports: Vec<SearchReport<SatOutcome>> = reports
        .into_iter()
        .map(|report| report.expect("every formula reported"))
        .collect();
    // Reconcile the per-report legacy counters into the process-wide
    // registry — exactly once per report, here at assembly time, so
    // registry deltas equal summed report structs (see `obs_props`).
    for report in &reports {
        accltl_obs::metrics::add("search.explored", report.explored as u64);
        accltl_obs::metrics::add("search.cost", report.cost as u64);
        accltl_obs::metrics::add("guard_cache.hits", report.cache.hits);
        accltl_obs::metrics::add("guard_cache.misses", report.cache.misses);
        accltl_obs::trace::event(
            "bounded.report",
            &[
                ("explored", report.explored as u64),
                ("cost", report.cost as u64),
                ("cache_hits", report.cache.hits),
                ("cache_misses", report.cache.misses),
            ],
        );
    }
    reports
}

/// One step's accounting of a [`MonitorSession`].
///
/// `explored`, `cost` and `guard.total()` are contractual — byte-identical
/// to a from-scratch re-check of the step (the `guard` hit/miss *split* and
/// the reuse counters are observability, not contract).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionReport {
    /// The step index; the opening check performed by
    /// [`BoundedSearcher::open_session`] is step 0.
    pub step: usize,
    /// True when the step's access revealed no fact the session had not
    /// already seen, so the previous verdicts were replayed without running
    /// the engine (determinism makes the replay byte-identical to a
    /// re-run).  Always false under `ACCLTL_DISABLE_SESSION_REUSE=1`.
    pub replayed: bool,
    /// Engine-cache lookups answered from cache during this step's run —
    /// in session mode including prepared contexts and candidate
    /// enumerations computed by *earlier* steps (the "reused node" count).
    pub reused: u64,
    /// Engine-cache lookups that had to (re)compute their entry this step,
    /// because no configuration of equal content had been prepared before —
    /// after a perturbation, exactly the configurations whose content
    /// mentions the new facts.
    pub recomputed: u64,
    /// Search states discovered this step, summed over the property batch.
    pub explored: usize,
    /// Guard-consult cost charged this step, summed over the batch.
    pub cost: usize,
    /// Guard-cache consults of this step, summed over the batch.  The
    /// session's persistent root cache turns repeat consults into hits
    /// across steps; the total matches a from-scratch run exactly.
    pub guard: GuardCacheStats,
}

/// A long-lived relevance-monitoring session (see
/// [`BoundedSearcher::open_session`]): holds the property batch, the
/// instance grown so far, the persistent root guard cache and the
/// persistent engine state, and re-derives every property's verdict after
/// each access/response step.
///
/// In session mode (the default) each step runs on one persistent
/// [`SessionState`]: the step's response facts are assumed revealed at the
/// root, so configurations keep their content across steps and the
/// engine's content-addressed caches — and the root guard cache's
/// restricted `StructureKey`s — only miss where the perturbation actually
/// changed something.  Under `ACCLTL_DISABLE_SESSION_REUSE=1` every step
/// constructs a fresh [`BoundedSearcher`] over the grown instance instead;
/// both modes produce byte-identical verdicts, witnesses, explored counts
/// and guard-consult totals.
pub struct MonitorSession<'a> {
    schema: &'a AccessSchema,
    zero_ary: bool,
    search_config: BoundedSearchConfig,
    /// Resolved once at open (the single env read); every step — session
    /// or scratch — runs under exactly this configuration.
    engine_config: EngineConfig,
    properties: Vec<AccLtl>,
    /// `I0` extended by every response received so far.
    current: Instance,
    /// The session-lifetime guard cache; each step's oracles hold
    /// [`GuardCache::share`] handles of it.
    root_cache: GuardCache,
    /// The persistent engine state; `None` under
    /// [`EngineConfig::disable_session_reuse`].
    state: Option<SessionState<'a, FormulaOracle>>,
    /// Per-property reports of the latest step, in property order.
    reports: Vec<SearchReport<SatOutcome>>,
    steps: usize,
    last: SessionReport,
}

impl<'a> MonitorSession<'a> {
    /// The properties being monitored, in report order.
    #[must_use]
    pub fn properties(&self) -> &[AccLtl] {
        &self.properties
    }

    /// The initial instance extended by every response received so far.
    #[must_use]
    pub fn current(&self) -> &Instance {
        &self.current
    }

    /// Per-property reports of the latest step, in property order.
    #[must_use]
    pub fn reports(&self) -> &[SearchReport<SatOutcome>] {
        &self.reports
    }

    /// The latest step's verdict for the property at `index`.
    #[must_use]
    pub fn verdict(&self, index: usize) -> &SatOutcome {
        &self.reports[index].verdict
    }

    /// The number of steps taken so far (the opening check is step 0, so
    /// this is 0 until the first [`MonitorSession::step`] call).
    #[must_use]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The latest step's accounting.
    #[must_use]
    pub fn last_report(&self) -> &SessionReport {
        &self.last
    }

    /// Extends the session by one access and its response, then re-derives
    /// every property's verdict.  The `(access, response)` pair is
    /// validated like an access-path step; the response's facts join the
    /// current instance (and, in session mode, the persistent engine's
    /// root).  Returns the step's accounting; per-property verdicts are
    /// read through [`MonitorSession::reports`] /
    /// [`MonitorSession::verdict`].
    pub fn step(
        &mut self,
        access: &Access,
        response: &Response,
    ) -> accltl_paths::Result<&SessionReport> {
        let method = self.schema.require_method(access.method)?;
        let relation = method.relation_id();
        AccessPath::from_steps(vec![(access.clone(), response.clone())]).validate(self.schema)?;
        let mut fresh = false;
        for tuple in response {
            if self.current.add_fact(relation, tuple.clone()) {
                if let Some(state) = self.state.as_mut() {
                    state.assume_revealed(relation, tuple);
                }
                fresh = true;
            }
        }
        self.steps += 1;
        let _span = accltl_obs::trace::span_fields(
            "session.step",
            &[("step", self.steps as u64), ("fresh", u64::from(fresh))],
        );
        if !fresh && self.state.is_some() {
            // The configuration space is unchanged, so by determinism a
            // re-run would reproduce the previous reports byte for byte;
            // replay them instead of exploring.  (Scratch mode re-runs
            // regardless — that is its contract.)
            self.finish_step(true, EngineCacheStats::default());
            return Ok(&self.last);
        }
        let delta = self.recheck();
        self.finish_step(false, delta);
        Ok(&self.last)
    }

    /// Re-derives every property's verdict over the current instance and
    /// returns the step's engine-cache delta.
    fn recheck(&mut self) -> EngineCacheStats {
        let (reports, delta) = match self.state.as_mut() {
            Some(state) => {
                let mut delta = EngineCacheStats::default();
                let reports = run_formula_batch(
                    self.schema,
                    &self.current,
                    self.zero_ary,
                    self.search_config.allow_empty_path,
                    self.engine_config,
                    &self.root_cache,
                    &self.properties,
                    |specs| {
                        let (reports, step_delta) = state.run_step(specs);
                        delta = step_delta;
                        reports
                    },
                );
                (reports, delta)
            }
            None => {
                // Scratch mode: exactly what a caller without a session
                // would run — a fresh searcher (fresh root guard cache,
                // fresh engine) over the grown instance.
                let searcher = BoundedSearcher {
                    schema: self.schema,
                    initial: self.current.clone(),
                    zero_ary: self.zero_ary,
                    config: self.search_config,
                    engine_override: Some(self.engine_config),
                };
                let reports = searcher.run_batch(&self.properties);
                let delta = reports
                    .first()
                    .map(|report| report.engine_cache)
                    .unwrap_or_default();
                (reports, delta)
            }
        };
        self.reports = reports;
        delta
    }

    /// Stamps the step's [`SessionReport`] and feeds the session counters
    /// into the process-wide registry.
    fn finish_step(&mut self, replayed: bool, delta: EngineCacheStats) {
        let mut guard = GuardCacheStats::default();
        let mut explored = 0usize;
        let mut cost = 0usize;
        for report in &self.reports {
            explored += report.explored;
            cost += report.cost;
            guard.hits += report.cache.hits;
            guard.misses += report.cache.misses;
        }
        let (reused, recomputed) = if replayed {
            (0, 0)
        } else {
            (delta.hits, delta.misses)
        };
        self.last = SessionReport {
            step: self.steps,
            replayed,
            reused,
            recomputed,
            explored,
            cost,
            guard,
        };
        accltl_obs::metrics::add("session.steps", 1);
        accltl_obs::metrics::add("session.reused", reused);
        accltl_obs::metrics::add("session.recomputed", recomputed);
        if replayed {
            accltl_obs::metrics::add("session.replayed", 1);
        }
        accltl_obs::trace::event(
            "session.report",
            &[
                ("step", self.steps as u64),
                ("explored", explored as u64),
                ("cost", cost as u64),
                ("reused", reused),
                ("recomputed", recomputed),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocabulary::{isbind_atom, isbind_prop, post_atom, pre_atom};
    use accltl_paths::access::phone_directory_access_schema;
    use accltl_relational::{tuple, Term};

    fn schema() -> AccessSchema {
        phone_directory_access_schema()
    }

    fn address_post_has_jones() -> PosFormula {
        PosFormula::exists(
            vec!["s", "p", "h"],
            post_atom(
                "Address",
                vec![
                    Term::var("s"),
                    Term::var("p"),
                    Term::constant("Jones"),
                    Term::var("h"),
                ],
            ),
        )
    }

    fn mobile_pre_nonempty() -> PosFormula {
        PosFormula::exists(
            vec!["n", "p", "s", "ph"],
            pre_atom(
                "Mobile#",
                vec![
                    Term::var("n"),
                    Term::var("p"),
                    Term::var("s"),
                    Term::var("ph"),
                ],
            ),
        )
    }

    fn check_witness(formula: &AccLtl, outcome: &SatOutcome, zero_ary: bool) {
        let SatOutcome::Satisfiable { witness } = outcome else {
            panic!("expected satisfiable, got {outcome:?}");
        };
        let schema = schema();
        assert!(witness.validate(&schema).is_ok());
        assert!(formula
            .holds_on_path(witness, &schema, &Instance::new(), zero_ary)
            .unwrap());
    }

    #[test]
    fn eventually_jones_is_satisfiable_with_a_valid_witness() {
        let schema = schema();
        let f = AccLtl::finally(AccLtl::atom(address_post_has_jones()));
        let searcher = BoundedSearcher::new(
            &schema,
            &Instance::new(),
            true,
            BoundedSearchConfig::default(),
        );
        let outcome = searcher.search(&f);
        check_witness(&f, &outcome, true);
    }

    #[test]
    fn globally_nothing_and_eventually_something_is_unsatisfiable() {
        let schema = schema();
        // G ¬[∃ Address^post …Jones…] ∧ F [∃ Address^post …Jones…]
        let jones = AccLtl::atom(address_post_has_jones());
        let f = AccLtl::and(vec![
            AccLtl::globally(AccLtl::not(jones.clone())),
            AccLtl::finally(jones),
        ]);
        let searcher = BoundedSearcher::new(
            &schema,
            &Instance::new(),
            true,
            BoundedSearchConfig::default(),
        );
        assert_eq!(searcher.search(&f), SatOutcome::Unsatisfiable);
    }

    #[test]
    fn order_constraints_are_satisfiable_in_the_right_order_only() {
        let schema = schema();
        // "Nothing is known from Mobile# until an AcM2 access happens" and
        // eventually a Mobile# fact appears: satisfiable (AcM2 first, then
        // AcM1).
        let f = AccLtl::and(vec![
            AccLtl::until(
                AccLtl::not(AccLtl::atom(mobile_pre_nonempty())),
                AccLtl::atom(isbind_prop("AcM2")),
            ),
            AccLtl::finally(AccLtl::atom(mobile_pre_nonempty())),
        ]);
        let searcher = BoundedSearcher::new(
            &schema,
            &Instance::new(),
            true,
            BoundedSearchConfig::default(),
        );
        let outcome = searcher.search(&f);
        check_witness(&f, &outcome, true);
        if let SatOutcome::Satisfiable { witness } = &outcome {
            // A Mobile# fact must eventually appear in a pre-instance, so the
            // witness needs at least two transitions, and the Until part
            // forces an AcM2 access no later than the first transition with a
            // non-empty Mobile# pre-instance.
            assert!(witness.len() >= 2);
            assert!(witness.accesses().any(|a| a.method == "AcM2"));
        }

        // Forcing the first access to be AcM1 while also requiring the above
        // is unsatisfiable (Mobile#^pre would stay empty only if no Mobile#
        // fact was revealed, but the first transition must reveal one for F to
        // hold... more precisely the conjunction below is contradictory).
        let contradictory = AccLtl::and(vec![
            AccLtl::atom(isbind_prop("AcM1")),
            AccLtl::until(
                AccLtl::not(AccLtl::atom(isbind_prop("AcM1"))),
                AccLtl::atom(isbind_prop("AcM2")),
            ),
        ]);
        assert_eq!(searcher.search(&contradictory), SatOutcome::Unsatisfiable);
    }

    #[test]
    fn binding_aware_search_finds_dataflow_witnesses() {
        let schema = schema();
        // An AcM1 access whose bound name already occurs in Address^pre — the
        // paper's running dataflow example.  Requires revealing an Address
        // fact first, then accessing Mobile# with that name.
        let dataflow = AccLtl::finally(AccLtl::atom(PosFormula::exists(
            vec!["n"],
            PosFormula::and(vec![
                isbind_atom("AcM1", vec![Term::var("n")]),
                PosFormula::exists(
                    vec!["s", "p", "h"],
                    pre_atom(
                        "Address",
                        vec![
                            Term::var("s"),
                            Term::var("p"),
                            Term::var("n"),
                            Term::var("h"),
                        ],
                    ),
                ),
            ]),
        )));
        let searcher = BoundedSearcher::new(
            &schema,
            &Instance::new(),
            false,
            BoundedSearchConfig::default(),
        );
        let outcome = searcher.search(&dataflow);
        check_witness(&dataflow, &outcome, false);
    }

    #[test]
    fn grounded_search_requires_known_values() {
        let schema = schema();
        // Eventually an AcM1 access is made with some (n-ary) binding.  Under
        // grounded semantics over the empty initial instance, no binding value
        // is known, and AcM1 needs one input value — yet a grounded path can
        // still never *reveal* a text value without first making an access...
        // in fact no grounded access with a non-empty binding can ever be the
        // first access, so requiring the very first transition to use AcM1 is
        // unsatisfiable under groundedness.
        let f = AccLtl::atom(PosFormula::exists(
            vec!["n"],
            isbind_atom("AcM1", vec![Term::var("n")]),
        ));
        let grounded_config = BoundedSearchConfig {
            grounded: true,
            ..BoundedSearchConfig::default()
        };
        let searcher = BoundedSearcher::new(&schema, &Instance::new(), false, grounded_config);
        assert_eq!(searcher.search(&f), SatOutcome::Unsatisfiable);

        // With an initial instance supplying the value, it becomes satisfiable.
        let mut initial = Instance::new();
        initial.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Smith", 13]);
        let searcher = BoundedSearcher::new(&schema, &initial, false, grounded_config);
        let outcome = searcher.search(&f);
        assert!(outcome.is_satisfiable());
    }

    #[test]
    fn state_budget_exhaustion_reports_unknown() {
        let schema = schema();
        let f = AccLtl::and(vec![
            AccLtl::finally(AccLtl::atom(address_post_has_jones())),
            AccLtl::finally(AccLtl::atom(mobile_pre_nonempty())),
        ]);
        let searcher = BoundedSearcher::new(
            &schema,
            &Instance::new(),
            true,
            BoundedSearchConfig {
                max_states: 2,
                ..BoundedSearchConfig::default()
            },
        );
        assert!(matches!(searcher.search(&f), SatOutcome::Unknown { .. }));
    }

    #[test]
    fn empty_path_witness_is_only_allowed_when_enabled() {
        let schema = schema();
        let g_false = AccLtl::globally(AccLtl::bottom());
        let default_searcher = BoundedSearcher::new(
            &schema,
            &Instance::new(),
            true,
            BoundedSearchConfig::default(),
        );
        assert_eq!(default_searcher.search(&g_false), SatOutcome::Unsatisfiable);

        let allow_empty = BoundedSearchConfig {
            allow_empty_path: true,
            ..BoundedSearchConfig::default()
        };
        let empty_searcher = BoundedSearcher::new(&schema, &Instance::new(), true, allow_empty);
        let outcome = empty_searcher.search(&g_false);
        assert!(matches!(
            outcome,
            SatOutcome::Satisfiable { ref witness } if witness.is_empty()
        ));
    }

    #[test]
    fn initial_instance_facts_are_visible_in_pre() {
        let schema = schema();
        let mut initial = Instance::new();
        initial.add_fact("Mobile#", tuple!["Smith", "OX13QD", "Parks Rd", 5551212]);
        // The very first transition already sees the initial Mobile# fact in
        // its pre-instance.
        let f = AccLtl::atom(mobile_pre_nonempty());
        let searcher =
            BoundedSearcher::new(&schema, &initial, true, BoundedSearchConfig::default());
        let outcome = searcher.search(&f);
        assert!(outcome.is_satisfiable());

        // Over the empty initial instance the same formula is unsatisfiable:
        // the first transition's pre-instance is always empty.
        let searcher = BoundedSearcher::new(
            &schema,
            &Instance::new(),
            true,
            BoundedSearchConfig::default(),
        );
        assert_eq!(searcher.search(&f), SatOutcome::Unsatisfiable);
    }
}
