//! The transition vocabulary `SchAcc` and the relational structure `M(t)`
//! associated with a transition.
//!
//! For a schema `Sch`, the vocabulary `SchAcc` has two copies `Rpre`, `Rpost`
//! of each relation `R` and a predicate `IsBind_AcM` per access method, whose
//! arity is the number of input positions of the method (Section 2).  The
//! 0-ary variant `Sch0−Acc` replaces each `IsBind_AcM` by a proposition that
//! merely records *which* method was used (Section 4.2).
//!
//! A transition `t = (I, (AcM, b̄), I')` is turned into an instance over this
//! vocabulary by interpreting `Rpre` as `R` in `I`, `Rpost` as `R` in `I'`,
//! and `IsBind_AcM` as the singleton `{b̄}` (all other `IsBind` predicates
//! empty).  Formulas of the transition language are then ordinary positive
//! existential sentences evaluated over that instance by `accltl-relational`.

use std::sync::Arc;

use accltl_paths::{AccessSchema, Transition};
use accltl_relational::symbols::SymbolTable;
use accltl_relational::{
    Atom, Instance, InstanceOverlay, InstanceView, PosFormula, RelId, Sym, Term, Tuple,
};

/// The `Rpre` predicate name for relation `relation`.
#[must_use]
pub fn pre_name(relation: &str) -> String {
    format!("{relation}\u{2039}pre\u{203a}")
}

/// The `Rpost` predicate name for relation `relation`.
#[must_use]
pub fn post_name(relation: &str) -> String {
    format!("{relation}\u{2039}post\u{203a}")
}

/// The `IsBind_AcM` predicate name for access method `method`.
#[must_use]
pub fn isbind_name(method: &str) -> String {
    format!("IsBind\u{2039}{method}\u{203a}")
}

/// If `predicate` is a `Rpre` name, returns the base relation.
#[must_use]
pub fn parse_pre(predicate: &str) -> Option<&str> {
    predicate.strip_suffix("\u{2039}pre\u{203a}")
}

/// If `predicate` is a `Rpost` name, returns the base relation.
#[must_use]
pub fn parse_post(predicate: &str) -> Option<&str> {
    predicate.strip_suffix("\u{2039}post\u{203a}")
}

/// If `predicate` is an `IsBind_AcM` name, returns the access method name.
#[must_use]
pub fn parse_isbind(predicate: &str) -> Option<&str> {
    predicate
        .strip_prefix("IsBind\u{2039}")
        .and_then(|rest| rest.strip_suffix('\u{203a}'))
}

/// The interned id of the `Rpre` copy of a relation.  Each call formats the
/// mangled name (one short `String` allocation) before the memoised pool
/// lookup; hot loops should go through a per-schema [`TransitionVocab`],
/// which caches the resolved ids and only falls back here for relations
/// outside the schema.
#[must_use]
pub fn pre_rel(relation: RelId) -> RelId {
    RelId::new(&pre_name(relation.as_str()))
}

/// The interned id of the `Rpost` copy of a relation.
#[must_use]
pub fn post_rel(relation: RelId) -> RelId {
    RelId::new(&post_name(relation.as_str()))
}

/// The interned id of the `IsBind_AcM` predicate of a method.
#[must_use]
pub fn isbind_rel(method: Sym) -> RelId {
    RelId::new(&isbind_name(method.as_str()))
}

/// The id-level `SchAcc` vocabulary of an access schema, resolved once.
///
/// The bounded searches build one transition structure per candidate
/// transition, in their innermost loop; with this table the whole
/// construction — `Rpre`/`Rpost` renames and the `IsBind` predicate — is a
/// direct dense-array index per relation ([`SymbolTable`] local indices), with
/// no string formatting, pool traffic or binary search.  Unknown relations
/// (extended vocabularies) fall back to interning.
#[derive(Debug, Clone)]
pub struct TransitionVocab {
    /// The schema's symbol table: raw ids resolve to dense indices in O(1).
    symbols: SymbolTable,
    /// Dense relation index → `Rpre` id.
    rel_pre: Vec<RelId>,
    /// Dense relation index → `Rpost` id.
    rel_post: Vec<RelId>,
    /// Dense method index → `IsBind` id.
    method_isbind: Vec<RelId>,
}

impl TransitionVocab {
    /// Resolves the pre/post/IsBind ids for every relation and method of the
    /// schema into dense per-schema arrays.
    #[must_use]
    pub fn new(schema: &AccessSchema) -> Self {
        let symbols = schema.symbols().clone();
        let rel_pre = symbols.relations().iter().map(|&r| pre_rel(r)).collect();
        let rel_post = symbols.relations().iter().map(|&r| post_rel(r)).collect();
        let method_isbind = symbols.methods().iter().map(|&m| isbind_rel(m)).collect();
        TransitionVocab {
            symbols,
            rel_pre,
            rel_post,
            method_isbind,
        }
    }

    /// The `Rpre` id of a base relation.
    #[must_use]
    pub fn pre(&self, relation: RelId) -> RelId {
        match self.symbols.relation_index(relation) {
            Some(dense) => self.rel_pre[dense],
            None => pre_rel(relation),
        }
    }

    /// The `Rpost` id of a base relation.
    #[must_use]
    pub fn post(&self, relation: RelId) -> RelId {
        match self.symbols.relation_index(relation) {
            Some(dense) => self.rel_post[dense],
            None => post_rel(relation),
        }
    }

    /// The `IsBind` id of a method.
    #[must_use]
    pub fn isbind(&self, method: Sym) -> RelId {
        match self.symbols.method_index(method) {
            Some(dense) => self.method_isbind[dense],
            None => isbind_rel(method),
        }
    }

    /// Builds the transition structure `M(t)` for a `(before, access, after)`
    /// triple entirely at the id level.  `binding` is `None` for the 0-ary
    /// `Sch0−Acc` interpretation.
    #[must_use]
    pub fn structure(
        &self,
        before: &Instance,
        after: &Instance,
        method: Sym,
        binding: Option<&Tuple>,
    ) -> Instance {
        let mut structure = before.rename_relations_by(|r| self.pre(r));
        structure.union_in_place(&after.rename_relations_by(|r| self.post(r)));
        let bind_predicate = self.isbind(method);
        match binding {
            Some(binding) => structure.add_fact(bind_predicate, binding.clone()),
            None => structure.add_fact(bind_predicate, Tuple::default()),
        };
        structure
    }

    /// The `pre ∪ post` image of a configuration: every fact of `before` as
    /// both its `Rpre` and its `Rpost` copy.
    ///
    /// This is the *per-state* base of the transition structures of all
    /// candidate transitions out of one search state: a candidate only adds
    /// its response (post copies) and its `IsBind` fact on top, which
    /// [`TransitionVocab::structure_overlay`] does in `O(|response|)` without
    /// cloning the configuration.
    #[must_use]
    pub fn state_structure<V: InstanceView>(&self, before: &V) -> Instance {
        let mut structure = Instance::new();
        before.each_fact(&mut |rel, tuple| {
            structure.add_fact(self.pre(rel), tuple.clone());
            structure.add_fact(self.post(rel), tuple.clone());
        });
        structure
    }

    /// Builds the transition structure of one candidate transition as an
    /// overlay over the state's `pre ∪ post` base (from
    /// [`TransitionVocab::state_structure`]): the response facts as `Rpost`
    /// copies plus the `IsBind` fact.  `binding` is `None` for the 0-ary
    /// `Sch0−Acc` interpretation.
    #[must_use]
    pub fn structure_overlay(
        &self,
        base: &Arc<Instance>,
        response: impl IntoIterator<Item = (RelId, Tuple)>,
        method: Sym,
        binding: Option<&Tuple>,
    ) -> InstanceOverlay {
        let mut structure = InstanceOverlay::new(base.clone());
        for (rel, tuple) in response {
            structure.push_fact(self.post(rel), tuple);
        }
        let bind_predicate = self.isbind(method);
        match binding {
            Some(binding) => structure.push_fact(bind_predicate, binding.clone()),
            None => structure.push_fact(bind_predicate, Tuple::default()),
        };
        structure
    }
}

/// True if the predicate is an `IsBind` predicate.
#[must_use]
pub fn is_isbind(predicate: &str) -> bool {
    parse_isbind(predicate).is_some()
}

/// Builds the relational structure `M(t)` associated with a transition.
///
/// When `zero_ary` is true the `IsBind` predicate of the transition's method
/// is interpreted as a 0-ary proposition (the empty tuple) rather than by the
/// binding, matching the `Sch0−Acc` vocabulary of Section 4.2.
#[must_use]
pub fn transition_structure(transition: &Transition, zero_ary: bool) -> Instance {
    let mut structure = transition.before.rename_relations_by(pre_rel);
    structure.union_in_place(&transition.after.rename_relations_by(post_rel));
    let bind_predicate = isbind_rel(transition.access.method);
    if zero_ary {
        structure.add_fact(bind_predicate, Tuple::default());
    } else {
        structure.add_fact(bind_predicate, transition.access.binding.clone());
    }
    structure
}

/// Builds the sequence of `SchAcc` structures for every transition of a path.
#[must_use]
pub fn path_structures(transitions: &[Transition], zero_ary: bool) -> Vec<Instance> {
    transitions
        .iter()
        .map(|t| transition_structure(t, zero_ary))
        .collect()
}

/// Convenience constructor for an atom over the `Rpre` copy of a relation.
#[must_use]
pub fn pre_atom(relation: impl Into<RelId>, terms: Vec<Term>) -> PosFormula {
    PosFormula::Atom(Atom::new(pre_rel(relation.into()), terms))
}

/// Convenience constructor for an atom over the `Rpost` copy of a relation.
#[must_use]
pub fn post_atom(relation: impl Into<RelId>, terms: Vec<Term>) -> PosFormula {
    PosFormula::Atom(Atom::new(post_rel(relation.into()), terms))
}

/// Convenience constructor for an `IsBind_AcM(t̄)` atom.
#[must_use]
pub fn isbind_atom(method: impl Into<Sym>, terms: Vec<Term>) -> PosFormula {
    PosFormula::Atom(Atom::new(isbind_rel(method.into()), terms))
}

/// Convenience constructor for the 0-ary `IsBind_AcM` proposition.
#[must_use]
pub fn isbind_prop(method: impl Into<Sym>) -> PosFormula {
    PosFormula::Atom(Atom::new(isbind_rel(method.into()), Vec::new()))
}

/// Rewrites a conjunctive query over the base schema into the same query over
/// the `Rpre` copies (the `Q^pre` of Example 2.2), as a positive formula.
#[must_use]
pub fn query_pre(query: &accltl_relational::ConjunctiveQuery) -> PosFormula {
    query_over(query, &pre_name)
}

/// Rewrites a conjunctive query over the base schema into the same query over
/// the `Rpost` copies (the `Q^post` of Example 2.3).
#[must_use]
pub fn query_post(query: &accltl_relational::ConjunctiveQuery) -> PosFormula {
    query_over(query, &post_name)
}

fn query_over(
    query: &accltl_relational::ConjunctiveQuery,
    rename: &dyn Fn(&str) -> String,
) -> PosFormula {
    PosFormula::and(
        query
            .atoms
            .iter()
            .map(|a| PosFormula::Atom(a.with_predicate(rename(a.predicate.as_str()))))
            .collect(),
    )
    .existential_closure()
}

/// Erases `IsBind` atoms from a positive formula, following the `Qf(φ)`
/// rewriting of Lemma 4.13: `IsBind ∧ ψ ⇒ ψ` and `IsBind ∨ ψ ⇒ ψ`.  The
/// result mentions only `Rpre`/`Rpost` predicates and is what the bounded
/// fact universe is built from.
#[must_use]
pub fn erase_isbind(formula: &PosFormula) -> PosFormula {
    match formula {
        PosFormula::Atom(a) if is_isbind(a.predicate.as_str()) => PosFormula::True,
        PosFormula::Atom(_)
        | PosFormula::Eq(..)
        | PosFormula::Neq(..)
        | PosFormula::True
        | PosFormula::False => formula.clone(),
        PosFormula::And(ps) => PosFormula::and(ps.iter().map(erase_isbind).collect()),
        PosFormula::Or(ps) => PosFormula::or(
            ps.iter()
                .map(|p| {
                    let erased = erase_isbind(p);
                    // An IsBind disjunct is dropped (it imposes nothing on the
                    // data), matching the paper's `IsBind ∨ ψ ⇒ ψ` rule.
                    if mentions_isbind(p) && erased == PosFormula::True {
                        PosFormula::False
                    } else {
                        erased
                    }
                })
                .collect(),
        ),
        PosFormula::Exists(vars, body) => PosFormula::exists(vars.clone(), erase_isbind(body)),
    }
}

/// True if the formula mentions any `IsBind` predicate.
#[must_use]
pub fn mentions_isbind(formula: &PosFormula) -> bool {
    formula.predicates().iter().any(|p| is_isbind(p.as_str()))
}

/// The access-method names whose `IsBind` predicate the formula mentions.
#[must_use]
pub fn isbind_methods(formula: &PosFormula) -> Vec<String> {
    formula
        .predicates()
        .iter()
        .filter_map(|p| parse_isbind(p.as_str()).map(str::to_owned))
        .collect()
}

/// True if every `IsBind` atom in the formula is 0-ary (the `Sch0−Acc`
/// vocabulary of Section 4.2).
#[must_use]
pub fn isbind_atoms_are_zero_ary(formula: &PosFormula) -> bool {
    fn walk(formula: &PosFormula) -> bool {
        match formula {
            PosFormula::Atom(a) => !is_isbind(a.predicate.as_str()) || a.arity() == 0,
            PosFormula::Eq(..) | PosFormula::Neq(..) | PosFormula::True | PosFormula::False => true,
            PosFormula::And(ps) | PosFormula::Or(ps) => ps.iter().all(walk),
            PosFormula::Exists(_, body) => walk(body),
        }
    }
    walk(formula)
}

/// Re-export of the base-relation projection of a `SchAcc` predicate: returns
/// the base relation for `Rpre`/`Rpost` names and `None` for `IsBind`.
#[must_use]
pub fn base_relation(predicate: &str) -> Option<&str> {
    parse_pre(predicate).or_else(|| parse_post(predicate))
}

/// Validates (lightweight) that a formula only mentions predicates derivable
/// from the given access schema's vocabulary.
#[must_use]
pub fn uses_only_schema_vocabulary(formula: &PosFormula, schema: &AccessSchema) -> bool {
    formula.predicates().iter().all(|p| {
        if let Some(rel) = base_relation(p.as_str()) {
            schema.schema().relation(rel).is_some()
        } else if let Some(m) = parse_isbind(p.as_str()) {
            schema.method(m).is_some()
        } else {
            false
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use accltl_paths::access::phone_directory_access_schema;
    use accltl_paths::path::response;
    use accltl_paths::{Access, AccessPath};
    use accltl_relational::{atom, cq, tuple};

    fn example_transitions() -> Vec<Transition> {
        let schema = phone_directory_access_schema();
        let path = AccessPath::new()
            .with_step(
                Access::new("AcM1", tuple!["Smith"]),
                response([tuple!["Smith", "OX13QD", "Parks Rd", 5551212]]),
            )
            .with_step(
                Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]),
                response([tuple!["Parks Rd", "OX13QD", "Jones", 16]]),
            );
        path.transitions(&schema, &Instance::new()).unwrap()
    }

    #[test]
    fn name_mangling_roundtrips() {
        assert_eq!(parse_pre(&pre_name("Address")), Some("Address"));
        assert_eq!(parse_post(&post_name("Address")), Some("Address"));
        assert_eq!(parse_isbind(&isbind_name("AcM1")), Some("AcM1"));
        assert!(is_isbind(&isbind_name("AcM1")));
        assert!(!is_isbind(&pre_name("Address")));
        assert_eq!(base_relation(&pre_name("R")), Some("R"));
        assert_eq!(base_relation(&isbind_name("M")), None);
    }

    #[test]
    fn transition_structure_interprets_pre_post_and_binding() {
        let transitions = example_transitions();
        let m0 = transition_structure(&transitions[0], false);
        // Before the first access nothing is known: no pre facts.
        assert_eq!(m0.relation_size(pre_name("Mobile#")), 0);
        assert_eq!(m0.relation_size(post_name("Mobile#")), 1);
        assert!(m0.contains(isbind_name("AcM1"), &tuple!["Smith"]));
        assert_eq!(m0.relation_size(isbind_name("AcM2")), 0);

        let m1 = transition_structure(&transitions[1], false);
        assert_eq!(m1.relation_size(pre_name("Mobile#")), 1);
        assert_eq!(m1.relation_size(post_name("Address")), 1);
        assert!(m1.contains(isbind_name("AcM2"), &tuple!["Parks Rd", "OX13QD"]));
    }

    #[test]
    fn zero_ary_structure_forgets_the_binding() {
        let transitions = example_transitions();
        let m0 = transition_structure(&transitions[0], true);
        assert!(m0.contains(isbind_name("AcM1"), &Tuple::default()));
        assert!(!m0.contains(isbind_name("AcM1"), &tuple!["Smith"]));
    }

    #[test]
    fn formulas_evaluate_on_transition_structures() {
        let transitions = example_transitions();
        let m1 = transition_structure(&transitions[1], false);
        // The paper's example: an AcM1 access was done with a name appearing
        // in Address^pre — false here (this transition uses AcM2).
        let f = PosFormula::exists(
            vec!["n"],
            PosFormula::and(vec![
                isbind_atom("AcM1", vec![Term::var("n")]),
                PosFormula::exists(
                    vec!["s", "p", "h"],
                    pre_atom(
                        "Address",
                        vec![
                            Term::var("s"),
                            Term::var("p"),
                            Term::var("n"),
                            Term::var("h"),
                        ],
                    ),
                ),
            ]),
        );
        assert!(!f.holds(&m1));

        // But "there is a Mobile# fact before the access" does hold.
        let g = PosFormula::exists(
            vec!["n", "p", "s", "ph"],
            pre_atom(
                "Mobile#",
                vec![
                    Term::var("n"),
                    Term::var("p"),
                    Term::var("s"),
                    Term::var("ph"),
                ],
            ),
        );
        assert!(g.holds(&m1));
        assert!(!g.holds(&transition_structure(&transitions[0], false)));
    }

    #[test]
    fn query_pre_and_post_rename_predicates_and_close_existentially() {
        let q = cq!(<- atom!("Address"; s, p, @"Jones", h));
        let pre = query_pre(&q);
        assert!(pre.predicates().contains(&RelId::new(&pre_name("Address"))));
        assert!(pre.free_variables().is_empty());
        let post = query_post(&q);
        assert!(post
            .predicates()
            .contains(&RelId::new(&post_name("Address"))));
    }

    #[test]
    fn erase_isbind_follows_the_qf_rules() {
        let with_bind = PosFormula::and(vec![
            isbind_prop("AcM1"),
            PosFormula::exists(vec!["x"], pre_atom("Address", vec![Term::var("x")])),
        ]);
        let erased = erase_isbind(&with_bind);
        assert!(!mentions_isbind(&erased));
        assert!(erased
            .predicates()
            .contains(&RelId::new(&pre_name("Address"))));

        let or_bind = PosFormula::or(vec![
            isbind_prop("AcM1"),
            PosFormula::exists(vec!["x"], pre_atom("Address", vec![Term::var("x")])),
        ]);
        let erased_or = erase_isbind(&or_bind);
        assert!(!mentions_isbind(&erased_or));
        // The IsBind disjunct is dropped, not turned into "true".
        assert_ne!(erased_or, PosFormula::True);
    }

    #[test]
    fn zero_ary_detection_and_method_collection() {
        let zero = PosFormula::and(vec![isbind_prop("AcM1"), isbind_prop("AcM2")]);
        assert!(isbind_atoms_are_zero_ary(&zero));
        assert_eq!(isbind_methods(&zero), vec!["AcM1", "AcM2"]);

        let nary = isbind_atom("AcM1", vec![Term::var("x")]);
        assert!(!isbind_atoms_are_zero_ary(&nary));
    }

    #[test]
    fn vocabulary_validation_against_schema() {
        let schema = phone_directory_access_schema();
        let ok = PosFormula::and(vec![
            isbind_prop("AcM1"),
            PosFormula::exists(vec!["x"], pre_atom("Address", vec![Term::var("x")])),
        ]);
        assert!(uses_only_schema_vocabulary(&ok, &schema));
        let bad_method = isbind_prop("Nope");
        assert!(!uses_only_schema_vocabulary(&bad_method, &schema));
        let bad_relation = pre_atom("Nope", vec![Term::var("x")]);
        assert!(!uses_only_schema_vocabulary(&bad_relation, &schema));
        let base_predicate = PosFormula::Atom(atom!("Address"; x));
        assert!(!uses_only_schema_vocabulary(&base_predicate, &schema));
    }
}
