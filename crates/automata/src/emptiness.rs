//! Emptiness of A-automata (Theorem 4.6).
//!
//! The paper's proof goes through the chain decomposition (Lemma 4.9,
//! implemented in [`crate::progressive`]) and a reduction of each progressive
//! automaton to containment of a Datalog program in a positive query (Lemma
//! 4.10, with Proposition 4.11's containment test implemented in
//! `accltl-relational::datalog_containment`).  As recorded in `DESIGN.md`,
//! this crate replaces the middle step by a direct, bounded product search:
//! automaton states are explored jointly with the facts revealed so far,
//! drawn from the canonical databases of the guards' positive parts — the
//! same witness space the Datalog program of Lemma 4.10 ranges over (its
//! `Background` relations are populated by homomorphic images of the guard
//! queries).  A witness path returned by the search is always genuine;
//! emptiness verdicts are exact relative to the configured caps.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use accltl_logic::vocabulary::{base_relation, TransitionVocab};
use accltl_paths::{Access, AccessPath, AccessSchema, Response};
use accltl_relational::{Instance, RelId, Sym, Tuple, Value};

use crate::a_automaton::AAutomaton;
use crate::progressive::chain_decomposition;

/// A search state: the automaton state plus the set of revealed fact indices.
type SearchState = (usize, BTreeSet<usize>);
/// Parent links of the product search, used to reconstruct witness paths.
/// Hashed, not ordered: product states are only deduplicated and chased
/// backwards, never iterated, so the BFS queue alone fixes exploration order.
type SearchParents = HashMap<SearchState, Option<(SearchState, Access, Vec<usize>)>>;

/// Configuration for the bounded emptiness search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptinessConfig {
    /// Maximum number of (automaton state, revealed facts) pairs explored.
    pub max_states: usize,
    /// Maximum number of tuples revealed by one response.
    pub max_response_size: usize,
    /// Cap on candidate bindings for empty responses, per method.
    pub max_empty_bindings: usize,
    /// Cap on total guard evaluations across the whole search.  Guard
    /// evaluation is a homomorphism test, so this bounds the dominant cost;
    /// exceeding it yields [`EmptinessOutcome::Unknown`], never a wrong
    /// verdict.
    pub max_guard_checks: usize,
}

impl Default for EmptinessConfig {
    fn default() -> Self {
        EmptinessConfig {
            max_states: 100_000,
            max_response_size: 3,
            max_empty_bindings: 16,
            max_guard_checks: 500_000,
        }
    }
}

/// Outcome of the emptiness check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmptinessOutcome {
    /// The language is non-empty; a witness access path is returned.
    NonEmpty {
        /// An access path accepted by the automaton.
        witness: AccessPath,
    },
    /// No accepted path exists within the bounded witness space.
    Empty,
    /// The state budget was exhausted.
    Unknown,
}

impl EmptinessOutcome {
    /// True if a witness was found.
    #[must_use]
    pub fn is_nonempty(&self) -> bool {
        matches!(self, EmptinessOutcome::NonEmpty { .. })
    }
}

/// Checks emptiness of the automaton over access paths of the given schema,
/// starting from the given initial instance.
///
/// The automaton is first decomposed into progressive chains (Lemma 4.9); the
/// language is non-empty iff some chain is non-empty, and the chains are
/// searched in order.
#[must_use]
pub fn bounded_emptiness(
    automaton: &AAutomaton,
    schema: &AccessSchema,
    initial: &Instance,
    config: &EmptinessConfig,
) -> EmptinessOutcome {
    let chains = chain_decomposition(automaton);
    if chains.is_empty() {
        return EmptinessOutcome::Empty;
    }
    let mut any_unknown = false;
    // Split the guard budget evenly across chains so one expensive chain
    // cannot starve a cheaply non-empty later chain into Unknown.
    let chain_config = EmptinessConfig {
        max_guard_checks: (config.max_guard_checks / chains.len()).max(1),
        ..*config
    };
    for chain in &chains {
        let mut guard_checks = 0usize;
        match search_chain(chain, schema, initial, &chain_config, &mut guard_checks) {
            EmptinessOutcome::NonEmpty { witness } => {
                return EmptinessOutcome::NonEmpty { witness }
            }
            EmptinessOutcome::Unknown => any_unknown = true,
            EmptinessOutcome::Empty => {}
        }
    }
    if any_unknown {
        EmptinessOutcome::Unknown
    } else {
        EmptinessOutcome::Empty
    }
}

fn search_chain(
    automaton: &AAutomaton,
    schema: &AccessSchema,
    initial: &Instance,
    config: &EmptinessConfig,
    guard_checks: &mut usize,
) -> EmptinessOutcome {
    // The empty path is accepted iff the initial state is accepting.
    if automaton.accepting.contains(&automaton.initial) {
        return EmptinessOutcome::NonEmpty {
            witness: AccessPath::new(),
        };
    }

    let universe = guard_fact_universe(automaton, schema, initial);
    let constants: BTreeSet<Value> = automaton.constants.clone();
    let vocab = TransitionVocab::new(schema);

    let start: SearchState = (
        automaton.initial,
        universe
            .iter()
            .enumerate()
            .filter(|(_, f)| initial.contains(f.0, &f.1))
            .map(|(i, _)| i)
            .collect(),
    );
    let mut parents: SearchParents = SearchParents::new();
    let mut queue = VecDeque::new();
    parents.insert(start.clone(), None);
    queue.push_back(start);

    while let Some(state) = queue.pop_front() {
        let (automaton_state, revealed) = &state;
        let before = instance_of(initial, &universe, revealed);
        for (method, binding, added) in
            candidate_transitions(schema, &universe, revealed, &constants, config)
        {
            let mut after = before.clone();
            for &i in &added {
                after.add_fact(universe[i].0, universe[i].1.clone());
            }
            let structure = vocab.structure(&before, &after, method, Some(&binding));
            for transition in automaton.outgoing(*automaton_state) {
                *guard_checks += 1;
                if *guard_checks > config.max_guard_checks {
                    return EmptinessOutcome::Unknown;
                }
                if !transition.guard.satisfied_by(&structure) {
                    continue;
                }
                let access = Access::new(method, binding.clone());
                if automaton.accepting.contains(&transition.to) {
                    let mut witness = reconstruct(&parents, &state, &universe);
                    let response: Response = added.iter().map(|&i| universe[i].1.clone()).collect();
                    witness.push(access, response);
                    return EmptinessOutcome::NonEmpty { witness };
                }
                let mut new_revealed = revealed.clone();
                new_revealed.extend(added.iter().copied());
                let next: SearchState = (transition.to, new_revealed);
                if parents.contains_key(&next) {
                    continue;
                }
                parents.insert(next.clone(), Some((state.clone(), access, added.clone())));
                if parents.len() >= config.max_states {
                    return EmptinessOutcome::Unknown;
                }
                queue.push_back(next);
            }
        }
    }
    EmptinessOutcome::Empty
}

/// The canonical fact universe of an automaton: canonical databases of every
/// guard's positive part, mapped back to the base relations, plus the initial
/// instance.
///
/// When a guard conjoins an `IsBind_AcM(c̄)` atom with constant arguments and
/// a data atom over the method's relation, the canonical fact is additionally
/// added with the method's input positions overwritten by those constants: a
/// well-formed response to that access must agree with the binding, so the
/// witness fact the guard is looking for carries the constants (this is how
/// the Example 2.3 long-term-relevance automata find their witnesses).
fn guard_fact_universe(
    automaton: &AAutomaton,
    schema: &AccessSchema,
    initial: &Instance,
) -> Vec<(RelId, Tuple)> {
    let mut facts: BTreeSet<(RelId, Tuple)> =
        initial.facts().map(|(r, t)| (r, t.clone())).collect();
    for (index, transition) in automaton.transitions.iter().enumerate() {
        let positive = &transition.guard.positive;
        for (disjunct_index, icq) in positive.to_inequality_union().iter().enumerate() {
            let renamed = icq
                .cq
                .rename_vars(|v| format!("g{index}d{disjunct_index}\u{1fa}{v}"));
            // Constant bindings asserted by IsBind atoms of this disjunct.
            let mut constant_bindings: Vec<(Sym, Vec<Value>)> = Vec::new();
            for atom in &renamed.atoms {
                if let Some(method) =
                    accltl_logic::vocabulary::parse_isbind(atom.predicate.as_str())
                {
                    let values: Option<Vec<Value>> =
                        atom.terms.iter().map(|t| t.as_const().copied()).collect();
                    if let Some(values) = values {
                        constant_bindings.push((Sym::new(method), values));
                    }
                }
            }
            let (canonical, _) = renamed.canonical_instance();
            for (predicate, tuple) in canonical.facts() {
                if let Some(base) = base_relation(predicate.as_str()) {
                    let base = RelId::new(base);
                    facts.insert((base, tuple.clone()));
                    for (method_name, values) in &constant_bindings {
                        let Some(method) = schema.method(*method_name) else {
                            continue;
                        };
                        if method.relation_id() != base || values.len() != method.input_arity() {
                            continue;
                        }
                        let mut overwritten = tuple.values().to_vec();
                        for (&position, value) in method.input_positions().iter().zip(values) {
                            if position < overwritten.len() {
                                overwritten[position] = *value;
                            }
                        }
                        facts.insert((base, Tuple::new(overwritten)));
                    }
                }
            }
        }
    }
    facts.into_iter().collect()
}

fn instance_of(
    initial: &Instance,
    universe: &[(RelId, Tuple)],
    revealed: &BTreeSet<usize>,
) -> Instance {
    let mut instance = initial.clone();
    for &i in revealed {
        instance.add_fact(universe[i].0, universe[i].1.clone());
    }
    instance
}

fn candidate_transitions(
    schema: &AccessSchema,
    universe: &[(RelId, Tuple)],
    revealed: &BTreeSet<usize>,
    constants: &BTreeSet<Value>,
    config: &EmptinessConfig,
) -> Vec<(Sym, Tuple, Vec<usize>)> {
    let mut candidates = Vec::new();
    let universe_values: BTreeSet<Value> = universe
        .iter()
        .flat_map(|(_, t)| t.values().iter().copied())
        .collect();
    for method in schema.methods() {
        let mut groups: BTreeMap<Tuple, Vec<usize>> = BTreeMap::new();
        for (i, (relation, tuple)) in universe.iter().enumerate() {
            if *relation != method.relation_id() || revealed.contains(&i) {
                continue;
            }
            groups
                .entry(tuple.project(method.input_positions()))
                .or_default()
                .push(i);
        }
        for (binding, members) in &groups {
            let size = members.len().min(12);
            for mask in 1u32..(1 << size) {
                if (mask.count_ones() as usize) > config.max_response_size {
                    continue;
                }
                let added: Vec<usize> = (0..size)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| members[i])
                    .collect();
                candidates.push((method.name_sym(), binding.clone(), added));
            }
        }
        // Empty responses with bounded candidate bindings.
        let mut values: BTreeSet<Value> = universe_values.clone();
        values.extend(constants.iter().copied());
        values.insert(Value::str("\u{2606}any"));
        let values: Vec<Value> = values.into_iter().collect();
        let mut bindings: Vec<Vec<Value>> = vec![Vec::new()];
        for _ in 0..method.input_arity() {
            let mut next = Vec::new();
            for prefix in &bindings {
                for v in &values {
                    if next.len() >= config.max_empty_bindings {
                        break;
                    }
                    let mut extended = prefix.clone();
                    extended.push(*v);
                    next.push(extended);
                }
            }
            bindings = next;
        }
        bindings.truncate(config.max_empty_bindings);
        for binding in bindings {
            candidates.push((method.name_sym(), Tuple::new(binding), Vec::new()));
        }
    }
    candidates
}

fn reconstruct(
    parents: &SearchParents,
    end: &SearchState,
    universe: &[(RelId, Tuple)],
) -> AccessPath {
    let mut steps: Vec<(Access, Response)> = Vec::new();
    let mut cursor = end.clone();
    while let Some(Some((previous, access, added))) = parents.get(&cursor) {
        let response: Response = added.iter().map(|&i| universe[i].1.clone()).collect();
        steps.push((access.clone(), response));
        cursor = previous.clone();
    }
    steps.reverse();
    AccessPath::from_steps(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::a_automaton::Guard;
    use crate::translate::accltl_plus_to_automaton;
    use accltl_logic::vocabulary::{isbind_atom, post_atom, pre_atom};
    use accltl_logic::AccLtl;
    use accltl_paths::access::phone_directory_access_schema;
    use accltl_relational::{PosFormula, Term};

    fn jones_post() -> PosFormula {
        PosFormula::exists(
            vec!["s", "p", "h"],
            post_atom(
                "Address",
                vec![
                    Term::var("s"),
                    Term::var("p"),
                    Term::constant("Jones"),
                    Term::var("h"),
                ],
            ),
        )
    }

    #[test]
    fn satisfiable_formula_gives_nonempty_automaton() {
        let schema = phone_directory_access_schema();
        let f = AccLtl::finally(AccLtl::atom(jones_post()));
        let automaton = accltl_plus_to_automaton(&f);
        let outcome = bounded_emptiness(
            &automaton,
            &schema,
            &Instance::new(),
            &EmptinessConfig::default(),
        );
        let EmptinessOutcome::NonEmpty { witness } = outcome else {
            panic!("expected a witness");
        };
        // The witness is accepted by the automaton and satisfies the formula.
        let transitions = witness.transitions(&schema, &Instance::new()).unwrap();
        assert!(automaton.accepts_transitions(&transitions));
        assert!(f.satisfied_by_transitions(&transitions, false));
    }

    #[test]
    fn contradictory_formula_gives_empty_automaton() {
        let schema = phone_directory_access_schema();
        let jones = AccLtl::atom(jones_post());
        let f = AccLtl::and(vec![
            AccLtl::globally(AccLtl::not(jones.clone())),
            AccLtl::finally(jones),
        ]);
        let automaton = accltl_plus_to_automaton(&f);
        assert_eq!(
            bounded_emptiness(
                &automaton,
                &schema,
                &Instance::new(),
                &EmptinessConfig::default()
            ),
            EmptinessOutcome::Empty
        );
    }

    #[test]
    fn dataflow_automaton_needs_two_stages() {
        // Accept paths where an AcM1 access uses a name already present in
        // Address^pre: built directly as an automaton (state 0 = waiting,
        // state 1 = done).
        let schema = phone_directory_access_schema();
        let mut automaton = AAutomaton::new(2, 0);
        automaton.add_transition(0, Guard::always(), 0);
        let dataflow_guard = PosFormula::exists(
            vec!["n"],
            PosFormula::and(vec![
                isbind_atom("AcM1", vec![Term::var("n")]),
                PosFormula::exists(
                    vec!["s", "p", "h"],
                    pre_atom(
                        "Address",
                        vec![
                            Term::var("s"),
                            Term::var("p"),
                            Term::var("n"),
                            Term::var("h"),
                        ],
                    ),
                ),
            ]),
        );
        automaton.add_transition(0, Guard::positive(dataflow_guard), 1);
        automaton.mark_accepting(1);

        let outcome = bounded_emptiness(
            &automaton,
            &schema,
            &Instance::new(),
            &EmptinessConfig::default(),
        );
        let EmptinessOutcome::NonEmpty { witness } = outcome else {
            panic!("expected a witness");
        };
        assert!(witness.len() >= 2);
        let transitions = witness.transitions(&schema, &Instance::new()).unwrap();
        assert!(automaton.accepts_transitions(&transitions));
    }

    #[test]
    fn empty_automaton_with_no_accepting_state() {
        let schema = phone_directory_access_schema();
        let mut automaton = AAutomaton::new(2, 0);
        automaton.add_transition(0, Guard::always(), 1);
        assert_eq!(
            bounded_emptiness(
                &automaton,
                &schema,
                &Instance::new(),
                &EmptinessConfig::default()
            ),
            EmptinessOutcome::Empty
        );
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let schema = phone_directory_access_schema();
        let f = AccLtl::and(vec![
            AccLtl::finally(AccLtl::atom(jones_post())),
            AccLtl::finally(AccLtl::atom(PosFormula::exists(
                vec!["n", "p", "s", "ph"],
                pre_atom(
                    "Mobile#",
                    vec![
                        Term::var("n"),
                        Term::var("p"),
                        Term::var("s"),
                        Term::var("ph"),
                    ],
                ),
            ))),
        ]);
        let automaton = accltl_plus_to_automaton(&f);
        let outcome = bounded_emptiness(
            &automaton,
            &schema,
            &Instance::new(),
            &EmptinessConfig {
                max_states: 1,
                ..EmptinessConfig::default()
            },
        );
        assert_eq!(outcome, EmptinessOutcome::Unknown);
    }
}
