//! Emptiness of A-automata (Theorem 4.6).
//!
//! The paper's proof goes through the chain decomposition (Lemma 4.9,
//! implemented in [`crate::progressive`]) and a reduction of each progressive
//! automaton to containment of a Datalog program in a positive query (Lemma
//! 4.10, with Proposition 4.11's containment test implemented in
//! `accltl-relational::datalog_containment`).  As recorded in `DESIGN.md`,
//! this crate replaces the middle step by a direct, bounded product search:
//! automaton states are explored jointly with the facts revealed so far,
//! drawn from the canonical databases of the guards' positive parts — the
//! same witness space the Datalog program of Lemma 4.10 ranges over (its
//! `Background` relations are populated by homomorphic images of the guard
//! queries).  A witness path returned by the search is always genuine;
//! emptiness verdicts are exact relative to the configured caps.
//!
//! The product search runs on the shared frontier engine
//! ([`accltl_paths::engine`]): this module contributes the `AutomatonOracle`
//! (pre-compiled guards, per-candidate transition-structure overlays), while
//! universe indexing, frontier dedup, parent links and parallel layer
//! expansion are the engine's.  Per-transition guard sentences are memoized
//! through one `accltl_relational::GuardCache` shared across all chains of a
//! [`bounded_emptiness`] call (sentence ids are structural, so the repeated
//! guards the chain decomposition produces share entries); candidates
//! differing only in facts a sentence never mentions — typically the
//! `IsBind` fact — share one homomorphism search.
//! `ACCLTL_DISABLE_GUARD_CACHE=1` selects the uncached path with
//! byte-identical verdicts, witnesses and guard-budget accounting
//! ([`EmptinessConfig::max_guard_checks`] counts consults, cached or not);
//! [`bounded_emptiness_with_stats`] surfaces the hit/miss counters.

use std::collections::BTreeSet;
use std::sync::Arc;

use accltl_logic::vocabulary::{base_relation, TransitionVocab};
use accltl_paths::engine::{
    Candidate, EmptyBindingMode, EngineConfig, EngineOutcome, FactUniverse, FrontierEngine,
    StepOracle, StepOutcome,
};
use accltl_paths::{AccessPath, AccessSchema};
use accltl_relational::{
    GuardCache, GuardCacheStats, Instance, InstanceOverlay, RelId, Sym, Tuple, Value,
};

use crate::a_automaton::{AAutomaton, CompiledGuard};
use crate::progressive::chain_decomposition;

/// Configuration for the bounded emptiness search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptinessConfig {
    /// Maximum number of (automaton state, revealed facts) pairs explored.
    pub max_states: usize,
    /// Maximum number of tuples revealed by one response.
    pub max_response_size: usize,
    /// Cap on candidate bindings for empty responses, per method.
    pub max_empty_bindings: usize,
    /// Cap on total guard *consults* across the whole search.  A consult is
    /// a homomorphism test (or a verdict-cache hit replaying one — the count
    /// is identical either way, keeping budget cutoffs cache-independent),
    /// so this bounds the dominant cost; exceeding it yields
    /// [`EmptinessOutcome::Unknown`], never a wrong verdict.
    pub max_guard_checks: usize,
    /// Worker threads for frontier expansion; `0` reads the
    /// `ACCLTL_SEARCH_THREADS` environment variable (default 1).  Verdicts
    /// and witnesses do not depend on the thread count.
    pub threads: usize,
}

impl Default for EmptinessConfig {
    fn default() -> Self {
        EmptinessConfig {
            max_states: 100_000,
            max_response_size: 3,
            max_empty_bindings: 16,
            max_guard_checks: 500_000,
            threads: 0,
        }
    }
}

/// Outcome of the emptiness check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmptinessOutcome {
    /// The language is non-empty; a witness access path is returned.
    NonEmpty {
        /// An access path accepted by the automaton.
        witness: AccessPath,
    },
    /// No accepted path exists within the bounded witness space.
    Empty,
    /// The state budget was exhausted.
    Unknown,
}

impl EmptinessOutcome {
    /// True if a witness was found.
    #[must_use]
    pub fn is_nonempty(&self) -> bool {
        matches!(self, EmptinessOutcome::NonEmpty { .. })
    }
}

/// Checks emptiness of the automaton over access paths of the given schema,
/// starting from the given initial instance.
///
/// The automaton is first decomposed into progressive chains (Lemma 4.9); the
/// language is non-empty iff some chain is non-empty, and the chains are
/// searched in order.
#[must_use]
pub fn bounded_emptiness(
    automaton: &AAutomaton,
    schema: &AccessSchema,
    initial: &Instance,
    config: &EmptinessConfig,
) -> EmptinessOutcome {
    bounded_emptiness_with_stats(automaton, schema, initial, config).0
}

/// [`bounded_emptiness`], also returning the guard-verdict cache counters
/// accumulated across all chains (every consult counts as a miss when the
/// cache is disabled, so cached and uncached runs report the same total).
#[must_use]
pub fn bounded_emptiness_with_stats(
    automaton: &AAutomaton,
    schema: &AccessSchema,
    initial: &Instance,
    config: &EmptinessConfig,
) -> (EmptinessOutcome, GuardCacheStats) {
    // One cache for every chain: sentence ids are structural, so the guard
    // copies the decomposition spreads over chains share entries.
    let cache = GuardCache::new();
    let chains = chain_decomposition(automaton);
    if chains.is_empty() {
        return (EmptinessOutcome::Empty, cache.stats());
    }
    let mut any_unknown = false;
    // Split the guard budget evenly across chains so one expensive chain
    // cannot starve a cheaply non-empty later chain into Unknown.
    let chain_config = EmptinessConfig {
        max_guard_checks: (config.max_guard_checks / chains.len()).max(1),
        ..*config
    };
    for chain in &chains {
        match search_chain(chain, schema, initial, &chain_config, &cache) {
            EmptinessOutcome::NonEmpty { witness } => {
                return (EmptinessOutcome::NonEmpty { witness }, cache.stats())
            }
            EmptinessOutcome::Unknown => any_unknown = true,
            EmptinessOutcome::Empty => {}
        }
    }
    let outcome = if any_unknown {
        EmptinessOutcome::Unknown
    } else {
        EmptinessOutcome::Empty
    };
    (outcome, cache.stats())
}

/// The [`StepOracle`] of the product emptiness search: the logical state is
/// the automaton state; a candidate fires every outgoing transition whose
/// (pre-compiled) guard holds on the candidate's transition-structure
/// overlay.
struct AutomatonOracle<'a> {
    automaton: &'a AAutomaton,
    vocab: TransitionVocab,
    /// Per-transition compiled guards, indexed like `automaton.transitions`.
    compiled: Vec<CompiledGuard>,
    /// Automaton state → indices of its outgoing transitions.
    outgoing: Vec<Vec<usize>>,
    /// The search's guard-verdict cache, shared across chains and worker
    /// threads; disabled it only counts consults.
    cache: &'a GuardCache,
}

impl<'a> AutomatonOracle<'a> {
    fn new(automaton: &'a AAutomaton, schema: &AccessSchema, cache: &'a GuardCache) -> Self {
        let compiled = automaton
            .transitions
            .iter()
            .map(|t| t.guard.compile())
            .collect();
        let mut outgoing = vec![Vec::new(); automaton.state_count];
        for (index, transition) in automaton.transitions.iter().enumerate() {
            outgoing[transition.from].push(index);
        }
        AutomatonOracle {
            automaton,
            vocab: TransitionVocab::new(schema),
            compiled,
            outgoing,
            cache,
        }
    }
}

/// Per-state context of the [`AutomatonOracle`]: the `pre ∪ post` base of
/// all candidate structures out of one state, plus the state's verdict-cache
/// size gate (decided once here, so the per-consult fast path is a branch).
struct AutomatonCtx {
    base: Arc<Instance>,
    memoize: bool,
}

impl StepOracle for AutomatonOracle<'_> {
    type State = usize;
    type StateCtx = AutomatonCtx;

    fn prepare(&self, before: &InstanceOverlay) -> AutomatonCtx {
        let base = Arc::new(self.vocab.state_structure(before));
        // Size-gate memoization per state and pin the base so verdicts
        // fingerprinted against its address stay replayable (see
        // `relational::guard_cache`).
        let memoize = self.cache.gate_and_pin(&base);
        AutomatonCtx { base, memoize }
    }

    fn step(
        &self,
        state: &usize,
        ctx: &AutomatonCtx,
        candidate: &Candidate<'_>,
        universe: &FactUniverse,
    ) -> StepOutcome<usize> {
        let structure = self.vocab.structure_overlay(
            &ctx.base,
            candidate.added.iter().map(|&i| {
                let (rel, tuple) = universe.fact(i);
                (rel, tuple.clone())
            }),
            candidate.method.name_sym(),
            Some(candidate.binding),
        );
        let mut successors = Vec::new();
        let mut cost = 0usize;
        let mut accept = false;
        for &index in &self.outgoing[*state] {
            cost += 1;
            if !self.compiled[index].satisfied_by_cached(&structure, self.cache, ctx.memoize) {
                continue;
            }
            let to = self.automaton.transitions[index].to;
            if self.automaton.accepting.contains(&to) {
                accept = true;
                break;
            }
            successors.push(to);
        }
        StepOutcome {
            successors,
            accept,
            cost,
        }
    }

    fn cache_stats(&self) -> Option<GuardCacheStats> {
        Some(self.cache.stats())
    }
}

fn search_chain(
    automaton: &AAutomaton,
    schema: &AccessSchema,
    initial: &Instance,
    config: &EmptinessConfig,
    cache: &GuardCache,
) -> EmptinessOutcome {
    // The empty path is accepted iff the initial state is accepting.
    if automaton.accepting.contains(&automaton.initial) {
        return EmptinessOutcome::NonEmpty {
            witness: AccessPath::new(),
        };
    }

    let universe = FactUniverse::new(guard_fact_universe(automaton, schema, initial));
    let constants: BTreeSet<Value> = automaton.constants.clone();
    let oracle = AutomatonOracle::new(automaton, schema, cache);
    let engine = FrontierEngine::new(
        schema,
        &oracle,
        universe,
        Arc::new(initial.clone()),
        &constants,
        EngineConfig {
            max_states: config.max_states,
            max_response_size: config.max_response_size,
            max_empty_bindings: config.max_empty_bindings,
            max_step_cost: config.max_guard_checks,
            grounded: false,
            empty_bindings: EmptyBindingMode::Enumerate,
            threads: config.threads,
        },
    );
    match engine.run(automaton.initial) {
        EngineOutcome::Witness { witness } => EmptinessOutcome::NonEmpty { witness },
        EngineOutcome::Exhausted => EmptinessOutcome::Empty,
        // A truncated witness space (over-wide response groups) proves
        // nothing, exactly like an exhausted budget.
        EngineOutcome::Truncated { .. }
        | EngineOutcome::OutOfStates { .. }
        | EngineOutcome::OutOfBudget { .. } => EmptinessOutcome::Unknown,
    }
}

/// The canonical fact universe of an automaton: canonical databases of every
/// guard's positive part, mapped back to the base relations, plus the initial
/// instance.
///
/// When a guard conjoins an `IsBind_AcM(c̄)` atom with constant arguments and
/// a data atom over the method's relation, the canonical fact is additionally
/// added with the method's input positions overwritten by those constants: a
/// well-formed response to that access must agree with the binding, so the
/// witness fact the guard is looking for carries the constants (this is how
/// the Example 2.3 long-term-relevance automata find their witnesses).
fn guard_fact_universe(
    automaton: &AAutomaton,
    schema: &AccessSchema,
    initial: &Instance,
) -> Vec<(RelId, Tuple)> {
    let mut facts: BTreeSet<(RelId, Tuple)> =
        initial.facts().map(|(r, t)| (r, t.clone())).collect();
    for (index, transition) in automaton.transitions.iter().enumerate() {
        let positive = &transition.guard.positive;
        for (disjunct_index, icq) in positive.to_inequality_union().iter().enumerate() {
            let renamed = icq
                .cq
                .rename_vars(|v| format!("g{index}d{disjunct_index}\u{1fa}{v}"));
            // Constant bindings asserted by IsBind atoms of this disjunct.
            let mut constant_bindings: Vec<(Sym, Vec<Value>)> = Vec::new();
            for atom in &renamed.atoms {
                if let Some(method) =
                    accltl_logic::vocabulary::parse_isbind(atom.predicate.as_str())
                {
                    let values: Option<Vec<Value>> =
                        atom.terms.iter().map(|t| t.as_const().copied()).collect();
                    if let Some(values) = values {
                        constant_bindings.push((Sym::new(method), values));
                    }
                }
            }
            let (canonical, _) = renamed.canonical_instance();
            for (predicate, tuple) in canonical.facts() {
                if let Some(base) = base_relation(predicate.as_str()) {
                    let base = RelId::new(base);
                    facts.insert((base, tuple.clone()));
                    for (method_name, values) in &constant_bindings {
                        let Some(method) = schema.method(*method_name) else {
                            continue;
                        };
                        if method.relation_id() != base || values.len() != method.input_arity() {
                            continue;
                        }
                        let mut overwritten = tuple.values().to_vec();
                        for (&position, value) in method.input_positions().iter().zip(values) {
                            if position < overwritten.len() {
                                overwritten[position] = *value;
                            }
                        }
                        facts.insert((base, Tuple::new(overwritten)));
                    }
                }
            }
        }
    }
    facts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::a_automaton::Guard;
    use crate::translate::accltl_plus_to_automaton;
    use accltl_logic::vocabulary::{isbind_atom, post_atom, pre_atom};
    use accltl_logic::AccLtl;
    use accltl_paths::access::phone_directory_access_schema;
    use accltl_relational::{PosFormula, Term};

    fn jones_post() -> PosFormula {
        PosFormula::exists(
            vec!["s", "p", "h"],
            post_atom(
                "Address",
                vec![
                    Term::var("s"),
                    Term::var("p"),
                    Term::constant("Jones"),
                    Term::var("h"),
                ],
            ),
        )
    }

    #[test]
    fn satisfiable_formula_gives_nonempty_automaton() {
        let schema = phone_directory_access_schema();
        let f = AccLtl::finally(AccLtl::atom(jones_post()));
        let automaton = accltl_plus_to_automaton(&f);
        let outcome = bounded_emptiness(
            &automaton,
            &schema,
            &Instance::new(),
            &EmptinessConfig::default(),
        );
        let EmptinessOutcome::NonEmpty { witness } = outcome else {
            panic!("expected a witness");
        };
        // The witness is accepted by the automaton and satisfies the formula.
        let transitions = witness.transitions(&schema, &Instance::new()).unwrap();
        assert!(automaton.accepts_transitions(&transitions));
        assert!(f.satisfied_by_transitions(&transitions, false));
    }

    #[test]
    fn contradictory_formula_gives_empty_automaton() {
        let schema = phone_directory_access_schema();
        let jones = AccLtl::atom(jones_post());
        let f = AccLtl::and(vec![
            AccLtl::globally(AccLtl::not(jones.clone())),
            AccLtl::finally(jones),
        ]);
        let automaton = accltl_plus_to_automaton(&f);
        assert_eq!(
            bounded_emptiness(
                &automaton,
                &schema,
                &Instance::new(),
                &EmptinessConfig::default()
            ),
            EmptinessOutcome::Empty
        );
    }

    #[test]
    fn dataflow_automaton_needs_two_stages() {
        // Accept paths where an AcM1 access uses a name already present in
        // Address^pre: built directly as an automaton (state 0 = waiting,
        // state 1 = done).
        let schema = phone_directory_access_schema();
        let mut automaton = AAutomaton::new(2, 0);
        automaton.add_transition(0, Guard::always(), 0);
        let dataflow_guard = PosFormula::exists(
            vec!["n"],
            PosFormula::and(vec![
                isbind_atom("AcM1", vec![Term::var("n")]),
                PosFormula::exists(
                    vec!["s", "p", "h"],
                    pre_atom(
                        "Address",
                        vec![
                            Term::var("s"),
                            Term::var("p"),
                            Term::var("n"),
                            Term::var("h"),
                        ],
                    ),
                ),
            ]),
        );
        automaton.add_transition(0, Guard::positive(dataflow_guard), 1);
        automaton.mark_accepting(1);

        let outcome = bounded_emptiness(
            &automaton,
            &schema,
            &Instance::new(),
            &EmptinessConfig::default(),
        );
        let EmptinessOutcome::NonEmpty { witness } = outcome else {
            panic!("expected a witness");
        };
        assert!(witness.len() >= 2);
        let transitions = witness.transitions(&schema, &Instance::new()).unwrap();
        assert!(automaton.accepts_transitions(&transitions));
    }

    #[test]
    fn empty_automaton_with_no_accepting_state() {
        let schema = phone_directory_access_schema();
        let mut automaton = AAutomaton::new(2, 0);
        automaton.add_transition(0, Guard::always(), 1);
        assert_eq!(
            bounded_emptiness(
                &automaton,
                &schema,
                &Instance::new(),
                &EmptinessConfig::default()
            ),
            EmptinessOutcome::Empty
        );
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let schema = phone_directory_access_schema();
        let f = AccLtl::and(vec![
            AccLtl::finally(AccLtl::atom(jones_post())),
            AccLtl::finally(AccLtl::atom(PosFormula::exists(
                vec!["n", "p", "s", "ph"],
                pre_atom(
                    "Mobile#",
                    vec![
                        Term::var("n"),
                        Term::var("p"),
                        Term::var("s"),
                        Term::var("ph"),
                    ],
                ),
            ))),
        ]);
        let automaton = accltl_plus_to_automaton(&f);
        let outcome = bounded_emptiness(
            &automaton,
            &schema,
            &Instance::new(),
            &EmptinessConfig {
                max_states: 1,
                ..EmptinessConfig::default()
            },
        );
        assert_eq!(outcome, EmptinessOutcome::Unknown);
    }
}
