//! Emptiness of A-automata (Theorem 4.6).
//!
//! The paper's proof goes through the chain decomposition (Lemma 4.9,
//! implemented in [`crate::progressive`]) and a reduction of each progressive
//! automaton to containment of a Datalog program in a positive query (Lemma
//! 4.10, with Proposition 4.11's containment test implemented in
//! `accltl-relational::datalog_containment`).  As recorded in `DESIGN.md`,
//! this crate replaces the middle step by a direct, bounded product search:
//! automaton states are explored jointly with the facts revealed so far,
//! drawn from the canonical databases of the guards' positive parts — the
//! same witness space the Datalog program of Lemma 4.10 ranges over (its
//! `Background` relations are populated by homomorphic images of the guard
//! queries).  A witness path returned by the search is always genuine;
//! emptiness verdicts are exact relative to the configured caps.
//!
//! The product search runs on the shared frontier engine
//! ([`accltl_paths::engine`]): this module contributes the `AutomatonOracle`
//! (pre-compiled guards, per-candidate transition-structure overlays), while
//! universe indexing, frontier dedup, parent links and parallel layer
//! expansion are the engine's.  Per-transition guard sentences are memoized
//! through one `accltl_relational::GuardCache` shared across all chains of a
//! [`bounded_emptiness`] call (sentence ids are structural, so the repeated
//! guards the chain decomposition produces share entries); candidates
//! differing only in facts a sentence never mentions — typically the
//! `IsBind` fact — share one homomorphism search.
//! `ACCLTL_DISABLE_GUARD_CACHE=1` (read once, by
//! `accltl_paths::engine::EngineConfig::from_env`) selects the uncached path
//! with byte-identical verdicts, witnesses and guard-budget accounting
//! ([`EmptinessConfig::max_guard_checks`] counts consults, cached or not);
//! [`bounded_emptiness_report`] surfaces the hit/miss counters in its
//! [`SearchReport`].
//!
//! [`bounded_emptiness_batch`] checks many automata through one
//! [`BatchEngine`]: chains are scheduled in waves (every live automaton's
//! current chain searches concurrently, then advances), so overlay bases,
//! prepared transition structures and one root guard cache are shared across
//! the whole batch, while each automaton's chain order, early exit on a
//! witness, per-chain budget split and consult totals stay byte-identical to
//! a standalone [`bounded_emptiness_report`] call.

use std::collections::BTreeSet;
use std::sync::Arc;

use accltl_logic::vocabulary::{base_relation, TransitionVocab};
use accltl_paths::engine::{
    BatchEngine, Candidate, EmptyBindingMode, EngineConfig, EngineOutcome, FactUniverse,
    PropertySpec, SearchReport, StepOracle, StepOutcome,
};
use accltl_paths::{AccessPath, AccessSchema};
use accltl_relational::{
    GuardCache, GuardCacheStats, Instance, InstanceOverlay, InstanceView, RelId, ScanView, Sym,
    Tuple, Value,
};

use crate::a_automaton::{AAutomaton, CompiledGuard};
use crate::progressive::chain_decomposition;

/// Configuration for the bounded emptiness search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptinessConfig {
    /// Maximum number of (automaton state, revealed facts) pairs explored.
    pub max_states: usize,
    /// Maximum number of tuples revealed by one response.
    pub max_response_size: usize,
    /// Cap on candidate bindings for empty responses, per method.
    pub max_empty_bindings: usize,
    /// Cap on total guard *consults* across the whole search.  A consult is
    /// a homomorphism test (or a verdict-cache hit replaying one — the count
    /// is identical either way, keeping budget cutoffs cache-independent),
    /// so this bounds the dominant cost; exceeding it yields
    /// [`EmptinessOutcome::Unknown`], never a wrong verdict.
    pub max_guard_checks: usize,
    /// Worker threads for frontier expansion; `0` reads the
    /// `ACCLTL_SEARCH_THREADS` environment variable (default 1).  Verdicts
    /// and witnesses do not depend on the thread count.
    pub threads: usize,
}

impl Default for EmptinessConfig {
    fn default() -> Self {
        EmptinessConfig {
            max_states: 100_000,
            max_response_size: 3,
            max_empty_bindings: 16,
            max_guard_checks: 500_000,
            threads: 0,
        }
    }
}

/// Outcome of the emptiness check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmptinessOutcome {
    /// The language is non-empty; a witness access path is returned.
    NonEmpty {
        /// An access path accepted by the automaton.
        witness: AccessPath,
    },
    /// No accepted path exists within the bounded witness space.
    Empty,
    /// The state budget was exhausted.
    Unknown,
}

impl EmptinessOutcome {
    /// True if a witness was found.
    #[must_use]
    pub fn is_nonempty(&self) -> bool {
        matches!(self, EmptinessOutcome::NonEmpty { .. })
    }
}

/// Checks emptiness of one automaton, returning the verdict with budget and
/// guard-cache accounting.
///
/// The automaton is first decomposed into progressive chains (Lemma 4.9); the
/// language is non-empty iff some chain is non-empty, and the chains are
/// searched in order with the guard budget split evenly across them.
#[must_use]
pub fn bounded_emptiness_report(
    automaton: &AAutomaton,
    schema: &AccessSchema,
    initial: &Instance,
    config: &EmptinessConfig,
) -> SearchReport<EmptinessOutcome> {
    bounded_emptiness_batch(&[automaton], schema, initial, config)
        .pop()
        .expect("one automaton in, one report out")
}

/// Checks emptiness of many automata through one [`BatchEngine`] (see the
/// module docs for the sharing and determinism contract).  Reports come back
/// in input order; each is byte-identical to a standalone
/// [`bounded_emptiness_report`] of that automaton, apart from the
/// non-contractual cache hit/miss split.
#[must_use]
pub fn bounded_emptiness_batch(
    automata: &[&AAutomaton],
    schema: &AccessSchema,
    initial: &Instance,
    config: &EmptinessConfig,
) -> Vec<SearchReport<EmptinessOutcome>> {
    let mut engine = EngineConfig::from_env()
        .max_states(config.max_states)
        .max_response_size(config.max_response_size)
        .max_empty_bindings(config.max_empty_bindings)
        .max_guard_checks(config.max_guard_checks);
    if config.threads > 0 {
        engine = engine.threads(config.threads);
    }
    bounded_emptiness_batch_with_config(automata, schema, initial, engine)
}

/// [`bounded_emptiness_batch`] driven by an explicit [`EngineConfig`] (the
/// batch-request path): budgets, threads and the index/guard-cache ablation
/// flags are taken verbatim; `max_guard_checks` is the *total* per-automaton
/// guard budget, split evenly across its chains.
#[must_use]
pub fn bounded_emptiness_batch_with_config(
    automata: &[&AAutomaton],
    schema: &AccessSchema,
    initial: &Instance,
    engine: EngineConfig,
) -> Vec<SearchReport<EmptinessOutcome>> {
    let _batch_span =
        accltl_obs::trace::span_fields("emptiness.batch", &[("automata", automata.len() as u64)]);
    // One root cache for the whole batch: sentence ids are structural, so
    // guard copies shared between chains — and between automata — share
    // entries.  Every automaton consults through its own share handle, so
    // per-automaton totals equal the sequential ones.
    let cache = GuardCache::with_enabled(!engine.disable_guard_cache);
    let handles: Vec<GuardCache> = automata.iter().map(|_| cache.share()).collect();
    let chains: Vec<Vec<AAutomaton>> = automata
        .iter()
        .map(|automaton| chain_decomposition(automaton))
        .collect();
    // Split each automaton's guard budget evenly across its chains so one
    // expensive chain cannot starve a cheaply non-empty later chain into
    // Unknown.
    let budgets: Vec<usize> = chains
        .iter()
        .map(|chains| (engine.max_guard_checks / chains.len().max(1)).max(1))
        .collect();

    struct Slot {
        cursor: usize,
        any_unknown: bool,
        explored: usize,
        cost: usize,
        verdict: Option<EmptinessOutcome>,
    }
    let mut slots: Vec<Slot> = chains
        .iter()
        .map(|chains| Slot {
            cursor: 0,
            any_unknown: false,
            explored: 0,
            cost: 0,
            verdict: chains.is_empty().then_some(EmptinessOutcome::Empty),
        })
        .collect();

    // Wave scheduling: every live automaton's *current* chain runs in one
    // batch (sharing configuration-space work), then each advances to its
    // next chain — or its verdict — exactly as the sequential chain loop
    // would.
    let mut batch: BatchEngine<'_, AutomatonOracle<'_>> =
        BatchEngine::new(schema, Arc::new(initial.clone()));
    loop {
        let mut specs = Vec::new();
        let mut wave_slots = Vec::new();
        for (index, slot) in slots.iter_mut().enumerate() {
            if slot.verdict.is_some() {
                continue;
            }
            if slot.cursor >= chains[index].len() {
                slot.verdict = Some(if slot.any_unknown {
                    EmptinessOutcome::Unknown
                } else {
                    EmptinessOutcome::Empty
                });
                continue;
            }
            let chain = &chains[index][slot.cursor];
            // The empty path is accepted iff the chain's initial state is
            // accepting.
            if chain.accepting.contains(&chain.initial) {
                slot.verdict = Some(EmptinessOutcome::NonEmpty {
                    witness: AccessPath::new(),
                });
                continue;
            }
            let universe = FactUniverse::new(guard_fact_universe(chain, schema, initial));
            let oracle = AutomatonOracle::new(
                chain,
                schema,
                &handles[index],
                engine.disable_indexes,
                engine.index_cutoff,
            );
            specs.push(PropertySpec {
                oracle,
                start: chain.initial,
                universe,
                constants: chain.constants.clone(),
                config: engine
                    .max_guard_checks(budgets[index])
                    .grounded(false)
                    .empty_bindings(EmptyBindingMode::Enumerate),
            });
            wave_slots.push(index);
        }
        if specs.is_empty() {
            break;
        }
        for (index, report) in wave_slots.into_iter().zip(batch.run(specs)) {
            let slot = &mut slots[index];
            slot.explored += report.explored;
            slot.cost += report.cost;
            match report.outcome {
                EngineOutcome::Witness { witness } => {
                    slot.verdict = Some(EmptinessOutcome::NonEmpty { witness });
                }
                EngineOutcome::Exhausted => slot.cursor += 1,
                // A truncated witness space (over-wide response groups)
                // proves nothing, exactly like an exhausted budget.
                EngineOutcome::Truncated { .. }
                | EngineOutcome::OutOfStates { .. }
                | EngineOutcome::OutOfBudget { .. } => {
                    slot.any_unknown = true;
                    slot.cursor += 1;
                }
            }
        }
    }
    // One engine drove every wave, so its cache counters accumulate across
    // waves; snapshot them once for all reports.
    let engine_cache = batch.engine_cache_stats();
    let reports: Vec<SearchReport<EmptinessOutcome>> = slots
        .into_iter()
        .zip(&handles)
        .map(|(slot, handle)| SearchReport {
            verdict: slot.verdict.expect("every automaton reached a verdict"),
            explored: slot.explored,
            cost: slot.cost,
            cache: handle.stats(),
            engine_cache,
        })
        .collect();
    // Reconcile the per-report legacy counters into the process-wide
    // registry — once per report, at assembly time, matching the bounded
    // front-end so `search.*`/`guard_cache.*` registry deltas equal summed
    // report structs regardless of which front-end ran.
    for report in &reports {
        accltl_obs::metrics::add("search.explored", report.explored as u64);
        accltl_obs::metrics::add("search.cost", report.cost as u64);
        accltl_obs::metrics::add("guard_cache.hits", report.cache.hits);
        accltl_obs::metrics::add("guard_cache.misses", report.cache.misses);
        accltl_obs::trace::event(
            "emptiness.report",
            &[
                ("explored", report.explored as u64),
                ("cost", report.cost as u64),
                ("cache_hits", report.cache.hits),
                ("cache_misses", report.cache.misses),
            ],
        );
    }
    reports
}

/// Deprecated alias of [`bounded_emptiness_report`] returning the verdict
/// alone; kept so existing callers compile unchanged.
#[must_use]
pub fn bounded_emptiness(
    automaton: &AAutomaton,
    schema: &AccessSchema,
    initial: &Instance,
    config: &EmptinessConfig,
) -> EmptinessOutcome {
    bounded_emptiness_report(automaton, schema, initial, config).verdict
}

/// Deprecated alias of [`bounded_emptiness_report`] returning the historical
/// `(verdict, stats)` pair; kept so existing callers compile unchanged.
/// Every consult counts as a miss when the cache is disabled, so cached and
/// uncached runs report the same total.
#[must_use]
pub fn bounded_emptiness_with_stats(
    automaton: &AAutomaton,
    schema: &AccessSchema,
    initial: &Instance,
    config: &EmptinessConfig,
) -> (EmptinessOutcome, GuardCacheStats) {
    let report = bounded_emptiness_report(automaton, schema, initial, config);
    (report.verdict, report.cache)
}

/// The [`StepOracle`] of the product emptiness search: the logical state is
/// the automaton state; a candidate fires every outgoing transition whose
/// (pre-compiled) guard holds on the candidate's transition-structure
/// overlay.
struct AutomatonOracle<'a> {
    automaton: &'a AAutomaton,
    vocab: TransitionVocab,
    /// Per-transition compiled guards, indexed like `automaton.transitions`.
    compiled: Vec<CompiledGuard>,
    /// Automaton state → indices of its outgoing transitions.
    outgoing: Vec<Vec<usize>>,
    /// The search's guard-verdict cache, shared across chains and worker
    /// threads; disabled it only counts consults.
    cache: &'a GuardCache,
    /// Evaluate guards by scanning instead of through value indexes
    /// ([`EngineConfig::disable_indexes`]); guard caching is unaffected.
    scan: bool,
    /// Per-relation size below which transition-structure bases are scanned
    /// rather than indexed ([`EngineConfig::index_cutoff`]), stamped onto
    /// each state's base in `prepare`.
    index_cutoff: usize,
}

impl<'a> AutomatonOracle<'a> {
    fn new(
        automaton: &'a AAutomaton,
        schema: &AccessSchema,
        cache: &'a GuardCache,
        scan: bool,
        index_cutoff: usize,
    ) -> Self {
        let compiled = automaton
            .transitions
            .iter()
            .map(|t| t.guard.compile())
            .collect();
        let mut outgoing = vec![Vec::new(); automaton.state_count];
        for (index, transition) in automaton.transitions.iter().enumerate() {
            outgoing[transition.from].push(index);
        }
        AutomatonOracle {
            automaton,
            vocab: TransitionVocab::new(schema),
            compiled,
            outgoing,
            cache,
            scan,
            index_cutoff,
        }
    }

    fn guard_holds(&self, index: usize, structure: &impl InstanceView, memoize: bool) -> bool {
        if self.scan {
            return self.compiled[index].satisfied_by_cached(
                &ScanView(structure),
                self.cache,
                memoize,
            );
        }
        self.compiled[index].satisfied_by_cached(structure, self.cache, memoize)
    }
}

/// Per-state context of the [`AutomatonOracle`]: the `pre ∪ post` base of
/// all candidate structures out of one state, plus the state's verdict-cache
/// size gate (decided once here, so the per-consult fast path is a branch).
struct AutomatonCtx {
    base: Arc<Instance>,
    memoize: bool,
}

impl StepOracle for AutomatonOracle<'_> {
    type State = usize;
    type StateCtx = AutomatonCtx;
    /// The candidate's transition structure: its response pushed as `Rpost`
    /// facts (plus the `IsBind` fact) onto the state's `pre ∪ post` base.
    /// Independent of the automaton state being stepped, so the engine
    /// shares it across states and across batched automata.
    type CandidateCtx = InstanceOverlay;

    fn prepare(&self, before: &InstanceOverlay) -> AutomatonCtx {
        let mut base = self.vocab.state_structure(before);
        base.set_index_cutoff(self.index_cutoff);
        // Size-gate memoization per state (content-addressed keys need no
        // pinning — see `relational::guard_cache`).
        let memoize = self.cache.memoize_gate(&base);
        AutomatonCtx {
            base: Arc::new(base),
            memoize,
        }
    }

    fn prepare_candidate(
        &self,
        ctx: &AutomatonCtx,
        candidate: &Candidate<'_>,
        universe: &FactUniverse,
    ) -> InstanceOverlay {
        self.vocab.structure_overlay(
            &ctx.base,
            candidate.added.iter().map(|&i| {
                let (rel, tuple) = universe.fact(i);
                (rel, tuple.clone())
            }),
            candidate.method.name_sym(),
            Some(candidate.binding),
        )
    }

    fn step(
        &self,
        state: &usize,
        ctx: &AutomatonCtx,
        structure: &InstanceOverlay,
        _candidate: &Candidate<'_>,
        _universe: &FactUniverse,
    ) -> StepOutcome<usize> {
        let mut successors = Vec::new();
        let mut cost = 0usize;
        let mut accept = false;
        for &index in &self.outgoing[*state] {
            cost += 1;
            if !self.guard_holds(index, structure, ctx.memoize) {
                continue;
            }
            let to = self.automaton.transitions[index].to;
            if self.automaton.accepting.contains(&to) {
                accept = true;
                break;
            }
            successors.push(to);
        }
        StepOutcome {
            successors,
            accept,
            cost,
        }
    }

    fn cache_stats(&self) -> Option<GuardCacheStats> {
        Some(self.cache.stats())
    }

    /// `prepare` is a pure function of the revealed configuration given the
    /// batch-shared vocabulary and root-pinned cache, so contexts may be
    /// shared across properties that reach the same configuration.
    fn shares_ctx(&self) -> bool {
        true
    }
}

/// The canonical fact universe of an automaton: canonical databases of every
/// guard's positive part, mapped back to the base relations, plus the initial
/// instance.
///
/// When a guard conjoins an `IsBind_AcM(c̄)` atom with constant arguments and
/// a data atom over the method's relation, the canonical fact is additionally
/// added with the method's input positions overwritten by those constants: a
/// well-formed response to that access must agree with the binding, so the
/// witness fact the guard is looking for carries the constants (this is how
/// the Example 2.3 long-term-relevance automata find their witnesses).
fn guard_fact_universe(
    automaton: &AAutomaton,
    schema: &AccessSchema,
    initial: &Instance,
) -> Vec<(RelId, Tuple)> {
    let mut facts: BTreeSet<(RelId, Tuple)> =
        initial.facts().map(|(r, t)| (r, t.clone())).collect();
    for (index, transition) in automaton.transitions.iter().enumerate() {
        let positive = &transition.guard.positive;
        for (disjunct_index, icq) in positive.to_inequality_union().iter().enumerate() {
            let renamed = icq
                .cq
                .rename_vars(|v| format!("g{index}d{disjunct_index}\u{1fa}{v}"));
            // Constant bindings asserted by IsBind atoms of this disjunct.
            let mut constant_bindings: Vec<(Sym, Vec<Value>)> = Vec::new();
            for atom in &renamed.atoms {
                if let Some(method) =
                    accltl_logic::vocabulary::parse_isbind(atom.predicate.as_str())
                {
                    let values: Option<Vec<Value>> =
                        atom.terms.iter().map(|t| t.as_const().copied()).collect();
                    if let Some(values) = values {
                        constant_bindings.push((Sym::new(method), values));
                    }
                }
            }
            let (canonical, _) = renamed.canonical_instance();
            for (predicate, tuple) in canonical.facts() {
                if let Some(base) = base_relation(predicate.as_str()) {
                    let base = RelId::new(base);
                    facts.insert((base, tuple.clone()));
                    for (method_name, values) in &constant_bindings {
                        let Some(method) = schema.method(*method_name) else {
                            continue;
                        };
                        if method.relation_id() != base || values.len() != method.input_arity() {
                            continue;
                        }
                        let mut overwritten = tuple.values().to_vec();
                        for (&position, value) in method.input_positions().iter().zip(values) {
                            if position < overwritten.len() {
                                overwritten[position] = *value;
                            }
                        }
                        facts.insert((base, Tuple::new(overwritten)));
                    }
                }
            }
        }
    }
    facts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::a_automaton::Guard;
    use crate::translate::accltl_plus_to_automaton;
    use accltl_logic::vocabulary::{isbind_atom, post_atom, pre_atom};
    use accltl_logic::AccLtl;
    use accltl_paths::access::phone_directory_access_schema;
    use accltl_relational::{PosFormula, Term};

    fn jones_post() -> PosFormula {
        PosFormula::exists(
            vec!["s", "p", "h"],
            post_atom(
                "Address",
                vec![
                    Term::var("s"),
                    Term::var("p"),
                    Term::constant("Jones"),
                    Term::var("h"),
                ],
            ),
        )
    }

    #[test]
    fn satisfiable_formula_gives_nonempty_automaton() {
        let schema = phone_directory_access_schema();
        let f = AccLtl::finally(AccLtl::atom(jones_post()));
        let automaton = accltl_plus_to_automaton(&f);
        let outcome = bounded_emptiness(
            &automaton,
            &schema,
            &Instance::new(),
            &EmptinessConfig::default(),
        );
        let EmptinessOutcome::NonEmpty { witness } = outcome else {
            panic!("expected a witness");
        };
        // The witness is accepted by the automaton and satisfies the formula.
        let transitions = witness.transitions(&schema, &Instance::new()).unwrap();
        assert!(automaton.accepts_transitions(&transitions));
        assert!(f.satisfied_by_transitions(&transitions, false));
    }

    #[test]
    fn contradictory_formula_gives_empty_automaton() {
        let schema = phone_directory_access_schema();
        let jones = AccLtl::atom(jones_post());
        let f = AccLtl::and(vec![
            AccLtl::globally(AccLtl::not(jones.clone())),
            AccLtl::finally(jones),
        ]);
        let automaton = accltl_plus_to_automaton(&f);
        assert_eq!(
            bounded_emptiness(
                &automaton,
                &schema,
                &Instance::new(),
                &EmptinessConfig::default()
            ),
            EmptinessOutcome::Empty
        );
    }

    #[test]
    fn dataflow_automaton_needs_two_stages() {
        // Accept paths where an AcM1 access uses a name already present in
        // Address^pre: built directly as an automaton (state 0 = waiting,
        // state 1 = done).
        let schema = phone_directory_access_schema();
        let mut automaton = AAutomaton::new(2, 0);
        automaton.add_transition(0, Guard::always(), 0);
        let dataflow_guard = PosFormula::exists(
            vec!["n"],
            PosFormula::and(vec![
                isbind_atom("AcM1", vec![Term::var("n")]),
                PosFormula::exists(
                    vec!["s", "p", "h"],
                    pre_atom(
                        "Address",
                        vec![
                            Term::var("s"),
                            Term::var("p"),
                            Term::var("n"),
                            Term::var("h"),
                        ],
                    ),
                ),
            ]),
        );
        automaton.add_transition(0, Guard::positive(dataflow_guard), 1);
        automaton.mark_accepting(1);

        let outcome = bounded_emptiness(
            &automaton,
            &schema,
            &Instance::new(),
            &EmptinessConfig::default(),
        );
        let EmptinessOutcome::NonEmpty { witness } = outcome else {
            panic!("expected a witness");
        };
        assert!(witness.len() >= 2);
        let transitions = witness.transitions(&schema, &Instance::new()).unwrap();
        assert!(automaton.accepts_transitions(&transitions));
    }

    #[test]
    fn empty_automaton_with_no_accepting_state() {
        let schema = phone_directory_access_schema();
        let mut automaton = AAutomaton::new(2, 0);
        automaton.add_transition(0, Guard::always(), 1);
        assert_eq!(
            bounded_emptiness(
                &automaton,
                &schema,
                &Instance::new(),
                &EmptinessConfig::default()
            ),
            EmptinessOutcome::Empty
        );
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let schema = phone_directory_access_schema();
        let f = AccLtl::and(vec![
            AccLtl::finally(AccLtl::atom(jones_post())),
            AccLtl::finally(AccLtl::atom(PosFormula::exists(
                vec!["n", "p", "s", "ph"],
                pre_atom(
                    "Mobile#",
                    vec![
                        Term::var("n"),
                        Term::var("p"),
                        Term::var("s"),
                        Term::var("ph"),
                    ],
                ),
            ))),
        ]);
        let automaton = accltl_plus_to_automaton(&f);
        let outcome = bounded_emptiness(
            &automaton,
            &schema,
            &Instance::new(),
            &EmptinessConfig {
                max_states: 1,
                ..EmptinessConfig::default()
            },
        );
        assert_eq!(outcome, EmptinessOutcome::Unknown);
    }
}
