//! Compilation of `AccLTL+` formulas into A-automata (Lemma 4.5).
//!
//! The construction follows the standard formula-progression automaton for
//! finite-trace LTL, specialised so that the guards respect Definition 4.3:
//!
//! * the atoms of the formula are split into *data* sentences (no `IsBind`)
//!   and *binding* sentences (mentioning `IsBind`); binding-positivity
//!   guarantees the latter occur only positively;
//! * a transition of the automaton is generated per truth assignment over the
//!   data atoms and per *asserted subset* of the binding atoms — asserted
//!   binding atoms go into the positive part of the guard, false data atoms
//!   into the negative part, so no `IsBind` sentence is ever negated;
//! * automaton states are the (normalised) progressed obligations; a state is
//!   accepting iff its obligation is satisfied by the empty remainder.
//!
//! Treating non-asserted binding atoms as false only prunes runs, never
//! paths: by monotonicity there is always another branch that asserts exactly
//! the binding atoms that do hold, so the automaton accepts precisely the
//! paths satisfying the formula.  The number of states is exponential in the
//! number of atoms, matching the lemma's bound.

use std::collections::{BTreeMap, VecDeque};

use accltl_logic::vocabulary::mentions_isbind;
use accltl_logic::AccLtl;
use accltl_relational::PosFormula;

use crate::a_automaton::{AAutomaton, Guard};

/// Translates a binding-positive formula into an equivalent A-automaton.
///
/// # Panics
/// Panics if the formula is not binding-positive (callers check with
/// [`AccLtl::is_binding_positive`] / `accltl_logic::fragment::classify`).
#[must_use]
pub fn accltl_plus_to_automaton(formula: &AccLtl) -> AAutomaton {
    assert!(
        formula.is_binding_positive(),
        "Lemma 4.5 translation requires a binding-positive formula"
    );

    let atoms: Vec<PosFormula> = formula
        .atom_sentences()
        .into_iter()
        .filter(|s| !matches!(s, PosFormula::True | PosFormula::False))
        .collect();
    let (binding_atoms, data_atoms): (Vec<PosFormula>, Vec<PosFormula>) =
        atoms.into_iter().partition(mentions_isbind);

    // State bookkeeping: normalised obligation -> index.
    let mut index_of: BTreeMap<AccLtl, usize> = BTreeMap::new();
    let mut automaton = AAutomaton::new(0, 0);
    let mut queue: VecDeque<AccLtl> = VecDeque::new();

    let start = normalize(formula);
    index_of.insert(start.clone(), 0);
    automaton.state_count = 1;
    queue.push_back(start.clone());
    if accepts_empty(&start) {
        automaton.mark_accepting(0);
    }

    while let Some(obligation) = queue.pop_front() {
        let from = index_of[&obligation];
        // Enumerate the truth assignments: subsets of data atoms that hold,
        // and subsets of binding atoms that are asserted.
        for data_mask in 0u32..(1 << data_atoms.len().min(16)) {
            for bind_mask in 0u32..(1 << binding_atoms.len().min(16)) {
                let valuation = |sentence: &PosFormula| -> bool {
                    if let Some(i) = data_atoms.iter().position(|a| a == sentence) {
                        return data_mask & (1 << i) != 0;
                    }
                    if let Some(i) = binding_atoms.iter().position(|a| a == sentence) {
                        return bind_mask & (1 << i) != 0;
                    }
                    matches!(sentence, PosFormula::True)
                };
                let progressed = normalize(&progress(&obligation, &valuation));
                if progressed == AccLtl::bottom() {
                    continue;
                }
                // Build the guard for this assignment.
                let positives: Vec<PosFormula> = data_atoms
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| data_mask & (1 << i) != 0)
                    .map(|(_, a)| a.clone())
                    .chain(
                        binding_atoms
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| bind_mask & (1 << i) != 0)
                            .map(|(_, a)| a.clone()),
                    )
                    .collect();
                let negatives: Vec<PosFormula> = data_atoms
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| data_mask & (1 << i) == 0)
                    .map(|(_, a)| a.clone())
                    .collect();
                let guard = Guard {
                    negated: negatives,
                    positive: PosFormula::and(positives),
                };
                let to = match index_of.get(&progressed) {
                    Some(&i) => i,
                    None => {
                        let i = automaton.state_count;
                        automaton.state_count += 1;
                        index_of.insert(progressed.clone(), i);
                        if accepts_empty(&progressed) {
                            automaton.mark_accepting(i);
                        }
                        queue.push_back(progressed.clone());
                        i
                    }
                };
                automaton.add_transition(from, guard, to);
            }
        }
    }
    automaton
}

fn normalize(formula: &AccLtl) -> AccLtl {
    match formula {
        AccLtl::Atom(_) => formula.clone(),
        AccLtl::Not(inner) => AccLtl::not(normalize(inner)),
        AccLtl::And(parts) => {
            let mut normalized: Vec<AccLtl> = parts.iter().map(normalize).collect();
            normalized.sort();
            normalized.dedup();
            AccLtl::and(normalized)
        }
        AccLtl::Or(parts) => {
            let mut normalized: Vec<AccLtl> = parts.iter().map(normalize).collect();
            normalized.sort();
            normalized.dedup();
            AccLtl::or(normalized)
        }
        AccLtl::Next(inner) => AccLtl::next(normalize(inner)),
        AccLtl::Until(l, r) => AccLtl::until(normalize(l), normalize(r)),
    }
}

fn progress(formula: &AccLtl, valuation: &dyn Fn(&PosFormula) -> bool) -> AccLtl {
    match formula {
        AccLtl::Atom(sentence) => {
            if valuation(sentence) {
                AccLtl::top()
            } else {
                AccLtl::bottom()
            }
        }
        AccLtl::Not(inner) => AccLtl::not(progress(inner, valuation)),
        AccLtl::And(parts) => AccLtl::and(parts.iter().map(|p| progress(p, valuation)).collect()),
        AccLtl::Or(parts) => AccLtl::or(parts.iter().map(|p| progress(p, valuation)).collect()),
        AccLtl::Next(inner) => inner.as_ref().clone(),
        AccLtl::Until(l, r) => AccLtl::or(vec![
            progress(r, valuation),
            AccLtl::and(vec![progress(l, valuation), formula.clone()]),
        ]),
    }
}

fn accepts_empty(formula: &AccLtl) -> bool {
    match formula {
        AccLtl::Atom(sentence) => matches!(sentence, PosFormula::True),
        AccLtl::Not(inner) => !accepts_empty(inner),
        AccLtl::And(parts) => parts.iter().all(accepts_empty),
        AccLtl::Or(parts) => parts.iter().any(accepts_empty),
        AccLtl::Next(_) | AccLtl::Until(..) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accltl_logic::vocabulary::{isbind_atom, isbind_prop, post_atom, pre_atom};
    use accltl_paths::access::phone_directory_access_schema;
    use accltl_paths::path::response;
    use accltl_paths::{Access, AccessPath};
    use accltl_relational::{tuple, Instance, Term};

    fn sample_paths() -> Vec<AccessPath> {
        let acm1 = Access::new("AcM1", tuple!["Smith"]);
        let acm1_hit = (
            acm1.clone(),
            response([tuple!["Smith", "OX13QD", "Parks Rd", 5551212]]),
        );
        let acm1_miss = (acm1, response([]));
        let acm2 = Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]);
        let acm2_hit = (
            acm2.clone(),
            response([tuple!["Parks Rd", "OX13QD", "Jones", 16]]),
        );
        let acm2_miss = (acm2, response([]));
        vec![
            AccessPath::from_steps(vec![acm1_hit.clone()]),
            AccessPath::from_steps(vec![acm2_hit.clone()]),
            AccessPath::from_steps(vec![acm1_hit.clone(), acm2_hit.clone()]),
            AccessPath::from_steps(vec![acm2_hit.clone(), acm1_hit.clone()]),
            AccessPath::from_steps(vec![acm1_miss.clone(), acm2_hit.clone()]),
            AccessPath::from_steps(vec![acm2_miss.clone(), acm1_hit.clone()]),
            AccessPath::from_steps(vec![acm1_miss, acm2_miss, acm2_hit, acm1_hit]),
        ]
    }

    /// Checks language equivalence of a formula and its automaton on a corpus
    /// of sample paths.
    fn assert_equivalent_on_samples(formula: &AccLtl) {
        let automaton = accltl_plus_to_automaton(formula);
        assert!(automaton.is_well_formed());
        let schema = phone_directory_access_schema();
        for path in sample_paths() {
            let transitions = path.transitions(&schema, &Instance::new()).unwrap();
            let by_formula = formula.satisfied_by_transitions(&transitions, false);
            let by_automaton = automaton.accepts_transitions(&transitions);
            assert_eq!(by_formula, by_automaton, "path {path}, formula {formula}");
        }
    }

    fn jones_post() -> PosFormula {
        PosFormula::exists(
            vec!["s", "p", "h"],
            post_atom(
                "Address",
                vec![
                    Term::var("s"),
                    Term::var("p"),
                    Term::constant("Jones"),
                    Term::var("h"),
                ],
            ),
        )
    }

    fn mobile_pre_nonempty() -> PosFormula {
        PosFormula::exists(
            vec!["n", "p", "s", "ph"],
            pre_atom(
                "Mobile#",
                vec![
                    Term::var("n"),
                    Term::var("p"),
                    Term::var("s"),
                    Term::var("ph"),
                ],
            ),
        )
    }

    #[test]
    fn eventually_formula_translates_equivalently() {
        assert_equivalent_on_samples(&AccLtl::finally(AccLtl::atom(jones_post())));
    }

    #[test]
    fn globally_formula_translates_equivalently() {
        assert_equivalent_on_samples(&AccLtl::globally(AccLtl::not(AccLtl::atom(jones_post()))));
    }

    #[test]
    fn until_formula_with_binding_atom_translates_equivalently() {
        let f = AccLtl::until(
            AccLtl::not(AccLtl::atom(mobile_pre_nonempty())),
            AccLtl::atom(PosFormula::exists(
                vec!["s", "p"],
                isbind_atom("AcM2", vec![Term::var("s"), Term::var("p")]),
            )),
        );
        assert!(f.is_binding_positive());
        assert_equivalent_on_samples(&f);
    }

    #[test]
    fn boolean_combination_translates_equivalently() {
        let f = AccLtl::and(vec![
            AccLtl::finally(AccLtl::atom(jones_post())),
            AccLtl::or(vec![
                AccLtl::atom(isbind_prop("AcM1")),
                AccLtl::next(AccLtl::atom(mobile_pre_nonempty())),
            ]),
        ]);
        assert!(f.is_binding_positive());
        assert_equivalent_on_samples(&f);
    }

    #[test]
    fn translation_size_is_exponential_in_atoms_at_worst() {
        let f = AccLtl::finally(AccLtl::atom(jones_post()));
        let automaton = accltl_plus_to_automaton(&f);
        // A single-atom eventuality needs only two or three obligations.
        assert!(automaton.state_count <= 4);
        assert!(!automaton.accepting.is_empty());
    }

    #[test]
    #[should_panic(expected = "binding-positive")]
    fn non_binding_positive_formulas_are_rejected() {
        let bad = AccLtl::globally(AccLtl::not(AccLtl::atom(PosFormula::exists(
            vec!["n"],
            isbind_atom("AcM1", vec![Term::var("n")]),
        ))));
        let _ = accltl_plus_to_automaton(&bad);
    }
}
