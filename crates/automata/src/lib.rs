//! # accltl-automata
//!
//! The automaton model of Section 4 of *"Querying Schemas With Access
//! Restrictions"*: **A-automata**, which run over access paths and whose
//! transition guards are conjunctions `ψ− ∧ ψ+` of negated `IsBind`-free
//! sentences and a positive existential sentence over `SchAcc`.
//!
//! * [`a_automaton`] — the model, guard evaluation and run/membership
//!   semantics (Definition 4.3);
//! * [`translate`] — the compilation of `AccLTL+` formulas into A-automata
//!   (Lemma 4.5);
//! * [`progressive`] — strongly-connected-component analysis, the chain
//!   decomposition behind Lemma 4.9 and the Definition 4.8 progressiveness
//!   checks;
//! * [`emptiness`] — emptiness checking (Theorem 4.6) via a bounded product
//!   search over the guards' canonical fact universe, together with the
//!   Datalog-containment view of the problem (Proposition 4.11 is implemented
//!   in `accltl-relational::datalog_containment`);
//! * [`applications`] — Proposition 4.4: A-automata deciding query containment
//!   under access patterns and long-term relevance in the presence of
//!   disjointness constraints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod a_automaton;
pub mod applications;
pub mod emptiness;
pub mod progressive;
pub mod translate;

pub use a_automaton::{AAutomaton, CompiledGuard, Guard, GuardedTransition};
pub use emptiness::{
    bounded_emptiness, bounded_emptiness_batch, bounded_emptiness_batch_with_config,
    bounded_emptiness_report, bounded_emptiness_with_stats, EmptinessConfig, EmptinessOutcome,
};
pub use progressive::{chain_decomposition, condensation, is_progressive_chain};
pub use translate::accltl_plus_to_automaton;
