//! Proposition 4.4: A-automata for query containment under access patterns
//! and long-term relevance, optionally under disjointness constraints.
//!
//! * `Q ⊑ Q'` under access patterns with disjointness constraints `Σ` holds
//!   iff the automaton built by [`containment_automaton`] has an empty
//!   language: the automaton accepts exactly the access paths that respect
//!   `Σ` and reach a configuration satisfying `Q` but not `Q'`.
//! * An access is long-term relevant for `Q` under `Σ` iff the automaton of
//!   [`ltr_automaton`] is non-empty: it accepts the paths whose distinguished
//!   access flips `Q` from false to true while `Σ` holds throughout.

use accltl_logic::vocabulary::{isbind_atom, query_post, query_pre};
use accltl_paths::{Access, AccessSchema};
use accltl_relational::{ConjunctiveQuery, DisjointnessConstraint, PosFormula, Term};

use crate::a_automaton::{AAutomaton, Guard};

/// The violation sentence of a disjointness constraint over the
/// *post*-instance of a transition (so that constraint violations are caught
/// as soon as the offending fact is revealed).
fn disjointness_violation(
    schema: &AccessSchema,
    constraint: &DisjointnessConstraint,
) -> PosFormula {
    let (left_rel, left_pos) = &constraint.left;
    let (right_rel, right_pos) = &constraint.right;
    let left_arity = schema
        .schema()
        .relation_by_id(*left_rel)
        .map(accltl_relational::RelationSchema::arity)
        .unwrap_or(left_pos + 1);
    let right_arity = schema
        .schema()
        .relation_by_id(*right_rel)
        .map(accltl_relational::RelationSchema::arity)
        .unwrap_or(right_pos + 1);
    let left_vars: Vec<String> = (0..left_arity).map(|i| format!("l{i}")).collect();
    let mut right_vars: Vec<String> = (0..right_arity).map(|i| format!("r{i}")).collect();
    right_vars[*right_pos] = left_vars[*left_pos].clone();
    let all_vars: Vec<String> = left_vars
        .iter()
        .cloned()
        .chain(right_vars.iter().cloned())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    PosFormula::exists(
        all_vars,
        PosFormula::and(vec![
            PosFormula::Atom(accltl_relational::Atom::new(
                accltl_logic::vocabulary::post_rel(*left_rel),
                left_vars.iter().map(Term::var).collect(),
            )),
            PosFormula::Atom(accltl_relational::Atom::new(
                accltl_logic::vocabulary::post_rel(*right_rel),
                right_vars.iter().map(Term::var).collect(),
            )),
        ]),
    )
}

/// Builds the A-automaton of Proposition 4.4 for containment: its language is
/// empty iff `q1 ⊑ q2` over access paths respecting the disjointness
/// constraints.
#[must_use]
pub fn containment_automaton(
    schema: &AccessSchema,
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    constraints: &[DisjointnessConstraint],
) -> AAutomaton {
    let violations: Vec<PosFormula> = constraints
        .iter()
        .map(|c| disjointness_violation(schema, c))
        .collect();
    let mut automaton = AAutomaton::new(2, 0);
    // Stay in state 0 while the constraints hold.
    automaton.add_transition(
        0,
        Guard {
            negated: violations.clone(),
            positive: PosFormula::True,
        },
        0,
    );
    // Move to the accepting state when a configuration satisfying Q1 but not
    // Q2 is reached (checked on the pre-instance, as in Example 2.2) while the
    // constraints still hold.
    automaton.add_transition(
        1,
        Guard {
            negated: violations.clone(),
            positive: PosFormula::True,
        },
        1,
    );
    let mut witness_negated = violations;
    witness_negated.push(query_pre(q2));
    automaton.add_transition(
        0,
        Guard {
            negated: witness_negated,
            positive: query_pre(q1),
        },
        1,
    );
    automaton.mark_accepting(1);
    automaton
}

/// Builds the A-automaton of Proposition 4.4 for long-term relevance of an
/// access: its language is non-empty iff there is a path, respecting the
/// disjointness constraints, along which the access is made at a moment where
/// the query did not hold before but holds afterwards.
#[must_use]
pub fn ltr_automaton(
    schema: &AccessSchema,
    access: &Access,
    query: &ConjunctiveQuery,
    constraints: &[DisjointnessConstraint],
) -> AAutomaton {
    let violations: Vec<PosFormula> = constraints
        .iter()
        .map(|c| disjointness_violation(schema, c))
        .collect();
    let binding_terms: Vec<Term> = access
        .binding
        .values()
        .iter()
        .cloned()
        .map(Term::Const)
        .collect();
    let flip = PosFormula::and(vec![
        isbind_atom(access.method, binding_terms),
        query_post(query),
    ]);
    let mut flip_negated = violations.clone();
    flip_negated.push(query_pre(query));

    let mut automaton = AAutomaton::new(2, 0);
    automaton.add_transition(
        0,
        Guard {
            negated: violations.clone(),
            positive: PosFormula::True,
        },
        0,
    );
    automaton.add_transition(
        0,
        Guard {
            negated: flip_negated,
            positive: flip,
        },
        1,
    );
    automaton.add_transition(
        1,
        Guard {
            negated: violations,
            positive: PosFormula::True,
        },
        1,
    );
    automaton.mark_accepting(1);
    automaton
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emptiness::{bounded_emptiness, EmptinessConfig, EmptinessOutcome};
    use accltl_paths::access::phone_directory_access_schema;
    use accltl_relational::{atom, cq, tuple, Instance};

    fn schema() -> AccessSchema {
        phone_directory_access_schema()
    }

    #[test]
    fn contained_queries_give_empty_automata() {
        // Q1 asks for Jones's address, Q2 for any address: Q1 ⊑ Q2.
        let q1 = cq!(<- atom!("Address"; s, p, @"Jones", h));
        let q2 = cq!(<- atom!("Address"; s, p, n, h));
        let automaton = containment_automaton(&schema(), &q1, &q2, &[]);
        assert!(automaton.is_well_formed());
        let outcome = bounded_emptiness(
            &automaton,
            &schema(),
            &Instance::new(),
            &EmptinessConfig::default(),
        );
        assert_eq!(outcome, EmptinessOutcome::Empty);
    }

    #[test]
    fn non_contained_queries_give_a_counterexample_path() {
        // Q2 ⊑ Q1 fails: a configuration with Smith's address satisfies Q2 but
        // not Q1.
        let q1 = cq!(<- atom!("Address"; s, p, @"Jones", h));
        let q2 = cq!(<- atom!("Address"; s, p, n, h));
        let automaton = containment_automaton(&schema(), &q2, &q1, &[]);
        let outcome = bounded_emptiness(
            &automaton,
            &schema(),
            &Instance::new(),
            &EmptinessConfig::default(),
        );
        let EmptinessOutcome::NonEmpty { witness } = outcome else {
            panic!("expected a counterexample path");
        };
        // The counterexample's pre-instance at the accepting transition
        // satisfies Q2 but not Q1.
        let transitions = witness.transitions(&schema(), &Instance::new()).unwrap();
        assert!(automaton.accepts_transitions(&transitions));
    }

    #[test]
    fn disjointness_constraints_can_restore_containment() {
        // Q1: some customer name is also a street name (join of Mobile# names
        // with Address street names).  Under the constraint that names and
        // street names are disjoint, Q1 can never hold, so Q1 ⊑ Q_false holds
        // under the constraint but fails without it.
        let q1 = cq!(<- atom!("Mobile#"; n, p, s, ph), atom!("Address"; n, p2, m, h));
        let q_false = cq!(<- atom!("Mobile#"; @"⊥no", p, s, ph));
        let constraint = DisjointnessConstraint::new("Mobile#", 0, "Address", 0);

        let unconstrained = containment_automaton(&schema(), &q1, &q_false, &[]);
        assert!(bounded_emptiness(
            &unconstrained,
            &schema(),
            &Instance::new(),
            &EmptinessConfig::default()
        )
        .is_nonempty());

        let constrained = containment_automaton(&schema(), &q1, &q_false, &[constraint]);
        assert_eq!(
            bounded_emptiness(
                &constrained,
                &schema(),
                &Instance::new(),
                &EmptinessConfig::default()
            ),
            EmptinessOutcome::Empty
        );
    }

    #[test]
    fn ltr_automaton_is_nonempty_for_relevant_accesses() {
        let q = cq!(<- atom!("Address"; s, p, @"Jones", h));
        let relevant = Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]);
        let automaton = ltr_automaton(&schema(), &relevant, &q, &[]);
        assert!(bounded_emptiness(
            &automaton,
            &schema(),
            &Instance::new(),
            &EmptinessConfig::default()
        )
        .is_nonempty());

        // An access to Mobile# can never reveal an Address fact, so it is not
        // long-term relevant for the query.
        let irrelevant = Access::new("AcM1", tuple!["Jones"]);
        let automaton = ltr_automaton(&schema(), &irrelevant, &q, &[]);
        assert_eq!(
            bounded_emptiness(
                &automaton,
                &schema(),
                &Instance::new(),
                &EmptinessConfig::default()
            ),
            EmptinessOutcome::Empty
        );
    }
}
