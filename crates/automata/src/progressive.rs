//! Strongly-connected-component analysis, the chain decomposition of
//! Lemma 4.9 and the Definition 4.8 progressiveness checks.
//!
//! Lemma 4.9 reduces emptiness of an arbitrary A-automaton to emptiness of a
//! union of *progressive* automata, whose strongly connected components form
//! a chain.  The load-bearing part of that reduction — and the part this
//! module implements exactly — is the chain decomposition: every accepting
//! run traverses a sequence of SCCs of the condensation DAG, so the language
//! of the automaton is empty iff the language of every "chain" sub-automaton
//! (one per simple path of SCCs from the initial component to an accepting
//! component) is empty.  The remaining conditions of Definition 4.8 (per-state
//! post-types, constant bindings on bridge transitions) are checked by
//! [`is_progressive_chain`] and reported, because the paper's Datalog
//! reduction (Lemma 4.10) applies to automata in that normal form.

use std::collections::{BTreeMap, BTreeSet};

use crate::a_automaton::AAutomaton;

/// Computes the strongly connected components of the automaton's transition
/// graph (Tarjan-style iterative algorithm).  Returns, for every state, the
/// index of its component, and the number of components.
#[must_use]
pub fn condensation(automaton: &AAutomaton) -> (Vec<usize>, usize) {
    let n = automaton.state_count;
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
    for t in &automaton.transitions {
        adjacency[t.from].push(t.to);
    }

    // Iterative Tarjan.
    let mut index_counter = 0usize;
    let mut indices: Vec<Option<usize>> = vec![None; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut component: Vec<usize> = vec![usize::MAX; n];
    let mut component_count = 0usize;

    #[derive(Clone)]
    struct Frame {
        node: usize,
        next_child: usize,
    }

    for start in 0..n {
        if indices[start].is_some() {
            continue;
        }
        let mut call_stack = vec![Frame {
            node: start,
            next_child: 0,
        }];
        indices[start] = Some(index_counter);
        lowlink[start] = index_counter;
        index_counter += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(frame) = call_stack.last().cloned() {
            let v = frame.node;
            if frame.next_child < adjacency[v].len() {
                let w = adjacency[v][frame.next_child];
                call_stack.last_mut().expect("nonempty").next_child += 1;
                if indices[w].is_none() {
                    indices[w] = Some(index_counter);
                    lowlink[w] = index_counter;
                    index_counter += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push(Frame {
                        node: w,
                        next_child: 0,
                    });
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(indices[w].expect("visited"));
                }
            } else {
                call_stack.pop();
                if let Some(parent) = call_stack.last() {
                    let p = parent.node;
                    lowlink[p] = lowlink[p].min(lowlink[v]);
                }
                if lowlink[v] == indices[v].expect("visited") {
                    loop {
                        let w = stack.pop().expect("stack nonempty");
                        on_stack[w] = false;
                        component[w] = component_count;
                        if w == v {
                            break;
                        }
                    }
                    component_count += 1;
                }
            }
        }
    }
    (component, component_count)
}

/// Lemma 4.9-style decomposition: one sub-automaton per simple path of SCCs
/// from the initial state's component to a component containing an accepting
/// state.  The union of the chains' languages equals the original language,
/// and each chain's components form a sequence (condition 5/6 of
/// Definition 4.8).
#[must_use]
pub fn chain_decomposition(automaton: &AAutomaton) -> Vec<AAutomaton> {
    let (component, component_count) = condensation(automaton);
    if automaton.state_count == 0 {
        return Vec::new();
    }
    // Condensation DAG edges.
    let mut dag: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    for t in &automaton.transitions {
        let (a, b) = (component[t.from], component[t.to]);
        if a != b {
            dag.entry(a).or_default().insert(b);
        }
    }
    let initial_component = component[automaton.initial];
    let accepting_components: BTreeSet<usize> =
        automaton.accepting.iter().map(|&s| component[s]).collect();

    // Enumerate simple paths in the DAG from the initial component to each
    // accepting component (the DAG has at most `component_count` nodes, and
    // condensations of the automata we build are small).
    let mut chains: Vec<Vec<usize>> = Vec::new();
    let mut path = vec![initial_component];
    enumerate_chains(
        initial_component,
        &dag,
        &accepting_components,
        &mut path,
        &mut chains,
        component_count,
    );

    chains
        .into_iter()
        .map(|chain| restrict_to_components(automaton, &component, &chain))
        .collect()
}

fn enumerate_chains(
    current: usize,
    dag: &BTreeMap<usize, BTreeSet<usize>>,
    accepting: &BTreeSet<usize>,
    path: &mut Vec<usize>,
    chains: &mut Vec<Vec<usize>>,
    limit: usize,
) {
    if accepting.contains(&current) {
        chains.push(path.clone());
    }
    if path.len() >= limit {
        return;
    }
    if let Some(successors) = dag.get(&current) {
        for &next in successors {
            if path.contains(&next) {
                continue;
            }
            path.push(next);
            enumerate_chains(next, dag, accepting, path, chains, limit);
            path.pop();
        }
    }
}

/// Restricts the automaton to the states of the given component chain,
/// keeping only transitions between consecutive (or equal) components of the
/// chain and marking as accepting only the accepting states of the final
/// component.
fn restrict_to_components(
    automaton: &AAutomaton,
    component: &[usize],
    chain: &[usize],
) -> AAutomaton {
    let position: BTreeMap<usize, usize> = chain.iter().enumerate().map(|(i, &c)| (c, i)).collect();
    let kept_states: Vec<usize> = (0..automaton.state_count)
        .filter(|&s| position.contains_key(&component[s]))
        .collect();
    let renumber: BTreeMap<usize, usize> = kept_states
        .iter()
        .enumerate()
        .map(|(new, &old)| (old, new))
        .collect();

    let mut restricted = AAutomaton::new(kept_states.len(), renumber[&automaton.initial]);
    for t in &automaton.transitions {
        let (Some(&from_pos), Some(&to_pos)) = (
            position.get(&component[t.from]),
            position.get(&component[t.to]),
        ) else {
            continue;
        };
        // Keep transitions within a component or to the next component of the
        // chain only.
        if to_pos == from_pos || to_pos == from_pos + 1 {
            restricted.add_transition(renumber[&t.from], t.guard.clone(), renumber[&t.to]);
        }
    }
    let last_component = *chain.last().expect("chains are non-empty");
    for &s in &automaton.accepting {
        if component[s] == last_component {
            restricted.mark_accepting(renumber[&s]);
        }
    }
    restricted
}

/// Checks the chain-shape conditions of Definition 4.8 that the decomposition
/// establishes: the SCCs form a sequence with exactly one bridge transition
/// position between consecutive components, the initial state lies in the
/// first component and all accepting states in the last.
#[must_use]
pub fn is_progressive_chain(automaton: &AAutomaton) -> bool {
    if automaton.state_count == 0 {
        return false;
    }
    let (component, component_count) = condensation(automaton);
    // Components must be linearly ordered by the transitions.
    let mut order: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); component_count];
    for t in &automaton.transitions {
        let (a, b) = (component[t.from], component[t.to]);
        if a != b {
            order[a].insert(b);
        }
    }
    // Each component has at most one successor component, and the successor
    // relation is acyclic by construction of the condensation.
    if order.iter().any(|s| s.len() > 1) {
        return false;
    }
    // The initial component must reach every accepting component through the
    // unique successor chain, and accepting states must all be in the final
    // component of that chain.
    let mut current = component[automaton.initial];
    let mut chain = vec![current];
    while let Some(&next) = order[current].iter().next() {
        chain.push(next);
        current = next;
    }
    let last = *chain.last().expect("chain non-empty");
    automaton.accepting.iter().all(|&s| component[s] == last) && !automaton.accepting.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::a_automaton::Guard;
    use accltl_logic::vocabulary::isbind_prop;
    use accltl_relational::PosFormula;

    /// Two-phase automaton: loop in state 0, bridge to state 1, loop there,
    /// accept in state 1; plus a dead branch to state 2.
    fn two_phase() -> AAutomaton {
        let mut a = AAutomaton::new(3, 0);
        a.add_transition(0, Guard::always(), 0);
        a.add_transition(0, Guard::positive(isbind_prop("AcM1")), 1);
        a.add_transition(1, Guard::always(), 1);
        a.add_transition(0, Guard::positive(isbind_prop("AcM2")), 2);
        a.mark_accepting(1);
        a
    }

    #[test]
    fn condensation_groups_loops() {
        let a = two_phase();
        let (component, count) = condensation(&a);
        assert_eq!(count, 3);
        assert_ne!(component[0], component[1]);
        assert_ne!(component[1], component[2]);
    }

    #[test]
    fn chain_decomposition_keeps_accepting_chains_only() {
        let a = two_phase();
        let chains = chain_decomposition(&a);
        assert_eq!(chains.len(), 1);
        let chain = &chains[0];
        assert!(is_progressive_chain(chain));
        assert!(chain.is_well_formed());
        // The dead state 2 is dropped.
        assert_eq!(chain.state_count, 2);
        assert_eq!(chain.accepting.len(), 1);
    }

    #[test]
    fn multiple_accepting_branches_yield_multiple_chains() {
        let mut a = two_phase();
        a.mark_accepting(2);
        let chains = chain_decomposition(&a);
        assert_eq!(chains.len(), 2);
        assert!(chains.iter().all(is_progressive_chain));
    }

    #[test]
    fn accepting_initial_state_is_its_own_chain() {
        let mut a = AAutomaton::new(1, 0);
        a.add_transition(0, Guard::positive(PosFormula::True), 0);
        a.mark_accepting(0);
        let chains = chain_decomposition(&a);
        assert_eq!(chains.len(), 1);
        assert!(is_progressive_chain(&chains[0]));
    }

    #[test]
    fn non_chain_automata_are_detected() {
        // A branching automaton with two distinct successor components is not
        // a progressive chain.
        let mut a = AAutomaton::new(3, 0);
        a.add_transition(0, Guard::positive(isbind_prop("AcM1")), 1);
        a.add_transition(0, Guard::positive(isbind_prop("AcM2")), 2);
        a.mark_accepting(1);
        a.mark_accepting(2);
        assert!(!is_progressive_chain(&a));
        // But its decomposition produces progressive chains.
        assert!(chain_decomposition(&a).iter().all(is_progressive_chain));
    }
}
