//! A-automata: states, guarded transitions and run semantics
//! (Definition 4.3).

use std::collections::BTreeSet;
use std::fmt;

use accltl_logic::vocabulary::{mentions_isbind, path_structures};
use accltl_paths::Transition;
use accltl_relational::{CompiledSentence, GuardCache, Instance, InstanceView, PosFormula, Value};

/// A transition guard `ψ− ∧ ψ+`: a positive boolean combination of *negated*
/// `FO∃+Acc` sentences that must not mention `IsBind` (`negated`), conjoined
/// with a positive `FO∃+Acc` sentence (`positive`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Guard {
    /// Sentences that must be *false* on the transition structure; they may
    /// not mention any `IsBind` predicate.
    pub negated: Vec<PosFormula>,
    /// The sentence that must be *true* on the transition structure.
    pub positive: PosFormula,
}

impl Guard {
    /// A guard with no negative part.
    #[must_use]
    pub fn positive(positive: PosFormula) -> Self {
        Guard {
            negated: Vec::new(),
            positive,
        }
    }

    /// The always-true guard.
    #[must_use]
    pub fn always() -> Self {
        Guard::positive(PosFormula::True)
    }

    /// Checks Definition 4.3's syntactic restriction: negated sentences do not
    /// mention `IsBind`.
    #[must_use]
    pub fn is_well_formed(&self) -> bool {
        self.negated.iter().all(|s| !mentions_isbind(s))
    }

    /// Evaluates the guard on a transition structure (an [`Instance`] or any
    /// [`InstanceView`], such as the emptiness search's per-candidate
    /// overlays).
    #[must_use]
    pub fn satisfied_by(&self, structure: &impl InstanceView) -> bool {
        self.positive.holds(structure) && self.negated.iter().all(|s| !s.holds(structure))
    }

    /// Size measure: number of atoms across the guard.
    #[must_use]
    pub fn size(&self) -> usize {
        self.positive.size() + self.negated.iter().map(PosFormula::size).sum::<usize>()
    }

    /// DNF-compiles the guard's sentences once for repeated evaluation (the
    /// emptiness search checks the same guards against thousands of
    /// candidate structures).
    #[must_use]
    pub fn compile(&self) -> CompiledGuard {
        CompiledGuard {
            positive: CompiledSentence::compile(&self.positive),
            negated: self.negated.iter().map(CompiledSentence::compile).collect(),
        }
    }
}

/// A [`Guard`] with its sentences DNF-compiled once (see [`Guard::compile`]).
/// Agrees with [`Guard::satisfied_by`] by construction — the evaluation rule
/// (`positive holds ∧ no negated sentence holds`) lives here and in `Guard`
/// only.
#[derive(Debug, Clone)]
pub struct CompiledGuard {
    positive: CompiledSentence,
    negated: Vec<CompiledSentence>,
}

impl CompiledGuard {
    /// Evaluates the compiled guard on a transition structure.
    #[must_use]
    pub fn satisfied_by(&self, structure: &impl InstanceView) -> bool {
        self.positive.holds(structure) && self.negated.iter().all(|s| !s.holds(structure))
    }

    /// [`CompiledGuard::satisfied_by`] with every sentence memoized through
    /// a guard-verdict cache ([`CompiledSentence::holds_cached`]; `memoize`
    /// is the caller's per-state size gate).  Verdicts — and the sentence
    /// consult sequence, since `&&`/`all` short-circuit on identical
    /// verdicts identically — match the uncached evaluation by
    /// construction.
    #[must_use]
    pub fn satisfied_by_cached(
        &self,
        structure: &impl InstanceView,
        cache: &GuardCache,
        memoize: bool,
    ) -> bool {
        self.positive.holds_cached(structure, cache, memoize)
            && self
                .negated
                .iter()
                .all(|s| !s.holds_cached(structure, cache, memoize))
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for n in &self.negated {
            write!(f, "¬[{n}] ∧ ")?;
        }
        write!(f, "[{}]", self.positive)
    }
}

/// A guarded transition between two automaton states.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct GuardedTransition {
    /// Source state.
    pub from: usize,
    /// The guard.
    pub guard: Guard,
    /// Target state.
    pub to: usize,
}

/// An A-automaton over a schema with access methods (Definition 4.3).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AAutomaton {
    /// Number of states (states are `0..state_count`).
    pub state_count: usize,
    /// The initial state.
    pub initial: usize,
    /// The accepting states.
    pub accepting: BTreeSet<usize>,
    /// The guarded transitions.
    pub transitions: Vec<GuardedTransition>,
    /// The constants the guards may use.
    pub constants: BTreeSet<Value>,
}

impl AAutomaton {
    /// Creates an automaton with the given number of states.
    #[must_use]
    pub fn new(state_count: usize, initial: usize) -> Self {
        AAutomaton {
            state_count,
            initial,
            accepting: BTreeSet::new(),
            transitions: Vec::new(),
            constants: BTreeSet::new(),
        }
    }

    /// Adds a transition.
    pub fn add_transition(&mut self, from: usize, guard: Guard, to: usize) {
        self.constants.extend(guard.positive.constants());
        for n in &guard.negated {
            self.constants.extend(n.constants());
        }
        self.transitions.push(GuardedTransition { from, guard, to });
    }

    /// Marks a state accepting.
    pub fn mark_accepting(&mut self, state: usize) {
        self.accepting.insert(state);
    }

    /// True if every guard satisfies the Definition 4.3 restriction.
    #[must_use]
    pub fn is_well_formed(&self) -> bool {
        self.transitions.iter().all(|t| t.guard.is_well_formed())
            && self.initial < self.state_count
            && self.accepting.iter().all(|&s| s < self.state_count)
            && self
                .transitions
                .iter()
                .all(|t| t.from < self.state_count && t.to < self.state_count)
    }

    /// The outgoing transitions of a state.
    pub fn outgoing(&self, state: usize) -> impl Iterator<Item = &GuardedTransition> {
        self.transitions.iter().filter(move |t| t.from == state)
    }

    /// Total guard size (a size measure used by the pipeline-ablation bench).
    #[must_use]
    pub fn size(&self) -> usize {
        self.state_count
            + self
                .transitions
                .iter()
                .map(|t| t.guard.size())
                .sum::<usize>()
    }

    /// Runs the automaton on a sequence of transition structures and returns
    /// the set of states reachable after consuming all of them.
    #[must_use]
    pub fn run(&self, structures: &[Instance]) -> BTreeSet<usize> {
        let mut current: BTreeSet<usize> = BTreeSet::from([self.initial]);
        for structure in structures {
            let mut next = BTreeSet::new();
            for &state in &current {
                for transition in self.outgoing(state) {
                    if transition.guard.satisfied_by(structure) {
                        next.insert(transition.to);
                    }
                }
            }
            current = next;
            if current.is_empty() {
                break;
            }
        }
        current
    }

    /// True if the automaton accepts the access path represented by the given
    /// transitions (an accepting run assigns a guard to every transition and
    /// ends in an accepting state; the empty path is accepted iff the initial
    /// state is accepting).
    #[must_use]
    pub fn accepts_transitions(&self, transitions: &[Transition]) -> bool {
        let structures = path_structures(transitions, false);
        self.run(&structures)
            .iter()
            .any(|s| self.accepting.contains(s))
    }
}

impl fmt::Display for AAutomaton {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "A-automaton: {} states, initial {}, accepting {:?}",
            self.state_count, self.initial, self.accepting
        )?;
        for t in &self.transitions {
            writeln!(f, "  {} --{}--> {}", t.from, t.guard, t.to)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accltl_logic::vocabulary::{isbind_atom, isbind_prop, post_atom};
    use accltl_paths::access::phone_directory_access_schema;
    use accltl_paths::path::response;
    use accltl_paths::{Access, AccessPath};
    use accltl_relational::{tuple, Term};

    fn jones_post() -> PosFormula {
        PosFormula::exists(
            vec!["s", "p", "h"],
            post_atom(
                "Address",
                vec![
                    Term::var("s"),
                    Term::var("p"),
                    Term::constant("Jones"),
                    Term::var("h"),
                ],
            ),
        )
    }

    /// An automaton accepting paths that perform an AcM1 access and later
    /// reveal a Jones address tuple.
    fn acm1_then_jones() -> AAutomaton {
        let mut automaton = AAutomaton::new(3, 0);
        automaton.add_transition(0, Guard::always(), 0);
        automaton.add_transition(
            0,
            Guard::positive(PosFormula::exists(
                vec!["n"],
                isbind_atom("AcM1", vec![Term::var("n")]),
            )),
            1,
        );
        automaton.add_transition(1, Guard::always(), 1);
        automaton.add_transition(1, Guard::positive(jones_post()), 2);
        automaton.add_transition(2, Guard::always(), 2);
        automaton.mark_accepting(2);
        automaton
    }

    fn figure1_transitions() -> Vec<Transition> {
        let schema = phone_directory_access_schema();
        AccessPath::new()
            .with_step(
                Access::new("AcM1", tuple!["Smith"]),
                response([tuple!["Smith", "OX13QD", "Parks Rd", 5551212]]),
            )
            .with_step(
                Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]),
                response([tuple!["Parks Rd", "OX13QD", "Jones", 16]]),
            )
            .transitions(&schema, &Instance::new())
            .unwrap()
    }

    #[test]
    fn automaton_accepts_matching_paths() {
        let automaton = acm1_then_jones();
        assert!(automaton.is_well_formed());
        assert!(automaton.accepts_transitions(&figure1_transitions()));

        // The reversed path (AcM2 first, then AcM1 which cannot reveal an
        // Address tuple) is rejected.
        let schema = phone_directory_access_schema();
        let reversed = AccessPath::new()
            .with_step(
                Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]),
                response([tuple!["Parks Rd", "OX13QD", "Jones", 16]]),
            )
            .with_step(
                Access::new("AcM1", tuple!["Smith"]),
                response([tuple!["Smith", "OX13QD", "Parks Rd", 5551212]]),
            )
            .transitions(&schema, &Instance::new())
            .unwrap();
        assert!(!automaton.accepts_transitions(&reversed));
    }

    #[test]
    fn negative_guards_reject_transitions_satisfying_the_sentence() {
        // A single-transition automaton requiring that no Address fact is
        // known before the access.
        let mut automaton = AAutomaton::new(2, 0);
        let address_pre = PosFormula::exists(
            vec!["s", "p", "n", "h"],
            accltl_logic::vocabulary::pre_atom(
                "Address",
                vec![
                    Term::var("s"),
                    Term::var("p"),
                    Term::var("n"),
                    Term::var("h"),
                ],
            ),
        );
        automaton.add_transition(
            0,
            Guard {
                negated: vec![address_pre],
                positive: PosFormula::True,
            },
            1,
        );
        automaton.mark_accepting(1);
        assert!(automaton.is_well_formed());

        let transitions = figure1_transitions();
        // The first transition has an empty pre-instance: accepted as a
        // one-transition path.
        assert!(automaton.accepts_transitions(&transitions[..1]));
        // A path consisting of only the second transition is rejected
        // (Address facts are revealed in its post but pre contains Mobile#
        // only... and pre has no Address fact, so it is actually accepted).
        assert!(automaton.accepts_transitions(&transitions[1..]));
        // A guard negating the IsBind predicate is ill-formed.
        let mut bad = AAutomaton::new(2, 0);
        bad.add_transition(
            0,
            Guard {
                negated: vec![isbind_prop("AcM1")],
                positive: PosFormula::True,
            },
            1,
        );
        assert!(!bad.is_well_formed());
    }

    #[test]
    fn empty_path_accepted_iff_initial_accepting() {
        let mut automaton = AAutomaton::new(1, 0);
        assert!(!automaton.accepts_transitions(&[]));
        automaton.mark_accepting(0);
        assert!(automaton.accepts_transitions(&[]));
    }

    #[test]
    fn constants_are_collected_from_guards() {
        let automaton = acm1_then_jones();
        assert!(automaton.constants.contains(&Value::str("Jones")));
        assert!(automaton.size() > 3);
        assert!(automaton.to_string().contains("A-automaton"));
    }

    #[test]
    fn parity_automaton_expresses_what_accltl_cannot() {
        // The conclusion of the paper notes A-automata can express parity of
        // the path length; build it and check it on paths of length 1..4.
        let mut parity = AAutomaton::new(2, 0);
        parity.add_transition(0, Guard::always(), 1);
        parity.add_transition(1, Guard::always(), 0);
        parity.mark_accepting(0);
        let transitions = figure1_transitions();
        assert!(!parity.accepts_transitions(&transitions[..1]));
        assert!(parity.accepts_transitions(&transitions[..2]));
    }
}
