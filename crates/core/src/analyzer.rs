//! The high-level analyzer: one object holding a schema, an initial instance
//! and constraints, dispatching each question to the appropriate decision
//! procedure.

use accltl_automata::applications::{containment_automaton, ltr_automaton};
use accltl_automata::{
    accltl_plus_to_automaton, bounded_emptiness, EmptinessConfig, EmptinessOutcome,
};
use accltl_logic::bounded::{BoundedSearchConfig, SatOutcome};
use accltl_logic::fragment::{classify, Fragment};
use accltl_logic::solver;
use accltl_logic::AccLtl;
use accltl_paths::relevance::{long_term_relevant, LtrOptions, LtrVerdict};
use accltl_paths::{Access, AccessPath, AccessSchema};
use accltl_relational::{
    cq_contained_in_cq, ConjunctiveQuery, DisjointnessConstraint, Instance, UnionOfCqs,
};

/// Which engine answered a question (reported for transparency and used by
/// the pipeline-ablation benchmark).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The ΣP2 procedure for the `AccLTL(X)` fragment (Theorem 4.14).
    XFragment,
    /// The PSPACE procedure for the 0-ary `IsBind` fragment (Theorem 4.12).
    ZeroFragment,
    /// The A-automaton pipeline for `AccLTL+` (Theorems 4.2/4.6).
    AutomatonPipeline,
    /// The bounded witness search for the undecidable languages.
    BoundedSearch,
}

/// The outcome of an analyzer question, together with the engine that
/// produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzerReport {
    /// The satisfiability outcome.
    pub outcome: SatOutcome,
    /// The fragment the formula was classified into.
    pub fragment: Fragment,
    /// The engine used.
    pub engine: Engine,
}

impl AnalyzerReport {
    /// True if a witness path was found.
    #[must_use]
    pub fn is_satisfiable(&self) -> bool {
        self.outcome.is_satisfiable()
    }

    /// The witness path, if any.
    #[must_use]
    pub fn witness(&self) -> Option<&AccessPath> {
        match &self.outcome {
            SatOutcome::Satisfiable { witness } => Some(witness),
            _ => None,
        }
    }
}

/// The verdict of a containment question.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainmentOutcome {
    /// `Q1 ⊑ Q2` under the access restrictions (and constraints).
    Contained,
    /// Containment fails; a counterexample access path is returned.
    NotContained {
        /// A path reaching a configuration satisfying `Q1` but not `Q2`.
        counterexample: AccessPath,
    },
    /// The bounded engine could not settle the question.
    Unknown,
}

/// The analyzer: a schema with access methods, an initial instance, the
/// disjointness constraints assumed on the data, and engine budgets.
#[derive(Debug, Clone)]
pub struct AccessAnalyzer {
    schema: AccessSchema,
    initial: Instance,
    disjointness: Vec<DisjointnessConstraint>,
    search_config: BoundedSearchConfig,
    emptiness_config: EmptinessConfig,
}

impl AccessAnalyzer {
    /// Creates an analyzer over a schema with an empty initial instance and
    /// no constraints.
    #[must_use]
    pub fn new(schema: AccessSchema) -> Self {
        AccessAnalyzer {
            schema,
            initial: Instance::new(),
            disjointness: Vec::new(),
            search_config: BoundedSearchConfig::default(),
            emptiness_config: EmptinessConfig::default(),
        }
    }

    /// Sets the initial instance (the information known before any access).
    #[must_use]
    pub fn with_initial(mut self, initial: Instance) -> Self {
        self.initial = initial;
        self
    }

    /// Adds a disjointness constraint assumed to hold on the hidden data.
    #[must_use]
    pub fn with_disjointness(mut self, constraint: DisjointnessConstraint) -> Self {
        self.disjointness.push(constraint);
        self
    }

    /// Overrides the bounded-search budgets.
    #[must_use]
    pub fn with_search_config(mut self, config: BoundedSearchConfig) -> Self {
        self.search_config = config;
        self
    }

    /// Overrides the automaton-emptiness budgets.
    #[must_use]
    pub fn with_emptiness_config(mut self, config: EmptinessConfig) -> Self {
        self.emptiness_config = config;
        self
    }

    /// The schema under analysis.
    #[must_use]
    pub fn schema(&self) -> &AccessSchema {
        &self.schema
    }

    /// The initial instance.
    #[must_use]
    pub fn initial(&self) -> &Instance {
        &self.initial
    }

    /// Checks satisfiability of an `AccLTL` formula over the schema's access
    /// paths, dispatching on the formula's fragment: the `X` fragment and the
    /// 0-ary fragment use the Theorem 4.12/4.14 procedures, `AccLTL+` uses
    /// the Lemma 4.5 translation plus A-automaton emptiness, and anything
    /// else falls back to the (sound, incomplete) bounded search.
    #[must_use]
    pub fn check_satisfiable(&self, formula: &AccLtl) -> AnalyzerReport {
        let fragment = classify(formula);
        match fragment {
            Fragment::XZeroAry => AnalyzerReport {
                outcome: solver::sat_x_fragment(
                    formula,
                    &self.schema,
                    &self.initial,
                    &self.search_config,
                )
                .expect("fragment checked by classify"),
                fragment,
                engine: Engine::XFragment,
            },
            Fragment::ZeroAry | Fragment::ZeroAryWithInequalities => AnalyzerReport {
                outcome: solver::sat_zero_fragment(
                    formula,
                    &self.schema,
                    &self.initial,
                    &self.search_config,
                )
                .expect("fragment checked by classify"),
                fragment,
                engine: Engine::ZeroFragment,
            },
            Fragment::BindingPositive => {
                let automaton = accltl_plus_to_automaton(formula);
                let outcome = match bounded_emptiness(
                    &automaton,
                    &self.schema,
                    &self.initial,
                    &self.emptiness_config,
                ) {
                    EmptinessOutcome::NonEmpty { witness } => SatOutcome::Satisfiable { witness },
                    EmptinessOutcome::Empty => SatOutcome::Unsatisfiable,
                    EmptinessOutcome::Unknown => SatOutcome::Unknown { explored: 0 },
                };
                AnalyzerReport {
                    outcome,
                    fragment,
                    engine: Engine::AutomatonPipeline,
                }
            }
            Fragment::Full | Fragment::FullWithInequalities => AnalyzerReport {
                outcome: solver::sat_full_bounded(
                    formula,
                    &self.schema,
                    &self.initial,
                    &self.search_config,
                ),
                fragment,
                engine: Engine::BoundedSearch,
            },
        }
    }

    /// Checks containment of `q1` in `q2` under the schema's access patterns
    /// and the analyzer's disjointness constraints, via the Proposition 4.4
    /// automaton.  Plain (access-unaware) CQ containment is checked first as
    /// a shortcut: it implies containment under access patterns.
    #[must_use]
    pub fn contained_under_access_patterns(
        &self,
        q1: &ConjunctiveQuery,
        q2: &ConjunctiveQuery,
    ) -> ContainmentOutcome {
        if cq_contained_in_cq(q1, q2) {
            return ContainmentOutcome::Contained;
        }
        let automaton = containment_automaton(&self.schema, q1, q2, &self.disjointness);
        match bounded_emptiness(
            &automaton,
            &self.schema,
            &self.initial,
            &self.emptiness_config,
        ) {
            EmptinessOutcome::Empty => ContainmentOutcome::Contained,
            EmptinessOutcome::NonEmpty { witness } => ContainmentOutcome::NotContained {
                counterexample: witness,
            },
            EmptinessOutcome::Unknown => ContainmentOutcome::Unknown,
        }
    }

    /// Long-term relevance of an access for a (boolean) query, under the
    /// analyzer's disjointness constraints.  When no constraints are present
    /// the combinatorial procedure of `accltl-paths` is used (it also returns
    /// grounded-semantics verdicts); with constraints the Proposition 4.4
    /// automaton is used.
    #[must_use]
    pub fn long_term_relevant(
        &self,
        access: &Access,
        query: &UnionOfCqs,
        grounded: bool,
    ) -> LtrVerdict {
        if self.disjointness.is_empty() {
            let options = LtrOptions {
                grounded,
                ..LtrOptions::default()
            };
            return long_term_relevant(&self.schema, access, query, &self.initial, &options)
                .unwrap_or(LtrVerdict::Unknown);
        }
        // With constraints: build one automaton per disjunct and take the
        // union of verdicts.
        for disjunct in &query.disjuncts {
            let automaton = ltr_automaton(&self.schema, access, disjunct, &self.disjointness);
            match bounded_emptiness(
                &automaton,
                &self.schema,
                &self.initial,
                &self.emptiness_config,
            ) {
                EmptinessOutcome::NonEmpty { witness } => return LtrVerdict::Relevant { witness },
                EmptinessOutcome::Unknown => return LtrVerdict::Unknown,
                EmptinessOutcome::Empty => {}
            }
        }
        LtrVerdict::NotRelevant
    }

    /// Maximal answers of a query under the access restrictions, relative to
    /// a hidden instance (the actual content of the source).
    pub fn maximal_answers(
        &self,
        query: &ConjunctiveQuery,
        hidden: &Instance,
    ) -> accltl_paths::Result<accltl_paths::AnswerabilityReport> {
        accltl_paths::maximal_answers(&self.schema, query, hidden, &self.initial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accltl_logic::properties;
    use accltl_logic::vocabulary::{isbind_atom, isbind_prop};
    use accltl_paths::access::phone_directory_access_schema;
    use accltl_paths::generator::phone_directory_hidden_instance;
    use accltl_relational::{atom, cq, tuple, PosFormula, Term};

    fn analyzer() -> AccessAnalyzer {
        AccessAnalyzer::new(phone_directory_access_schema())
    }

    #[test]
    fn dispatch_selects_the_cheapest_engine() {
        let a = analyzer();

        let x_formula = AccLtl::next(AccLtl::atom(isbind_prop("AcM1")));
        assert_eq!(a.check_satisfiable(&x_formula).engine, Engine::XFragment);

        let zero_formula = AccLtl::finally(AccLtl::atom(isbind_prop("AcM1")));
        assert_eq!(
            a.check_satisfiable(&zero_formula).engine,
            Engine::ZeroFragment
        );

        let plus_formula = AccLtl::finally(AccLtl::atom(PosFormula::exists(
            vec!["n"],
            isbind_atom("AcM1", vec![Term::var("n")]),
        )));
        assert_eq!(
            a.check_satisfiable(&plus_formula).engine,
            Engine::AutomatonPipeline
        );

        let full_formula = AccLtl::globally(AccLtl::not(plus_formula.clone()));
        assert_eq!(
            a.check_satisfiable(&full_formula).engine,
            Engine::BoundedSearch
        );
    }

    #[test]
    fn satisfiability_reports_carry_witnesses() {
        let a = analyzer();
        let jones = cq!(<- atom!("Address"; s, p, @"Jones", h));
        let formula = properties::eventually_answered_formula(&jones);
        let report = a.check_satisfiable(&formula);
        assert!(report.is_satisfiable());
        let witness = report.witness().expect("witness available");
        assert!(jones.holds(
            &witness
                .configuration(a.schema(), a.initial())
                .expect("valid witness path")
        ));
    }

    #[test]
    fn containment_under_access_patterns_matches_plain_containment_when_it_holds() {
        let a = analyzer();
        let q1 = cq!(<- atom!("Address"; s, p, @"Jones", h));
        let q2 = cq!(<- atom!("Address"; s, p, n, h));
        assert_eq!(
            a.contained_under_access_patterns(&q1, &q2),
            ContainmentOutcome::Contained
        );
        let reverse = a.contained_under_access_patterns(&q2, &q1);
        assert!(matches!(reverse, ContainmentOutcome::NotContained { .. }));
    }

    #[test]
    fn disjointness_constraints_flow_into_containment() {
        let q1 = cq!(<- atom!("Mobile#"; n, p, s, ph), atom!("Address"; n, p2, m, h));
        let q_false = cq!(<- atom!("Mobile#"; @"⊥no", p, s, ph));
        let unconstrained = analyzer();
        assert!(matches!(
            unconstrained.contained_under_access_patterns(&q1, &q_false),
            ContainmentOutcome::NotContained { .. }
        ));
        let constrained =
            analyzer().with_disjointness(DisjointnessConstraint::new("Mobile#", 0, "Address", 0));
        assert_eq!(
            constrained.contained_under_access_patterns(&q1, &q_false),
            ContainmentOutcome::Contained
        );
    }

    #[test]
    fn relevance_with_and_without_constraints() {
        let jones = UnionOfCqs::single(cq!(<- atom!("Address"; s, p, @"Jones", h)));
        let access = Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]);
        let plain = analyzer();
        assert!(plain
            .long_term_relevant(&access, &jones, false)
            .is_relevant());

        let constrained =
            analyzer().with_disjointness(DisjointnessConstraint::new("Mobile#", 0, "Address", 0));
        assert!(constrained
            .long_term_relevant(&access, &jones, false)
            .is_relevant());

        let irrelevant = Access::new("AcM1", tuple!["Jones"]);
        assert_eq!(
            plain.long_term_relevant(&irrelevant, &jones, false),
            LtrVerdict::NotRelevant
        );
    }

    #[test]
    fn maximal_answers_are_exposed() {
        let a = analyzer();
        let q = cq!([x, y, z] <- atom!("Address"; x, y, @"Jones", z));
        let report = a
            .maximal_answers(&q, &phone_directory_hidden_instance())
            .unwrap();
        assert!(report.answers.is_empty());
        assert!(!report.is_complete());
    }
}
