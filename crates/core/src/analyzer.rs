//! The high-level analyzer: one object holding a schema, an initial instance
//! and constraints, dispatching each question to the appropriate decision
//! procedure.

use accltl_automata::applications::{containment_automaton, ltr_automaton};
use accltl_automata::{
    accltl_plus_to_automaton, bounded_emptiness, bounded_emptiness_batch,
    bounded_emptiness_batch_with_config, bounded_emptiness_report, AAutomaton, EmptinessConfig,
    EmptinessOutcome,
};
use accltl_logic::bounded::{
    BoundedSearchConfig, BoundedSearcher, MonitorSession as BoundedSession, SatOutcome,
    SessionReport,
};
use accltl_logic::fragment::{classify, Fragment};
use accltl_logic::AccLtl;
use accltl_obs::trace;
use accltl_paths::relevance::{long_term_relevant, LtrOptions, LtrVerdict};
use accltl_paths::{Access, AccessPath, AccessSchema, EngineConfig, Response};
use accltl_relational::{
    chase_with_stats, cq_contained_in_cq, ChaseConfig, ChaseOutcome, ChaseStats, ConjunctiveQuery,
    Constraint, DisjointnessConstraint, Instance, UnionOfCqs,
};

use crate::report::RunReport;

/// Which engine answered a question (reported for transparency and used by
/// the pipeline-ablation benchmark).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The ΣP2 procedure for the `AccLTL(X)` fragment (Theorem 4.14).
    XFragment,
    /// The PSPACE procedure for the 0-ary `IsBind` fragment (Theorem 4.12).
    ZeroFragment,
    /// The A-automaton pipeline for `AccLTL+` (Theorems 4.2/4.6).
    AutomatonPipeline,
    /// The bounded witness search for the undecidable languages.
    BoundedSearch,
}

/// The outcome of an analyzer question, together with the engine that
/// produced it and the run accounting ([`RunReport`]) behind it.
///
/// Equality compares the verdict surface only (outcome, fragment, engine):
/// the [`AnalyzerReport::run`] counters describe *work*, which legitimately
/// varies with caches, thread counts and environment knobs, while verdicts
/// are deterministic.
#[derive(Debug, Clone)]
pub struct AnalyzerReport {
    /// The satisfiability outcome.
    pub outcome: SatOutcome,
    /// The fragment the formula was classified into.
    pub fragment: Fragment,
    /// The engine used.
    pub engine: Engine,
    /// Machine-readable accounting for the run that answered the question:
    /// search counters, cache activity and (when the analyzer chased
    /// constraints) the chase counters.
    pub run: RunReport,
}

impl PartialEq for AnalyzerReport {
    fn eq(&self, other: &Self) -> bool {
        self.outcome == other.outcome
            && self.fragment == other.fragment
            && self.engine == other.engine
    }
}

impl Eq for AnalyzerReport {}

impl AnalyzerReport {
    /// True if a witness path was found.
    #[must_use]
    pub fn is_satisfiable(&self) -> bool {
        self.outcome.is_satisfiable()
    }

    /// The witness path, if any.
    #[must_use]
    pub fn witness(&self) -> Option<&AccessPath> {
        match &self.outcome {
            SatOutcome::Satisfiable { witness } => Some(witness),
            _ => None,
        }
    }
}

/// A batch of satisfiability questions answered together: properties that
/// dispatch to the same engine share one frontier run (and one guard-verdict
/// cache) through the batched back-ends, without changing any per-property
/// verdict (see [`AccessAnalyzer::check_all`]).
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// The formulas to check; reports come back in the same order.
    pub properties: Vec<AccLtl>,
    /// An explicit engine configuration applied verbatim to every property.
    /// `None` uses the analyzer's own budgets layered over the `ACCLTL_*`
    /// environment, exactly like [`AccessAnalyzer::check_satisfiable`].
    pub config: Option<EngineConfig>,
}

impl BatchRequest {
    /// A request for the given properties under the analyzer's own budgets.
    #[must_use]
    pub fn new(properties: Vec<AccLtl>) -> Self {
        BatchRequest {
            properties,
            config: None,
        }
    }

    /// Overrides the engine configuration for every property in the batch.
    #[must_use]
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = Some(config);
        self
    }
}

/// The verdict of a containment question.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainmentOutcome {
    /// `Q1 ⊑ Q2` under the access restrictions (and constraints).
    Contained,
    /// Containment fails; a counterexample access path is returned.
    NotContained {
        /// A path reaching a configuration satisfying `Q1` but not `Q2`.
        counterexample: AccessPath,
    },
    /// The bounded engine could not settle the question.
    Unknown,
}

/// The analyzer: a schema with access methods, an initial instance, the
/// constraints assumed on the data, and engine budgets.
#[derive(Debug, Clone)]
pub struct AccessAnalyzer {
    schema: AccessSchema,
    initial: Instance,
    disjointness: Vec<DisjointnessConstraint>,
    constraints: Vec<Constraint>,
    chase_stats: Option<ChaseStats>,
    search_config: BoundedSearchConfig,
    emptiness_config: EmptinessConfig,
}

impl AccessAnalyzer {
    /// Creates an analyzer over a schema with an empty initial instance and
    /// no constraints.
    #[must_use]
    pub fn new(schema: AccessSchema) -> Self {
        AccessAnalyzer {
            schema,
            initial: Instance::new(),
            disjointness: Vec::new(),
            constraints: Vec::new(),
            chase_stats: None,
            search_config: BoundedSearchConfig::default(),
            emptiness_config: EmptinessConfig::default(),
        }
    }

    /// Sets the initial instance (the information known before any access).
    #[must_use]
    pub fn with_initial(mut self, initial: Instance) -> Self {
        self.initial = initial;
        self
    }

    /// Adds a disjointness constraint assumed to hold on the hidden data.
    #[must_use]
    pub fn with_disjointness(mut self, constraint: DisjointnessConstraint) -> Self {
        self.disjointness.push(constraint);
        self
    }

    /// Supplies integrity constraints (functional and inclusion
    /// dependencies) assumed on the accessible data: the current initial
    /// instance is repaired immediately by the chase
    /// (`accltl_relational::chase`), and the chase counters are attached to
    /// the [`RunReport`] of every subsequent analyzer question.
    ///
    /// The chase runs at the time of this call, so in a builder chain it
    /// must come *after* [`AccessAnalyzer::with_initial`].  If the chase
    /// fails or exhausts its budget the initial instance is left untouched
    /// (the counters are still recorded).
    #[must_use]
    pub fn with_constraints(mut self, constraints: Vec<Constraint>) -> Self {
        let (outcome, stats) =
            chase_with_stats(&self.initial, &constraints, &ChaseConfig::default());
        if let ChaseOutcome::Completed(repaired) = outcome {
            self.initial = repaired;
        }
        self.chase_stats = Some(stats);
        self.constraints = constraints;
        self
    }

    /// Overrides the bounded-search budgets.
    #[must_use]
    pub fn with_search_config(mut self, config: BoundedSearchConfig) -> Self {
        self.search_config = config;
        self
    }

    /// Overrides the automaton-emptiness budgets.
    #[must_use]
    pub fn with_emptiness_config(mut self, config: EmptinessConfig) -> Self {
        self.emptiness_config = config;
        self
    }

    /// The schema under analysis.
    #[must_use]
    pub fn schema(&self) -> &AccessSchema {
        &self.schema
    }

    /// The initial instance (after constraint repair, when
    /// [`AccessAnalyzer::with_constraints`] was used).
    #[must_use]
    pub fn initial(&self) -> &Instance {
        &self.initial
    }

    /// The integrity constraints supplied via
    /// [`AccessAnalyzer::with_constraints`].
    #[must_use]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The counters of the constraint-repair chase, when constraints were
    /// supplied.
    #[must_use]
    pub fn chase_stats(&self) -> Option<ChaseStats> {
        self.chase_stats
    }

    /// Checks satisfiability of an `AccLTL` formula over the schema's access
    /// paths, dispatching on the formula's fragment: the `X` fragment and the
    /// 0-ary fragment use the Theorem 4.12/4.14 procedures, `AccLTL+` uses
    /// the Lemma 4.5 translation plus A-automaton emptiness, and anything
    /// else falls back to the (sound, incomplete) bounded search.
    #[must_use]
    pub fn check_satisfiable(&self, formula: &AccLtl) -> AnalyzerReport {
        let _span = trace::span("analyzer.check_satisfiable");
        let fragment = classify(formula);
        match fragment {
            // The zero fragments run under the 0-ary interpretation, as in
            // `solver::sat_x_fragment` / `solver::sat_zero_fragment` (the
            // fragment has already been checked by `classify`).
            Fragment::XZeroAry | Fragment::ZeroAry | Fragment::ZeroAryWithInequalities => {
                let report =
                    BoundedSearcher::new(&self.schema, &self.initial, true, self.search_config)
                        .run(formula);
                let run = RunReport::from_search(&report).with_chase(self.chase_stats);
                let engine = if fragment == Fragment::XZeroAry {
                    Engine::XFragment
                } else {
                    Engine::ZeroFragment
                };
                AnalyzerReport {
                    outcome: report.verdict,
                    fragment,
                    engine,
                    run,
                }
            }
            Fragment::BindingPositive => {
                let automaton = accltl_plus_to_automaton(formula);
                let report = bounded_emptiness_report(
                    &automaton,
                    &self.schema,
                    &self.initial,
                    &self.emptiness_config,
                );
                let run = RunReport::from_search(&report).with_chase(self.chase_stats);
                let outcome = match report.verdict {
                    EmptinessOutcome::NonEmpty { witness } => SatOutcome::Satisfiable { witness },
                    EmptinessOutcome::Empty => SatOutcome::Unsatisfiable,
                    EmptinessOutcome::Unknown => SatOutcome::Unknown { explored: 0 },
                };
                AnalyzerReport {
                    outcome,
                    fragment,
                    engine: Engine::AutomatonPipeline,
                    run,
                }
            }
            // Full bindings for the undecidable languages; `Unsatisfiable`
            // is downgraded, as in `solver::sat_full_bounded`.
            Fragment::Full | Fragment::FullWithInequalities => {
                let report =
                    BoundedSearcher::new(&self.schema, &self.initial, false, self.search_config)
                        .run(formula);
                let run = RunReport::from_search(&report).with_chase(self.chase_stats);
                let outcome = match report.verdict {
                    SatOutcome::Unsatisfiable => SatOutcome::Unknown { explored: 0 },
                    other => other,
                };
                AnalyzerReport {
                    outcome,
                    fragment,
                    engine: Engine::BoundedSearch,
                    run,
                }
            }
        }
    }

    /// Checks satisfiability of every property in the request, batching
    /// properties that dispatch to the same engine through one shared
    /// configuration-space exploration: zero-ary fragments share one
    /// [`BoundedSearcher::run_batch`] run, `AccLTL+` formulas share one
    /// [`bounded_emptiness_batch`] run, and full-language formulas share a
    /// second bounded batch.  Reports come back in input order, and each is
    /// identical to what [`AccessAnalyzer::check_satisfiable`] returns for
    /// that property alone (the engine's determinism contract).
    ///
    /// With [`BatchRequest::config`] set, the explicit [`EngineConfig`] is
    /// used verbatim for every property instead of the analyzer's budgets.
    #[must_use]
    pub fn check_all(&self, request: &BatchRequest) -> Vec<AnalyzerReport> {
        let _span = trace::span_fields(
            "analyzer.check_all",
            &[("properties", request.properties.len() as u64)],
        );
        let fragments: Vec<Fragment> = request.properties.iter().map(classify).collect();
        let mut reports: Vec<Option<AnalyzerReport>> = vec![None; request.properties.len()];

        let mut zero: Vec<usize> = Vec::new();
        let mut plus: Vec<usize> = Vec::new();
        let mut full: Vec<usize> = Vec::new();
        for (index, fragment) in fragments.iter().enumerate() {
            match fragment {
                Fragment::XZeroAry | Fragment::ZeroAry | Fragment::ZeroAryWithInequalities => {
                    zero.push(index);
                }
                Fragment::BindingPositive => plus.push(index),
                Fragment::Full | Fragment::FullWithInequalities => full.push(index),
            }
        }

        // The two bounded-search groups: 0-ary interpretation for the
        // decidable zero fragments, full bindings for the undecidable
        // languages (whose `Unsatisfiable` is downgraded, as in
        // `solver::sat_full_bounded`).
        for (indices, zero_ary) in [(&zero, true), (&full, false)] {
            if indices.is_empty() {
                continue;
            }
            let searcher = match request.config {
                Some(engine) => BoundedSearcher::with_engine_config(
                    &self.schema,
                    &self.initial,
                    zero_ary,
                    engine,
                ),
                None => {
                    BoundedSearcher::new(&self.schema, &self.initial, zero_ary, self.search_config)
                }
            };
            let formulas: Vec<AccLtl> = indices
                .iter()
                .map(|&index| request.properties[index].clone())
                .collect();
            for (&index, report) in indices.iter().zip(searcher.run_batch(&formulas)) {
                let fragment = fragments[index];
                let run = RunReport::from_search(&report).with_chase(self.chase_stats);
                let (outcome, engine) = if zero_ary {
                    let engine = if fragment == Fragment::XZeroAry {
                        Engine::XFragment
                    } else {
                        Engine::ZeroFragment
                    };
                    (report.verdict, engine)
                } else {
                    let outcome = match report.verdict {
                        SatOutcome::Unsatisfiable => SatOutcome::Unknown { explored: 0 },
                        other => other,
                    };
                    (outcome, Engine::BoundedSearch)
                };
                reports[index] = Some(AnalyzerReport {
                    outcome,
                    fragment,
                    engine,
                    run,
                });
            }
        }

        if !plus.is_empty() {
            let automata: Vec<AAutomaton> = plus
                .iter()
                .map(|&index| accltl_plus_to_automaton(&request.properties[index]))
                .collect();
            let refs: Vec<&AAutomaton> = automata.iter().collect();
            let emptiness = match request.config {
                Some(engine) => {
                    bounded_emptiness_batch_with_config(&refs, &self.schema, &self.initial, engine)
                }
                None => bounded_emptiness_batch(
                    &refs,
                    &self.schema,
                    &self.initial,
                    &self.emptiness_config,
                ),
            };
            for (&index, report) in plus.iter().zip(emptiness) {
                let run = RunReport::from_search(&report).with_chase(self.chase_stats);
                let outcome = match report.verdict {
                    EmptinessOutcome::NonEmpty { witness } => SatOutcome::Satisfiable { witness },
                    EmptinessOutcome::Empty => SatOutcome::Unsatisfiable,
                    EmptinessOutcome::Unknown => SatOutcome::Unknown { explored: 0 },
                };
                reports[index] = Some(AnalyzerReport {
                    outcome,
                    fragment: fragments[index],
                    engine: Engine::AutomatonPipeline,
                    run,
                });
            }
        }

        reports
            .into_iter()
            .map(|report| report.expect("every property dispatched to exactly one group"))
            .collect()
    }

    /// Checks containment of `q1` in `q2` under the schema's access patterns
    /// and the analyzer's disjointness constraints, via the Proposition 4.4
    /// automaton.  Plain (access-unaware) CQ containment is checked first as
    /// a shortcut: it implies containment under access patterns.
    #[must_use]
    pub fn contained_under_access_patterns(
        &self,
        q1: &ConjunctiveQuery,
        q2: &ConjunctiveQuery,
    ) -> ContainmentOutcome {
        if cq_contained_in_cq(q1, q2) {
            return ContainmentOutcome::Contained;
        }
        let automaton = containment_automaton(&self.schema, q1, q2, &self.disjointness);
        match bounded_emptiness(
            &automaton,
            &self.schema,
            &self.initial,
            &self.emptiness_config,
        ) {
            EmptinessOutcome::Empty => ContainmentOutcome::Contained,
            EmptinessOutcome::NonEmpty { witness } => ContainmentOutcome::NotContained {
                counterexample: witness,
            },
            EmptinessOutcome::Unknown => ContainmentOutcome::Unknown,
        }
    }

    /// Long-term relevance of an access for a (boolean) query, under the
    /// analyzer's disjointness constraints.  When no constraints are present
    /// the combinatorial procedure of `accltl-paths` is used (it also returns
    /// grounded-semantics verdicts); with constraints the Proposition 4.4
    /// automaton is used.
    #[must_use]
    pub fn long_term_relevant(
        &self,
        access: &Access,
        query: &UnionOfCqs,
        grounded: bool,
    ) -> LtrVerdict {
        self.long_term_relevant_in(access, query, grounded, &self.initial)
    }

    /// [`AccessAnalyzer::long_term_relevant`] against an explicit known
    /// instance: used by [`MonitorSession::still_relevant`], whose known
    /// instance grows past the analyzer's initial one.
    fn long_term_relevant_in(
        &self,
        access: &Access,
        query: &UnionOfCqs,
        grounded: bool,
        initial: &Instance,
    ) -> LtrVerdict {
        if self.disjointness.is_empty() {
            let options = LtrOptions {
                grounded,
                ..LtrOptions::default()
            };
            return long_term_relevant(&self.schema, access, query, initial, &options)
                .unwrap_or(LtrVerdict::Unknown);
        }
        // With constraints: build one automaton per disjunct and take the
        // union of verdicts.
        for disjunct in &query.disjuncts {
            let automaton = ltr_automaton(&self.schema, access, disjunct, &self.disjointness);
            match bounded_emptiness(&automaton, &self.schema, initial, &self.emptiness_config) {
                EmptinessOutcome::NonEmpty { witness } => return LtrVerdict::Relevant { witness },
                EmptinessOutcome::Unknown => return LtrVerdict::Unknown,
                EmptinessOutcome::Empty => {}
            }
        }
        LtrVerdict::NotRelevant
    }

    /// Maximal answers of a query under the access restrictions, relative to
    /// a hidden instance (the actual content of the source).
    pub fn maximal_answers(
        &self,
        query: &ConjunctiveQuery,
        hidden: &Instance,
    ) -> accltl_paths::Result<accltl_paths::AnswerabilityReport> {
        accltl_paths::maximal_answers(&self.schema, query, hidden, &self.initial)
    }

    /// Opens a long-lived monitoring session over the given properties: each
    /// [`MonitorSession::step`] extends the known instance by one concrete
    /// access and re-answers every property, reusing the engine and
    /// guard-verdict caches the previous steps already paid for (the
    /// runtime-relevance loop of *"Determining Relevance of Accesses at
    /// Runtime"*).  Verdicts are contractually byte-identical to re-running
    /// the analysis from scratch over the grown instance;
    /// `ACCLTL_DISABLE_SESSION_REUSE=1` makes the session do exactly that,
    /// which the differential harness in `tests/session_props.rs` uses to
    /// prove the contract.
    ///
    /// Properties are partitioned as in [`AccessAnalyzer::check_all`]: the
    /// decidable zero fragments run under the 0-ary interpretation, every
    /// other fragment runs the bounded search under full bindings with
    /// `Unsatisfiable` downgraded to `Unknown` when read through
    /// [`MonitorSession::still_satisfiable`].  (For `AccLTL+` that downgrade
    /// is conservative — [`AccessAnalyzer::check_satisfiable`] routes the
    /// one-shot question through the automaton pipeline, which can certify
    /// emptiness.)
    #[must_use]
    pub fn monitor(&self, properties: &[AccLtl]) -> MonitorSession<'_> {
        let _span = trace::span_fields(
            "analyzer.monitor",
            &[("properties", properties.len() as u64)],
        );
        let fragments: Vec<Fragment> = properties.iter().map(classify).collect();
        let mut zero: Vec<AccLtl> = Vec::new();
        let mut other: Vec<AccLtl> = Vec::new();
        let mut slots: Vec<(bool, usize)> = Vec::with_capacity(properties.len());
        for (property, fragment) in properties.iter().zip(&fragments) {
            match fragment {
                Fragment::XZeroAry | Fragment::ZeroAry | Fragment::ZeroAryWithInequalities => {
                    slots.push((true, zero.len()));
                    zero.push(property.clone());
                }
                Fragment::BindingPositive | Fragment::Full | Fragment::FullWithInequalities => {
                    slots.push((false, other.len()));
                    other.push(property.clone());
                }
            }
        }
        let open = |formulas: &[AccLtl], zero_ary: bool| {
            (!formulas.is_empty()).then(|| {
                BoundedSearcher::new(&self.schema, &self.initial, zero_ary, self.search_config)
                    .open_session(formulas)
            })
        };
        let mut session = MonitorSession {
            analyzer: self,
            properties: properties.to_vec(),
            fragments,
            slots,
            zero: open(&zero, true),
            other: open(&other, false),
            current: self.initial.clone(),
            steps: 0,
            last: SessionReport::default(),
        };
        session.last = session.combined_report();
        session
    }
}

/// A long-lived monitoring session over a set of properties and a growing
/// instance, opened by [`AccessAnalyzer::monitor`].
///
/// Each [`MonitorSession::step`] feeds one concrete access/response pair into
/// the underlying [`BoundedSearcher`] sessions (one per engine group, exactly
/// the grouping of [`AccessAnalyzer::check_all`]) and refreshes every
/// verdict.  [`MonitorSession::still_satisfiable`] reads the latest verdict
/// for one property; [`MonitorSession::still_relevant`] asks the long-term
/// relevance question against the *current* instance.  The per-step
/// accounting ([`SessionReport`]: reused vs. recomputed engine-cache entries,
/// explored nodes, cost, guard consults) aggregates the groups' reports and
/// also flows into the `accltl-obs` registry (`session.*` metrics) and trace
/// spans.
pub struct MonitorSession<'a> {
    analyzer: &'a AccessAnalyzer,
    properties: Vec<AccLtl>,
    fragments: Vec<Fragment>,
    /// Property index → (zero-ary group?, position inside that group).
    slots: Vec<(bool, usize)>,
    zero: Option<BoundedSession<'a>>,
    other: Option<BoundedSession<'a>>,
    current: Instance,
    steps: usize,
    last: SessionReport,
}

impl<'a> MonitorSession<'a> {
    /// The monitored properties, in input order.
    #[must_use]
    pub fn properties(&self) -> &[AccLtl] {
        &self.properties
    }

    /// The fragment of the property at `index` (input order).
    #[must_use]
    pub fn fragment(&self, index: usize) -> Fragment {
        self.fragments[index]
    }

    /// The analyzer's initial instance extended by every response received
    /// so far.
    #[must_use]
    pub fn current(&self) -> &Instance {
        &self.current
    }

    /// Number of [`MonitorSession::step`] calls so far.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The latest step's aggregated accounting (all engine groups summed).
    #[must_use]
    pub fn last_report(&self) -> &SessionReport {
        &self.last
    }

    /// Extends the known instance by one access/response pair and re-answers
    /// every monitored property.  The access must name a schema method and
    /// the response must be well-formed for its binding, exactly as in
    /// [`AccessPath::validate`].  Returns the step's aggregated accounting;
    /// verdicts are read through [`MonitorSession::still_satisfiable`].
    pub fn step(
        &mut self,
        access: &Access,
        response: &Response,
    ) -> accltl_paths::Result<&SessionReport> {
        let method = self.analyzer.schema.require_method(access.method)?;
        let relation = method.relation_id();
        AccessPath::from_steps(vec![(access.clone(), response.clone())])
            .validate(&self.analyzer.schema)?;
        self.steps += 1;
        let _span = trace::span_fields("analyzer.session_step", &[("step", self.steps as u64)]);
        for tuple in response {
            self.current.add_fact(relation, tuple.clone());
        }
        if let Some(session) = self.zero.as_mut() {
            session.step(access, response)?;
        }
        if let Some(session) = self.other.as_mut() {
            session.step(access, response)?;
        }
        self.last = self.combined_report();
        Ok(&self.last)
    }

    /// The latest verdict for the property at `index` (input order), with
    /// the same downgrade as [`AccessAnalyzer::check_satisfiable`]'s bounded
    /// fallback: outside the decidable zero fragments, `Unsatisfiable` from
    /// the bounded search is conservatively reported as `Unknown`.
    #[must_use]
    pub fn still_satisfiable(&self, index: usize) -> SatOutcome {
        let (zero_ary, slot) = self.slots[index];
        if zero_ary {
            let session = self.zero.as_ref().expect("zero group is non-empty");
            session.verdict(slot).clone()
        } else {
            let session = self.other.as_ref().expect("full group is non-empty");
            match session.verdict(slot) {
                SatOutcome::Unsatisfiable => SatOutcome::Unknown { explored: 0 },
                verdict => verdict.clone(),
            }
        }
    }

    /// Latest verdicts for every monitored property, in input order.
    #[must_use]
    pub fn verdicts(&self) -> Vec<SatOutcome> {
        (0..self.slots.len())
            .map(|index| self.still_satisfiable(index))
            .collect()
    }

    /// Long-term relevance of `access` for `query` against the *current*
    /// instance (initial plus every response received so far), under the
    /// analyzer's disjointness constraints — the per-step question of the
    /// runtime-relevance loop.
    #[must_use]
    pub fn still_relevant(
        &self,
        access: &Access,
        query: &UnionOfCqs,
        grounded: bool,
    ) -> LtrVerdict {
        self.analyzer
            .long_term_relevant_in(access, query, grounded, &self.current)
    }

    /// Sums the engine groups' latest [`SessionReport`]s into one.
    fn combined_report(&self) -> SessionReport {
        let sessions: Vec<&BoundedSession<'a>> = [self.zero.as_ref(), self.other.as_ref()]
            .into_iter()
            .flatten()
            .collect();
        let mut combined = SessionReport {
            step: self.steps,
            replayed: !sessions.is_empty(),
            ..SessionReport::default()
        };
        for session in sessions {
            let report = session.last_report();
            combined.replayed &= report.replayed;
            combined.reused += report.reused;
            combined.recomputed += report.recomputed;
            combined.explored += report.explored;
            combined.cost += report.cost;
            combined.guard.hits += report.guard.hits;
            combined.guard.misses += report.guard.misses;
        }
        combined
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accltl_logic::properties;
    use accltl_logic::vocabulary::{isbind_atom, isbind_prop};
    use accltl_paths::access::phone_directory_access_schema;
    use accltl_paths::generator::phone_directory_hidden_instance;
    use accltl_relational::{atom, cq, tuple, PosFormula, Term};

    fn analyzer() -> AccessAnalyzer {
        AccessAnalyzer::new(phone_directory_access_schema())
    }

    #[test]
    fn dispatch_selects_the_cheapest_engine() {
        let a = analyzer();

        let x_formula = AccLtl::next(AccLtl::atom(isbind_prop("AcM1")));
        assert_eq!(a.check_satisfiable(&x_formula).engine, Engine::XFragment);

        let zero_formula = AccLtl::finally(AccLtl::atom(isbind_prop("AcM1")));
        assert_eq!(
            a.check_satisfiable(&zero_formula).engine,
            Engine::ZeroFragment
        );

        let plus_formula = AccLtl::finally(AccLtl::atom(PosFormula::exists(
            vec!["n"],
            isbind_atom("AcM1", vec![Term::var("n")]),
        )));
        assert_eq!(
            a.check_satisfiable(&plus_formula).engine,
            Engine::AutomatonPipeline
        );

        let full_formula = AccLtl::globally(AccLtl::not(plus_formula.clone()));
        assert_eq!(
            a.check_satisfiable(&full_formula).engine,
            Engine::BoundedSearch
        );
    }

    #[test]
    fn satisfiability_reports_carry_witnesses() {
        let a = analyzer();
        let jones = cq!(<- atom!("Address"; s, p, @"Jones", h));
        let formula = properties::eventually_answered_formula(&jones);
        let report = a.check_satisfiable(&formula);
        assert!(report.is_satisfiable());
        let witness = report.witness().expect("witness available");
        assert!(jones.holds(
            &witness
                .configuration(a.schema(), a.initial())
                .expect("valid witness path")
        ));
    }

    #[test]
    fn containment_under_access_patterns_matches_plain_containment_when_it_holds() {
        let a = analyzer();
        let q1 = cq!(<- atom!("Address"; s, p, @"Jones", h));
        let q2 = cq!(<- atom!("Address"; s, p, n, h));
        assert_eq!(
            a.contained_under_access_patterns(&q1, &q2),
            ContainmentOutcome::Contained
        );
        let reverse = a.contained_under_access_patterns(&q2, &q1);
        assert!(matches!(reverse, ContainmentOutcome::NotContained { .. }));
    }

    #[test]
    fn disjointness_constraints_flow_into_containment() {
        let q1 = cq!(<- atom!("Mobile#"; n, p, s, ph), atom!("Address"; n, p2, m, h));
        let q_false = cq!(<- atom!("Mobile#"; @"⊥no", p, s, ph));
        let unconstrained = analyzer();
        assert!(matches!(
            unconstrained.contained_under_access_patterns(&q1, &q_false),
            ContainmentOutcome::NotContained { .. }
        ));
        let constrained =
            analyzer().with_disjointness(DisjointnessConstraint::new("Mobile#", 0, "Address", 0));
        assert_eq!(
            constrained.contained_under_access_patterns(&q1, &q_false),
            ContainmentOutcome::Contained
        );
    }

    #[test]
    fn relevance_with_and_without_constraints() {
        let jones = UnionOfCqs::single(cq!(<- atom!("Address"; s, p, @"Jones", h)));
        let access = Access::new("AcM2", tuple!["Parks Rd", "OX13QD"]);
        let plain = analyzer();
        assert!(plain
            .long_term_relevant(&access, &jones, false)
            .is_relevant());

        let constrained =
            analyzer().with_disjointness(DisjointnessConstraint::new("Mobile#", 0, "Address", 0));
        assert!(constrained
            .long_term_relevant(&access, &jones, false)
            .is_relevant());

        let irrelevant = Access::new("AcM1", tuple!["Jones"]);
        assert_eq!(
            plain.long_term_relevant(&irrelevant, &jones, false),
            LtrVerdict::NotRelevant
        );
    }

    #[test]
    fn reports_carry_run_accounting() {
        let a = analyzer();
        let jones = cq!(<- atom!("Address"; s, p, @"Jones", h));
        let formula = properties::eventually_answered_formula(&jones);
        let report = a.check_satisfiable(&formula);
        assert!(report.run.explored > 0);
        assert!(report.run.cost > 0);
        assert!(report.run.chase.is_none());
        // The batched path carries the same accounting surface.
        let batch = a.check_all(&BatchRequest::new(vec![formula.clone()]));
        assert_eq!(batch[0], report);
        assert_eq!(batch[0].run.explored, report.run.explored);
    }

    #[test]
    fn constraints_chase_the_initial_instance_and_flow_into_reports() {
        use accltl_relational::FunctionalDependency;

        // Address(street, postcode, name, houseno): make postcode
        // functionally determined by street, so two facts with the same
        // street merge their postcodes.
        let mut initial = Instance::new();
        initial.add_fact("Address", tuple!["Parks Rd", "OX13QD", "Jones", "1"]);
        initial.add_fact("Address", tuple!["Parks Rd", "??", "Jones", "1"]);
        let fd = Constraint::Fd(FunctionalDependency::new("Address", vec![0], 1));

        let a = analyzer().with_initial(initial).with_constraints(vec![fd]);
        let stats = a.chase_stats().expect("constraints were chased");
        assert!(stats.passes >= 1);
        assert_eq!(a.constraints().len(), 1);

        let formula = AccLtl::finally(AccLtl::atom(isbind_prop("AcM1")));
        let report = a.check_satisfiable(&formula);
        let chase = report.run.chase.expect("chase counters attached");
        assert_eq!(chase.passes, stats.passes);
    }

    #[test]
    fn maximal_answers_are_exposed() {
        let a = analyzer();
        let q = cq!([x, y, z] <- atom!("Address"; x, y, @"Jones", z));
        let report = a
            .maximal_answers(&q, &phone_directory_hidden_instance())
            .unwrap();
        assert!(report.answers.is_empty());
        assert!(!report.is_complete());
    }
}
