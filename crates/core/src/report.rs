//! Unified machine-readable run reports: one accounting value combining the
//! engine-side counters of a [`SearchReport`] with the constraint-repair
//! counters of a [`ChaseStats`], plus its JSON rendering.
//!
//! Every [`crate::AnalyzerReport`] carries a [`RunReport`], so one
//! [`crate::AccessAnalyzer::check_all`] call returns engine *and* chase
//! counters per property — the per-request introspection surface the
//! analysis-as-a-service direction needs.

use accltl_obs::json::{parse, JsonObject, JsonValue};
use accltl_paths::engine::{EngineCacheStats, SearchReport};
use accltl_relational::{ChaseStats, GuardCacheStats};

/// Accounting for one analyzer question: search-side counters (explored
/// states, step cost, guard-/engine-cache activity) plus the chase counters
/// of the analyzer's constraint-repair preprocessing, when constraints were
/// supplied.
///
/// Like `SearchReport`, equality of the surrounding [`crate::AnalyzerReport`]
/// deliberately ignores this value: the counters describe *work*, which
/// varies with caches, threads and environment, while verdicts do not.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunReport {
    /// Search states discovered (zero for questions answered without a
    /// search, e.g. empty-path short-circuits).
    pub explored: usize,
    /// Accumulated step cost (guard consults) charged against the budget.
    pub cost: usize,
    /// Guard-cache counters for this question's consults.
    pub guard_cache: GuardCacheStats,
    /// Engine-level shared-cache counters of the run that answered it.
    pub engine_cache: EngineCacheStats,
    /// Chase counters of the analyzer's constraint-repair preprocessing
    /// ([`crate::AccessAnalyzer::with_constraints`]); `None` when the
    /// analyzer holds no chase-repairable constraints.
    pub chase: Option<ChaseStats>,
}

impl RunReport {
    /// Lifts a search front-end report, discarding its verdict.
    #[must_use]
    pub fn from_search<V>(report: &SearchReport<V>) -> Self {
        RunReport {
            explored: report.explored,
            cost: report.cost,
            guard_cache: report.cache,
            engine_cache: report.engine_cache,
            chase: None,
        }
    }

    /// Attaches the analyzer's chase counters.
    #[must_use]
    pub fn with_chase(mut self, chase: Option<ChaseStats>) -> Self {
        self.chase = chase;
        self
    }

    /// Renders the report as a single-line JSON object with stable key
    /// order; `chase` is `null` when no constraints were chased.
    #[must_use]
    pub fn to_json(&self) -> String {
        let chase = match &self.chase {
            Some(stats) => stats.to_json(),
            None => "null".to_owned(),
        };
        JsonObject::new()
            .num("explored", self.explored as u64)
            .num("cost", self.cost as u64)
            .raw(
                "guard_cache",
                JsonObject::new()
                    .num("hits", self.guard_cache.hits)
                    .num("misses", self.guard_cache.misses)
                    .build(),
            )
            .raw(
                "engine_cache",
                JsonObject::new()
                    .num("hits", self.engine_cache.hits)
                    .num("misses", self.engine_cache.misses)
                    .num("evictions", self.engine_cache.evictions)
                    .num("entries", self.engine_cache.entries)
                    .build(),
            )
            .raw("chase", chase)
            .build()
    }

    /// Parses a report previously rendered by [`RunReport::to_json`],
    /// strictly: every counter must be present as a non-negative integer,
    /// `chase` must be `null` or carry every chase counter, and unknown
    /// fields are rejected.  A successfully parsed report re-renders
    /// byte-identically to its source, so consumers of the
    /// analysis-as-a-service surface can validate, store and faithfully
    /// re-emit reports.
    pub fn from_json(input: &str) -> Result<Self, String> {
        let value = parse(input)?;
        require_keys(
            &value,
            "run report",
            &["explored", "cost", "guard_cache", "engine_cache", "chase"],
        )?;
        let guard = value
            .get("guard_cache")
            .ok_or_else(|| "run report is missing \"guard_cache\"".to_owned())?;
        require_keys(guard, "guard_cache", &["hits", "misses"])?;
        let engine = value
            .get("engine_cache")
            .ok_or_else(|| "run report is missing \"engine_cache\"".to_owned())?;
        require_keys(
            engine,
            "engine_cache",
            &["hits", "misses", "evictions", "entries"],
        )?;
        let chase = match value.get("chase") {
            None => return Err("run report is missing \"chase\"".to_owned()),
            Some(JsonValue::Null) => None,
            Some(stats) => {
                require_keys(
                    stats,
                    "chase",
                    &[
                        "passes",
                        "violation_checks",
                        "tuples_rescanned",
                        "fd_merges",
                        "ind_additions",
                        "facts_rewritten",
                        "index_rebuilds_avoided",
                    ],
                )?;
                Some(ChaseStats {
                    passes: require_usize(stats, "chase", "passes")?,
                    violation_checks: require_usize(stats, "chase", "violation_checks")?,
                    tuples_rescanned: require_usize(stats, "chase", "tuples_rescanned")?,
                    fd_merges: require_usize(stats, "chase", "fd_merges")?,
                    ind_additions: require_usize(stats, "chase", "ind_additions")?,
                    facts_rewritten: require_usize(stats, "chase", "facts_rewritten")?,
                    index_rebuilds_avoided: require_usize(
                        stats,
                        "chase",
                        "index_rebuilds_avoided",
                    )?,
                })
            }
        };
        Ok(RunReport {
            explored: require_usize(&value, "run report", "explored")?,
            cost: require_usize(&value, "run report", "cost")?,
            guard_cache: GuardCacheStats {
                hits: require_count(guard, "guard_cache", "hits")?,
                misses: require_count(guard, "guard_cache", "misses")?,
            },
            engine_cache: EngineCacheStats {
                hits: require_count(engine, "engine_cache", "hits")?,
                misses: require_count(engine, "engine_cache", "misses")?,
                evictions: require_count(engine, "engine_cache", "evictions")?,
                entries: require_count(engine, "engine_cache", "entries")?,
            },
            chase,
        })
    }
}

/// Rejects non-objects and objects with fields outside `allowed` (missing
/// fields are caught by the per-field reads).
fn require_keys(value: &JsonValue, object: &str, allowed: &[&str]) -> Result<(), String> {
    let JsonValue::Object(map) = value else {
        return Err(format!("{object} must be a JSON object"));
    };
    for key in map.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(format!("{object} has unknown field \"{key}\""));
        }
    }
    Ok(())
}

/// Reads a required non-negative integer field.
fn require_count(value: &JsonValue, object: &str, key: &str) -> Result<u64, String> {
    let field = value
        .get(key)
        .ok_or_else(|| format!("{object} is missing \"{key}\""))?;
    field
        .as_int()
        .and_then(|n| u64::try_from(n).ok())
        .ok_or_else(|| format!("{object}.{key} must be a non-negative integer"))
}

/// Reads a required non-negative integer field into a `usize`.
fn require_usize(value: &JsonValue, object: &str, key: &str) -> Result<usize, String> {
    usize::try_from(require_count(value, object, key)?)
        .map_err(|_| format!("{object}.{key} does not fit in usize"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_json_round_trips_byte_identically() {
        // Every optional field populated: the chase block present with all
        // seven counters nonzero, plus nonzero cache splits.
        let full = RunReport {
            explored: 12,
            cost: 34,
            guard_cache: GuardCacheStats { hits: 5, misses: 6 },
            engine_cache: EngineCacheStats {
                hits: 1,
                misses: 2,
                evictions: 3,
                entries: 4,
            },
            chase: Some(ChaseStats {
                passes: 2,
                violation_checks: 4,
                tuples_rescanned: 8,
                fd_merges: 1,
                ind_additions: 3,
                facts_rewritten: 5,
                index_rebuilds_avoided: 7,
            }),
        };
        let bare = RunReport {
            chase: None,
            ..full
        };
        for report in [full, bare, RunReport::default()] {
            let rendered = report.to_json();
            let rebuilt = RunReport::from_json(&rendered).unwrap();
            assert_eq!(rebuilt.to_json(), rendered);
        }
    }

    #[test]
    fn from_json_rejects_malformed_reports() {
        let valid = RunReport::default().to_json();
        assert!(RunReport::from_json(&valid).is_ok());
        // Unknown top-level field.
        assert!(RunReport::from_json(&valid.replacen("\"explored\"", "\"exploded\"", 1)).is_err());
        // Missing field (drop the leading "explored":0,).
        assert!(RunReport::from_json(&valid.replacen("\"explored\":0,", "", 1)).is_err());
        // Wrong type and negative counter.
        assert!(RunReport::from_json(&valid.replacen("\"cost\":0", "\"cost\":\"0\"", 1)).is_err());
        assert!(RunReport::from_json(&valid.replacen("\"cost\":0", "\"cost\":-1", 1)).is_err());
        assert!(RunReport::from_json(&valid.replacen("\"cost\":0", "\"cost\":1.5", 1)).is_err());
        // Chase must be null or a complete counter object.
        assert!(RunReport::from_json(&valid.replacen("null", "{}", 1)).is_err());
        assert!(RunReport::from_json(&valid.replacen("null", "7", 1)).is_err());
        // Not an object at all / trailing garbage (the parser is strict).
        assert!(RunReport::from_json("[1,2]").is_err());
        assert!(RunReport::from_json(&format!("{valid} x")).is_err());
    }

    #[test]
    fn to_json_round_trips_with_and_without_chase() {
        let bare = RunReport {
            explored: 12,
            cost: 34,
            guard_cache: GuardCacheStats { hits: 5, misses: 6 },
            engine_cache: EngineCacheStats {
                hits: 1,
                misses: 2,
                evictions: 0,
                entries: 3,
            },
            chase: None,
        };
        let value = parse(&bare.to_json()).unwrap();
        assert_eq!(value.get("explored").unwrap().as_int(), Some(12));
        assert_eq!(value.get("chase"), Some(&JsonValue::Null));

        let chased = bare.with_chase(Some(ChaseStats {
            passes: 2,
            violation_checks: 4,
            ..ChaseStats::default()
        }));
        let value = parse(&chased.to_json()).unwrap();
        assert_eq!(
            value.get("chase").unwrap().get("passes").unwrap().as_int(),
            Some(2)
        );
        assert_eq!(
            value
                .get("guard_cache")
                .unwrap()
                .get("hits")
                .unwrap()
                .as_int(),
            Some(5)
        );
    }
}
