//! Unified machine-readable run reports: one accounting value combining the
//! engine-side counters of a [`SearchReport`] with the constraint-repair
//! counters of a [`ChaseStats`], plus its JSON rendering.
//!
//! Every [`crate::AnalyzerReport`] carries a [`RunReport`], so one
//! [`crate::AccessAnalyzer::check_all`] call returns engine *and* chase
//! counters per property — the per-request introspection surface the
//! analysis-as-a-service direction needs.

use accltl_obs::json::JsonObject;
use accltl_paths::engine::{EngineCacheStats, SearchReport};
use accltl_relational::{ChaseStats, GuardCacheStats};

/// Accounting for one analyzer question: search-side counters (explored
/// states, step cost, guard-/engine-cache activity) plus the chase counters
/// of the analyzer's constraint-repair preprocessing, when constraints were
/// supplied.
///
/// Like `SearchReport`, equality of the surrounding [`crate::AnalyzerReport`]
/// deliberately ignores this value: the counters describe *work*, which
/// varies with caches, threads and environment, while verdicts do not.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunReport {
    /// Search states discovered (zero for questions answered without a
    /// search, e.g. empty-path short-circuits).
    pub explored: usize,
    /// Accumulated step cost (guard consults) charged against the budget.
    pub cost: usize,
    /// Guard-cache counters for this question's consults.
    pub guard_cache: GuardCacheStats,
    /// Engine-level shared-cache counters of the run that answered it.
    pub engine_cache: EngineCacheStats,
    /// Chase counters of the analyzer's constraint-repair preprocessing
    /// ([`crate::AccessAnalyzer::with_constraints`]); `None` when the
    /// analyzer holds no chase-repairable constraints.
    pub chase: Option<ChaseStats>,
}

impl RunReport {
    /// Lifts a search front-end report, discarding its verdict.
    #[must_use]
    pub fn from_search<V>(report: &SearchReport<V>) -> Self {
        RunReport {
            explored: report.explored,
            cost: report.cost,
            guard_cache: report.cache,
            engine_cache: report.engine_cache,
            chase: None,
        }
    }

    /// Attaches the analyzer's chase counters.
    #[must_use]
    pub fn with_chase(mut self, chase: Option<ChaseStats>) -> Self {
        self.chase = chase;
        self
    }

    /// Renders the report as a single-line JSON object with stable key
    /// order; `chase` is `null` when no constraints were chased.
    #[must_use]
    pub fn to_json(&self) -> String {
        let chase = match &self.chase {
            Some(stats) => stats.to_json(),
            None => "null".to_owned(),
        };
        JsonObject::new()
            .num("explored", self.explored as u64)
            .num("cost", self.cost as u64)
            .raw(
                "guard_cache",
                JsonObject::new()
                    .num("hits", self.guard_cache.hits)
                    .num("misses", self.guard_cache.misses)
                    .build(),
            )
            .raw(
                "engine_cache",
                JsonObject::new()
                    .num("hits", self.engine_cache.hits)
                    .num("misses", self.engine_cache.misses)
                    .num("evictions", self.engine_cache.evictions)
                    .num("entries", self.engine_cache.entries)
                    .build(),
            )
            .raw("chase", chase)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accltl_obs::json::{parse, JsonValue};

    #[test]
    fn to_json_round_trips_with_and_without_chase() {
        let bare = RunReport {
            explored: 12,
            cost: 34,
            guard_cache: GuardCacheStats { hits: 5, misses: 6 },
            engine_cache: EngineCacheStats {
                hits: 1,
                misses: 2,
                evictions: 0,
                entries: 3,
            },
            chase: None,
        };
        let value = parse(&bare.to_json()).unwrap();
        assert_eq!(value.get("explored").unwrap().as_int(), Some(12));
        assert_eq!(value.get("chase"), Some(&JsonValue::Null));

        let chased = bare.with_chase(Some(ChaseStats {
            passes: 2,
            violation_checks: 4,
            ..ChaseStats::default()
        }));
        let value = parse(&chased.to_json()).unwrap();
        assert_eq!(
            value.get("chase").unwrap().get("passes").unwrap().as_int(),
            Some(2)
        );
        assert_eq!(
            value
                .get("guard_cache")
                .unwrap()
                .get("hits")
                .unwrap()
                .as_int(),
            Some(5)
        );
    }
}
