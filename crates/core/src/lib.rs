//! # accltl-core
//!
//! The public facade of the `accltl` workspace — a Rust implementation of
//! *"Querying Schemas With Access Restrictions"* (Benedikt, Bourhis, Ley;
//! VLDB 2012).
//!
//! The crate re-exports the substrate crates under stable module names and
//! provides [`AccessAnalyzer`], a single entry point that holds a schema with
//! access methods, an initial instance and a set of integrity constraints,
//! and answers the paper's static-analysis questions:
//!
//! * satisfiability / validity of `AccLTL` path specifications, dispatched to
//!   the cheapest decision procedure for the formula's fragment (Table 1);
//! * query containment under access patterns (Example 2.2 / Proposition 4.4);
//! * long-term relevance of an access (Example 2.3);
//! * maximal answers of a query under the access restrictions (\[15\]).
//!
//! ```
//! use accltl_core::prelude::*;
//!
//! let schema = phone_directory_access_schema();
//! let analyzer = AccessAnalyzer::new(schema);
//!
//! // Is Jones's address reachable through the Web forms?  Ask whether the
//! // path property "eventually the configuration satisfies the query" is
//! // satisfiable.
//! let jones = cq!(<- atom!("Address"; s, p, @"Jones", h));
//! let formula = properties::eventually_answered_formula(&jones);
//! let outcome = analyzer.check_satisfiable(&formula);
//! assert!(outcome.is_satisfiable());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use accltl_automata as automata;
pub use accltl_logic as logic;
pub use accltl_obs as obs;
pub use accltl_paths as paths;
pub use accltl_relational as relational;

pub use accltl_logic::properties;

pub mod analyzer;
pub mod report;

pub use analyzer::{
    AccessAnalyzer, AnalyzerReport, BatchRequest, ContainmentOutcome, MonitorSession,
};
pub use report::RunReport;

/// A convenience prelude re-exporting the types most programs need.
pub mod prelude {
    pub use crate::analyzer::{
        AccessAnalyzer, AnalyzerReport, BatchRequest, ContainmentOutcome, MonitorSession,
    };
    pub use crate::report::RunReport;
    pub use accltl_automata::{AAutomaton, Guard};
    pub use accltl_logic::fragment::{classify, Fragment};
    pub use accltl_logic::properties;
    pub use accltl_logic::vocabulary::{
        isbind_atom, isbind_prop, post_atom, pre_atom, query_post, query_pre,
    };
    pub use accltl_logic::{AccLtl, BoundedSearchConfig, SatOutcome, SessionReport};
    pub use accltl_paths::access::phone_directory_access_schema;
    pub use accltl_paths::generator::{
        generate_workload, phone_directory_hidden_instance, Workload, WorkloadConfig,
    };
    pub use accltl_paths::{
        Access, AccessMethod, AccessPath, AccessSchema, EngineConfig, LtrVerdict, LtsExplorer,
        LtsOptions, Response, ResponsePolicy, SearchReport,
    };
    pub use accltl_relational::{
        atom, cq, tuple, Atom, ChaseStats, ConjunctiveQuery, Constraint, DatalogProgram,
        DatalogRule, DisjointnessConstraint, FunctionalDependency, InclusionDependency, Instance,
        InstanceOverlay, InstanceView, PosFormula, RelId, ScanView, Schema, Sym, SymbolTable, Term,
        Tuple, UnionOfCqs, Value, VarId,
    };
}
